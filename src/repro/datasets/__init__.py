"""Dataset layer: named-column sample containers, splits and I/O."""

from repro.datasets.arff import load_arff, save_arff
from repro.datasets.cache import (
    CacheStats,
    SampleSetCache,
    cached_generate,
    format_cache_stats,
    generation_digest,
)
from repro.datasets.dataset import SampleSet
from repro.datasets.io import load_csv, save_csv
from repro.datasets.splits import train_test_split, stratified_split

__all__ = [
    "CacheStats",
    "SampleSet",
    "SampleSetCache",
    "cached_generate",
    "format_cache_stats",
    "generation_digest",
    "load_arff",
    "load_csv",
    "save_arff",
    "save_csv",
    "train_test_split",
    "stratified_split",
]
