"""Numpy-backed sample container with named columns and benchmark labels.

A :class:`SampleSet` holds one row per sampled execution interval: the
20 per-instruction predictor densities (``X``), the measured CPI
(``y``), and the benchmark each interval came from.  It is the common
currency between the workload generator, the model tree, the
characterization layer and the transferability analysis.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SampleSet"]


class SampleSet:
    """An immutable-by-convention table of (densities, CPI, benchmark).

    Parameters
    ----------
    feature_names:
        Column names for ``X``, in order (typically Table I's 20 metrics).
    X:
        Array of shape (n_samples, n_features) of per-instruction densities.
    y:
        Array of shape (n_samples,) of CPI values.
    benchmarks:
        Sequence of benchmark names, one per sample (optional; defaults
        to the empty string for all samples).
    """

    def __init__(
        self,
        feature_names: Sequence[str],
        X: np.ndarray,
        y: np.ndarray,
        benchmarks: Optional[Sequence[str]] = None,
    ) -> None:
        self.feature_names: Tuple[str, ...] = tuple(feature_names)
        self.X = np.asarray(X, dtype=float)
        self.y = np.asarray(y, dtype=float)
        if self.X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {self.X.shape}")
        if self.y.ndim != 1:
            raise ValueError(f"y must be 1-D, got shape {self.y.shape}")
        if self.X.shape[0] != self.y.shape[0]:
            raise ValueError(
                f"X has {self.X.shape[0]} rows but y has {self.y.shape[0]}"
            )
        if self.X.shape[1] != len(self.feature_names):
            raise ValueError(
                f"X has {self.X.shape[1]} columns but "
                f"{len(self.feature_names)} feature names were given"
            )
        if len(set(self.feature_names)) != len(self.feature_names):
            raise ValueError("feature names must be unique")
        if benchmarks is None:
            self.benchmarks = np.full(self.X.shape[0], "", dtype=object)
        else:
            self.benchmarks = np.asarray(benchmarks, dtype=object)
            if self.benchmarks.shape != (self.X.shape[0],):
                raise ValueError(
                    f"benchmarks has shape {self.benchmarks.shape}, "
                    f"expected ({self.X.shape[0]},)"
                )

    # -- basic protocol ------------------------------------------------

    def __len__(self) -> int:
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    def __repr__(self) -> str:
        names = self.benchmark_names()
        suites = f", benchmarks={len(names)}" if names and names != [""] else ""
        return f"SampleSet(n={len(self)}, features={self.n_features}{suites})"

    # -- column access ---------------------------------------------------

    def column_index(self, name: str) -> int:
        """Index of a feature column by name."""
        try:
            return self.feature_names.index(name)
        except ValueError:
            raise KeyError(
                f"unknown feature {name!r}; have {list(self.feature_names)}"
            ) from None

    def column(self, name: str) -> np.ndarray:
        """One feature column, by name ('CPI' returns y)."""
        if name == "CPI":
            return self.y
        return self.X[:, self.column_index(name)]

    # -- row selection ---------------------------------------------------

    def take(self, indices: np.ndarray) -> "SampleSet":
        """A new SampleSet containing the given row indices."""
        idx = np.asarray(indices)
        return SampleSet(
            self.feature_names, self.X[idx], self.y[idx], self.benchmarks[idx]
        )

    def where(self, mask: np.ndarray) -> "SampleSet":
        """A new SampleSet of rows where the boolean mask is true."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise ValueError(f"mask shape {mask.shape} != ({len(self)},)")
        return self.take(np.nonzero(mask)[0])

    def for_benchmark(self, name: str) -> "SampleSet":
        """Only the samples of one benchmark."""
        subset = self.where(self.benchmarks == name)
        if len(subset) == 0:
            raise KeyError(
                f"no samples for benchmark {name!r}; "
                f"have {self.benchmark_names()}"
            )
        return subset

    def benchmark_names(self) -> List[str]:
        """Sorted list of distinct benchmark names present."""
        return sorted(set(self.benchmarks.tolist()))

    def by_benchmark(self) -> Dict[str, "SampleSet"]:
        """Mapping of benchmark name to its samples."""
        return {name: self.for_benchmark(name) for name in self.benchmark_names()}

    def benchmark_weights(self) -> Dict[str, float]:
        """Fraction of all samples contributed by each benchmark.

        The paper weights the 'Suite' row of Tables II/IV by each
        benchmark's share of executed instructions; with equal-length
        sampling intervals that share equals the sample share.
        """
        names, counts = np.unique(self.benchmarks, return_counts=True)
        total = float(len(self))
        return {str(n): c / total for n, c in zip(names, counts)}

    # -- combination -------------------------------------------------------

    @staticmethod
    def concat(parts: Iterable["SampleSet"]) -> "SampleSet":
        """Concatenate sample sets with identical feature schemas."""
        parts = list(parts)
        if not parts:
            raise ValueError("concat requires at least one SampleSet")
        names = parts[0].feature_names
        for p in parts[1:]:
            if p.feature_names != names:
                raise ValueError(
                    f"feature schema mismatch: {p.feature_names} != {names}"
                )
        return SampleSet(
            names,
            np.concatenate([p.X for p in parts], axis=0),
            np.concatenate([p.y for p in parts]),
            np.concatenate([p.benchmarks for p in parts]),
        )

    def shuffled(self, rng: np.random.Generator) -> "SampleSet":
        """A new SampleSet with rows in random order."""
        return self.take(rng.permutation(len(self)))
