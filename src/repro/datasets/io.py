"""CSV persistence for sample sets.

The on-disk format is a plain CSV with a header row: ``benchmark``
first, then ``CPI``, then the feature columns — readable by any
external tool (the paper's pipeline exported counter data to WEKA's ARFF;
CSV is the modern equivalent).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from repro.datasets.dataset import SampleSet

__all__ = ["save_csv", "load_csv"]


def save_csv(data: SampleSet, path: Union[str, Path]) -> None:
    """Write a SampleSet to ``path`` as CSV."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["benchmark", "CPI", *data.feature_names])
        for i in range(len(data)):
            writer.writerow(
                [data.benchmarks[i], repr(float(data.y[i]))]
                + [repr(float(v)) for v in data.X[i]]
            )


def load_csv(path: Union[str, Path]) -> SampleSet:
    """Read a SampleSet previously written by :func:`save_csv`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        if len(header) < 3 or header[0] != "benchmark" or header[1] != "CPI":
            raise ValueError(
                f"{path} does not look like a SampleSet CSV "
                f"(header starts {header[:3]})"
            )
        feature_names = header[2:]
        benchmarks = []
        rows = []
        for line_no, row in enumerate(reader, start=2):
            if len(row) != len(header):
                raise ValueError(
                    f"{path}:{line_no}: expected {len(header)} fields, got {len(row)}"
                )
            benchmarks.append(row[0])
            rows.append([float(v) for v in row[1:]])
    if not rows:
        raise ValueError(f"{path} contains a header but no samples")
    table = np.asarray(rows, dtype=float)
    return SampleSet(feature_names, table[:, 1:], table[:, 0], benchmarks)
