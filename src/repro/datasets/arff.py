"""ARFF import/export — the paper's actual modeling-tool format.

The authors fed their counter data to WEKA, whose native input is the
ARFF (Attribute-Relation File Format) text format.  ``save_arff``
writes a SampleSet so a real WEKA M5P run can be pointed at the same
data this library models; ``load_arff`` reads the subset of ARFF this
library emits (numeric attributes plus one nominal benchmark column).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

import numpy as np

from repro.datasets.dataset import SampleSet

__all__ = ["save_arff", "load_arff"]


def save_arff(
    data: SampleSet, path: Union[str, Path], relation: str = "repro-counters"
) -> None:
    """Write a SampleSet as an ARFF file (CPI last, WEKA's default target)."""
    path = Path(path)
    benchmarks = sorted(set(data.benchmarks.tolist()))
    lines: List[str] = [f"@RELATION {relation}", ""]
    quoted = ",".join(f"'{b}'" for b in benchmarks)
    lines.append(f"@ATTRIBUTE benchmark {{{quoted}}}")
    for name in data.feature_names:
        lines.append(f"@ATTRIBUTE {name} NUMERIC")
    lines.append("@ATTRIBUTE CPI NUMERIC")
    lines.append("")
    lines.append("@DATA")
    for i in range(len(data)):
        row = ",".join(repr(float(v)) for v in data.X[i])
        lines.append(f"'{data.benchmarks[i]}',{row},{float(data.y[i])!r}")
    path.write_text("\n".join(lines) + "\n")


def load_arff(path: Union[str, Path]) -> SampleSet:
    """Read an ARFF file written by :func:`save_arff`."""
    path = Path(path)
    attributes: List[str] = []
    data_rows: List[List[str]] = []
    in_data = False
    for line_no, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("%"):
            continue
        upper = line.upper()
        if upper.startswith("@RELATION"):
            continue
        if upper.startswith("@ATTRIBUTE"):
            parts = line.split(None, 2)
            if len(parts) < 3:
                raise ValueError(f"{path}:{line_no}: malformed @ATTRIBUTE")
            attributes.append(parts[1])
            continue
        if upper.startswith("@DATA"):
            in_data = True
            continue
        if in_data:
            data_rows.append([f.strip().strip("'") for f in line.split(",")])
    if not attributes:
        raise ValueError(f"{path}: no @ATTRIBUTE declarations found")
    if attributes[0] != "benchmark" or attributes[-1] != "CPI":
        raise ValueError(
            f"{path}: expected benchmark first and CPI last, got "
            f"{attributes[0]!r}..{attributes[-1]!r}"
        )
    if not data_rows:
        raise ValueError(f"{path}: no data rows")
    feature_names = attributes[1:-1]
    width = len(attributes)
    benchmarks = []
    X = []
    y = []
    for row in data_rows:
        if len(row) != width:
            raise ValueError(
                f"{path}: data row has {len(row)} fields, expected {width}"
            )
        benchmarks.append(row[0])
        X.append([float(v) for v in row[1:-1]])
        y.append(float(row[-1]))
    return SampleSet(feature_names, np.asarray(X), np.asarray(y), benchmarks)
