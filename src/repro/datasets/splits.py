"""Random and stratified train/test splits.

Section VI of the paper trains on a random 10% of a suite's samples and
tests on an independent random 10%; :func:`train_test_split` produces
such disjoint fractions.  :func:`stratified_split` additionally keeps
each benchmark's share equal across the parts, which the paper's
uniform random sampling achieves in expectation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.datasets.dataset import SampleSet

__all__ = ["train_test_split", "stratified_split"]


def _validate_fractions(fractions: Sequence[float]) -> None:
    if not fractions:
        raise ValueError("at least one fraction is required")
    if any(f <= 0.0 for f in fractions):
        raise ValueError(f"fractions must be positive, got {list(fractions)}")
    if sum(fractions) > 1.0 + 1e-9:
        raise ValueError(f"fractions sum to {sum(fractions)} > 1")


def train_test_split(
    data: SampleSet,
    fractions: Sequence[float],
    rng: np.random.Generator,
) -> List[SampleSet]:
    """Split into disjoint random subsets of the given fractions.

    ``fractions=(0.1, 0.1)`` reproduces the paper's setup: a 10%
    training set and an independent 10% test set (the remaining 80% is
    simply unused).  Returns one SampleSet per fraction.
    """
    _validate_fractions(fractions)
    order = rng.permutation(len(data))
    parts: List[SampleSet] = []
    start = 0
    for fraction in fractions:
        count = int(round(fraction * len(data)))
        count = min(count, len(data) - start)
        if count == 0:
            raise ValueError(
                f"fraction {fraction} of {len(data)} samples yields an empty part"
            )
        parts.append(data.take(order[start : start + count]))
        start += count
    return parts


def stratified_split(
    data: SampleSet,
    fractions: Sequence[float],
    rng: np.random.Generator,
) -> List[SampleSet]:
    """Like :func:`train_test_split` but per-benchmark proportional.

    Each part receives (approximately) the same benchmark mix as the
    full data set, which stabilizes small-fraction experiments.
    """
    _validate_fractions(fractions)
    per_benchmark: List[List[np.ndarray]] = [[] for _ in fractions]
    for name in data.benchmark_names():
        indices = np.nonzero(data.benchmarks == name)[0]
        order = rng.permutation(indices)
        start = 0
        for slot, fraction in enumerate(fractions):
            count = int(round(fraction * len(indices)))
            count = min(count, len(indices) - start)
            per_benchmark[slot].append(order[start : start + count])
            start += count
    parts = []
    for slot in range(len(fractions)):
        merged = np.concatenate(per_benchmark[slot]) if per_benchmark[slot] else np.array([], dtype=int)
        if merged.size == 0:
            raise ValueError("stratified split produced an empty part")
        parts.append(data.take(rng.permutation(merged)))
    return parts
