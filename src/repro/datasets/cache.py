"""Disk caching of generated sample sets.

Suite generation is deterministic given its configuration, so a
generated SampleSet can be cached on disk keyed by a digest of
everything that determines it (suite name and benchmark specs, sample
count, seed, collector and noise parameters, cost model identity).
Repeated CLI invocations and notebook sessions then skip the generation
cost entirely.

Caching is opt-in: pass ``cache_dir`` to :func:`cached_generate`.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.datasets.dataset import SampleSet
from repro.datasets.io import load_csv, save_csv

if TYPE_CHECKING:  # avoid a layering inversion at runtime
    from repro.uarch.execution import ExecutionEngine
    from repro.workloads.suite import Suite, SuiteGenerationConfig

__all__ = ["generation_digest", "cached_generate"]


def generation_digest(
    suite: "Suite",
    config: "SuiteGenerationConfig",
    engine: Optional["ExecutionEngine"] = None,
) -> str:
    """A stable hex digest of everything that determines the output."""
    payload = {
        "suite": suite.name,
        "benchmarks": [
            {
                "name": spec.name,
                "weight": spec.weight,
                "persistence": spec.persistence,
                "phases": [
                    {
                        "name": phase.name,
                        "weight": phase.weight,
                        "densities": dict(sorted(phase.densities.items())),
                        "spread": phase.spread,
                        "spreads": dict(sorted(phase.spreads.items())),
                    }
                    for phase in spec.phases
                ],
            }
            for spec in suite.benchmarks
        ],
        "total_samples": config.total_samples,
        "seed": config.seed,
        "collector": {
            "interval_instructions": config.collector.interval_instructions,
            "n_programmable": config.collector.n_programmable,
            "multiplex": config.collector.multiplex,
        },
        "noise": {
            "additive_sigma": config.noise.additive_sigma,
            "relative_sigma": config.noise.relative_sigma,
            "floor_cpi": config.noise.floor_cpi,
        },
    }
    if engine is not None:
        payload["cost_model"] = engine.cost_model.describe()
        payload["engine_noise"] = {
            "additive_sigma": engine.noise.additive_sigma,
            "relative_sigma": engine.noise.relative_sigma,
            "floor_cpi": engine.noise.floor_cpi,
        }
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:24]


def cached_generate(
    suite: "Suite",
    config: "SuiteGenerationConfig",
    cache_dir: Union[str, Path],
    engine: Optional["ExecutionEngine"] = None,
) -> SampleSet:
    """Generate through a disk cache.

    On a hit the CSV is loaded; on a miss the suite is generated,
    written, then returned.  Corrupt cache entries are regenerated.
    """
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    digest = generation_digest(suite, config, engine)
    path = cache_dir / f"{suite.name.replace(' ', '_')}-{digest}.csv"
    if path.exists():
        try:
            return load_csv(path)
        except (ValueError, OSError):
            path.unlink(missing_ok=True)
    data = suite.generate(config, engine=engine)
    save_csv(data, path)
    return data
