"""Content-addressed caching of generated sample sets.

Suite generation is deterministic given its configuration, so a
generated SampleSet can be cached keyed by a digest of everything that
determines it (suite name and benchmark specs, sample count, seed,
collector and noise parameters, cost model identity).  Repeated CLI
invocations, experiment batteries and parallel workers then generate
each distinct dataset exactly once.

Two layers:

* :class:`SampleSetCache` — the preferred interface: an in-process
  digest-keyed table backed by an optional on-disk ``.npz`` store that
  can be shared between processes (writes are atomic, so concurrent
  workers race benignly).
* :func:`cached_generate` — the original single-shot CSV helper, kept
  for scripts that want human-readable cache entries.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Union

import numpy as np

from repro.datasets.dataset import SampleSet
from repro.datasets.io import load_csv, save_csv

if TYPE_CHECKING:  # avoid a layering inversion at runtime
    from repro.uarch.execution import ExecutionEngine
    from repro.workloads.suite import Suite, SuiteGenerationConfig

__all__ = ["generation_digest", "cached_generate", "SampleSetCache"]


def generation_digest(
    suite: "Suite",
    config: "SuiteGenerationConfig",
    engine: Optional["ExecutionEngine"] = None,
) -> str:
    """A stable hex digest of everything that determines the output."""
    payload = {
        "suite": suite.name,
        "benchmarks": [
            {
                "name": spec.name,
                "weight": spec.weight,
                "persistence": spec.persistence,
                "phases": [
                    {
                        "name": phase.name,
                        "weight": phase.weight,
                        "densities": dict(sorted(phase.densities.items())),
                        "spread": phase.spread,
                        "spreads": dict(sorted(phase.spreads.items())),
                    }
                    for phase in spec.phases
                ],
            }
            for spec in suite.benchmarks
        ],
        "total_samples": config.total_samples,
        "seed": config.seed,
        "collector": {
            "interval_instructions": config.collector.interval_instructions,
            "n_programmable": config.collector.n_programmable,
            "multiplex": config.collector.multiplex,
        },
        "noise": {
            "additive_sigma": config.noise.additive_sigma,
            "relative_sigma": config.noise.relative_sigma,
            "floor_cpi": config.noise.floor_cpi,
        },
    }
    if engine is not None:
        payload["cost_model"] = engine.cost_model.describe()
        payload["engine_noise"] = {
            "additive_sigma": engine.noise.additive_sigma,
            "relative_sigma": engine.noise.relative_sigma,
            "floor_cpi": engine.noise.floor_cpi,
        }
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:24]


def cached_generate(
    suite: "Suite",
    config: "SuiteGenerationConfig",
    cache_dir: Union[str, Path],
    engine: Optional["ExecutionEngine"] = None,
) -> SampleSet:
    """Generate through a disk cache.

    On a hit the CSV is loaded; on a miss the suite is generated,
    written, then returned.  Corrupt cache entries are regenerated.
    """
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    digest = generation_digest(suite, config, engine)
    path = cache_dir / f"{suite.name.replace(' ', '_')}-{digest}.csv"
    if path.exists():
        try:
            return load_csv(path)
        except (ValueError, OSError):
            path.unlink(missing_ok=True)
    data = suite.generate(config, engine=engine)
    save_csv(data, path)
    return data


def _save_npz(data: SampleSet, path: Path) -> None:
    """Atomically write a SampleSet as a compressed-free ``.npz``."""
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.stem, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(
                handle,
                feature_names=np.asarray(data.feature_names, dtype=str),
                X=data.X,
                y=data.y,
                benchmarks=data.benchmarks.astype(str),
            )
        os.replace(tmp, path)
    except BaseException:
        Path(tmp).unlink(missing_ok=True)
        raise


def _load_npz(path: Path) -> SampleSet:
    with np.load(path, allow_pickle=False) as archive:
        return SampleSet(
            [str(name) for name in archive["feature_names"]],
            archive["X"],
            archive["y"],
            archive["benchmarks"].astype(object),
        )


class SampleSetCache:
    """Two-tier content-addressed cache of generated sample sets.

    Hits are served from process memory first, then (when ``cache_dir``
    is given) from an on-disk ``.npz`` store keyed by
    :func:`generation_digest`.  Disk writes go through a temp file and
    an atomic rename, so multiple worker processes can share one
    directory: concurrent misses regenerate the same bytes and the last
    rename wins.
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._memory: Dict[str, SampleSet] = {}

    def _path(self, suite_name: str, digest: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{suite_name.replace(' ', '_')}-{digest}.npz"

    def get_or_generate(
        self,
        suite: "Suite",
        config: "SuiteGenerationConfig",
        engine: Optional["ExecutionEngine"] = None,
    ) -> SampleSet:
        """The sample set for (suite, config, engine), generated at most once."""
        digest = generation_digest(suite, config, engine)
        hit = self._memory.get(digest)
        if hit is not None:
            return hit
        if self.cache_dir is not None:
            path = self._path(suite.name, digest)
            if path.exists():
                try:
                    data = _load_npz(path)
                except (ValueError, OSError, KeyError):
                    path.unlink(missing_ok=True)
                else:
                    self._memory[digest] = data
                    return data
        data = suite.generate(config, engine=engine)
        self._memory[digest] = data
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            _save_npz(data, self._path(suite.name, digest))
        return data

    def __len__(self) -> int:
        return len(self._memory)
