"""Content-addressed caching of generated sample sets.

Suite generation is deterministic given its configuration, so a
generated SampleSet can be cached keyed by a digest of everything that
determines it (suite name and benchmark specs, sample count, seed,
collector and noise parameters, cost model identity).  Repeated CLI
invocations, experiment batteries and parallel workers then generate
each distinct dataset exactly once.

Two layers:

* :class:`SampleSetCache` — the preferred interface: an in-process
  digest-keyed table backed by an optional on-disk ``.npz`` store that
  can be shared between processes (writes are atomic, so concurrent
  workers race benignly).
* :func:`cached_generate` — the original single-shot CSV helper, kept
  for scripts that want human-readable cache entries.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Union

import numpy as np

from repro.datasets.dataset import SampleSet
from repro.datasets.io import load_csv, save_csv
from repro.obs.metrics import counter

if TYPE_CHECKING:  # avoid a layering inversion at runtime
    from repro.uarch.execution import ExecutionEngine
    from repro.workloads.suite import Suite, SuiteGenerationConfig

__all__ = [
    "generation_digest",
    "cached_generate",
    "CacheStats",
    "format_cache_stats",
    "SampleSetCache",
]

# Process-wide cache metrics (summed over every SampleSetCache in the
# process); cached instruments keep the per-access cost to one add.
_MEM_HITS = counter("cache.memory.hits")
_MEM_MISSES = counter("cache.memory.misses")
_MEM_EVICTIONS = counter("cache.memory.evictions")
_DISK_HITS = counter("cache.disk.hits")
_DISK_MISSES = counter("cache.disk.misses")
_DISK_BYTES_READ = counter("cache.disk.bytes_read")
_DISK_BYTES_WRITTEN = counter("cache.disk.bytes_written")
_GENERATIONS = counter("cache.generations")


def generation_digest(
    suite: "Suite",
    config: "SuiteGenerationConfig",
    engine: Optional["ExecutionEngine"] = None,
) -> str:
    """A stable hex digest of everything that determines the output."""
    payload = {
        "suite": suite.name,
        "benchmarks": [
            {
                "name": spec.name,
                "weight": spec.weight,
                "persistence": spec.persistence,
                "phases": [
                    {
                        "name": phase.name,
                        "weight": phase.weight,
                        "densities": dict(sorted(phase.densities.items())),
                        "spread": phase.spread,
                        "spreads": dict(sorted(phase.spreads.items())),
                    }
                    for phase in spec.phases
                ],
            }
            for spec in suite.benchmarks
        ],
        "total_samples": config.total_samples,
        "seed": config.seed,
        "collector": {
            "interval_instructions": config.collector.interval_instructions,
            "n_programmable": config.collector.n_programmable,
            "multiplex": config.collector.multiplex,
        },
        "noise": {
            "additive_sigma": config.noise.additive_sigma,
            "relative_sigma": config.noise.relative_sigma,
            "floor_cpi": config.noise.floor_cpi,
        },
    }
    if engine is not None:
        payload["cost_model"] = engine.cost_model.describe()
        payload["engine_noise"] = {
            "additive_sigma": engine.noise.additive_sigma,
            "relative_sigma": engine.noise.relative_sigma,
            "floor_cpi": engine.noise.floor_cpi,
        }
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:24]


def cached_generate(
    suite: "Suite",
    config: "SuiteGenerationConfig",
    cache_dir: Union[str, Path],
    engine: Optional["ExecutionEngine"] = None,
) -> SampleSet:
    """Generate through a disk cache.

    On a hit the CSV is loaded; on a miss the suite is generated,
    written, then returned.  Corrupt cache entries are regenerated.
    """
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    digest = generation_digest(suite, config, engine)
    path = cache_dir / f"{suite.name.replace(' ', '_')}-{digest}.csv"
    if path.exists():
        try:
            return load_csv(path)
        except (ValueError, OSError):
            path.unlink(missing_ok=True)
    data = suite.generate(config, engine=engine)
    save_csv(data, path)
    return data


def _save_npz(data: SampleSet, path: Path) -> None:
    """Atomically write a SampleSet as a compressed-free ``.npz``."""
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.stem, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(
                handle,
                feature_names=np.asarray(data.feature_names, dtype=str),
                X=data.X,
                y=data.y,
                benchmarks=data.benchmarks.astype(str),
            )
        os.replace(tmp, path)
    except BaseException:
        Path(tmp).unlink(missing_ok=True)
        raise


def _load_npz(path: Path) -> SampleSet:
    with np.load(path, allow_pickle=False) as archive:
        return SampleSet(
            [str(name) for name in archive["feature_names"]],
            archive["X"],
            archive["y"],
            archive["benchmarks"].astype(object),
        )


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time :class:`SampleSetCache` statistics, per tier.

    Styled after :mod:`repro.pmu.diagnostics`: a frozen snapshot plus a
    formatter, so callers can difference two snapshots (``after -
    before``) to isolate one battery's traffic, or sum per-worker
    deltas (``a + b``) into battery totals.
    """

    memory_hits: int = 0
    memory_misses: int = 0
    memory_evictions: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    disk_bytes_read: int = 0
    disk_bytes_written: int = 0
    generations: int = 0

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            *(
                getattr(self, name) - getattr(other, name)
                for name in self.__dataclass_fields__
            )
        )

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            *(
                getattr(self, name) + getattr(other, name)
                for name in self.__dataclass_fields__
            )
        )

    @property
    def memory_hit_rate(self) -> float:
        lookups = self.memory_hits + self.memory_misses
        return self.memory_hits / lookups if lookups else 0.0


def format_cache_stats(stats: CacheStats) -> str:
    """Two-line per-tier rendering for run summaries."""
    return "\n".join(
        [
            (
                f"  cache memory: {stats.memory_hits} hit(s), "
                f"{stats.memory_misses} miss(es), "
                f"{stats.memory_evictions} eviction(s) "
                f"({stats.memory_hit_rate:.0%} hit rate)"
            ),
            (
                f"  cache disk:   {stats.disk_hits} hit(s), "
                f"{stats.disk_misses} miss(es), "
                f"{stats.disk_bytes_read / 1e6:.1f} MB read, "
                f"{stats.disk_bytes_written / 1e6:.1f} MB written, "
                f"{stats.generations} generation(s)"
            ),
        ]
    )


class SampleSetCache:
    """Two-tier content-addressed cache of generated sample sets.

    Hits are served from process memory first, then (when ``cache_dir``
    is given) from an on-disk ``.npz`` store keyed by
    :func:`generation_digest`.  Disk writes go through a temp file and
    an atomic rename, so multiple worker processes can share one
    directory: concurrent misses regenerate the same bytes and the last
    rename wins.

    ``max_memory_entries`` bounds the in-process tier: when set, the
    least-recently-used sample set is evicted on insert (it remains
    reloadable from disk if a ``cache_dir`` was given).  Per-tier
    hit/miss/eviction statistics are kept per cache (:attr:`stats`) and
    mirrored into the process-wide metrics registry under
    ``cache.memory.*`` / ``cache.disk.*``.
    """

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        max_memory_entries: Optional[int] = None,
    ) -> None:
        if max_memory_entries is not None and max_memory_entries < 1:
            raise ValueError(
                f"max_memory_entries must be >= 1, got {max_memory_entries}"
            )
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_memory_entries = max_memory_entries
        self._memory: Dict[str, SampleSet] = {}
        self._memory_hits = 0
        self._memory_misses = 0
        self._memory_evictions = 0
        self._disk_hits = 0
        self._disk_misses = 0
        self._disk_bytes_read = 0
        self._disk_bytes_written = 0
        self._generations = 0

    @property
    def stats(self) -> CacheStats:
        """Snapshot of this cache's lifetime statistics."""
        return CacheStats(
            memory_hits=self._memory_hits,
            memory_misses=self._memory_misses,
            memory_evictions=self._memory_evictions,
            disk_hits=self._disk_hits,
            disk_misses=self._disk_misses,
            disk_bytes_read=self._disk_bytes_read,
            disk_bytes_written=self._disk_bytes_written,
            generations=self._generations,
        )

    def _path(self, suite_name: str, digest: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{suite_name.replace(' ', '_')}-{digest}.npz"

    def _remember(self, digest: str, data: SampleSet) -> None:
        if (
            self.max_memory_entries is not None
            and digest not in self._memory
            and len(self._memory) >= self.max_memory_entries
        ):
            oldest = next(iter(self._memory))
            del self._memory[oldest]
            self._memory_evictions += 1
            _MEM_EVICTIONS.inc()
        self._memory[digest] = data

    def get_or_generate(
        self,
        suite: "Suite",
        config: "SuiteGenerationConfig",
        engine: Optional["ExecutionEngine"] = None,
    ) -> SampleSet:
        """The sample set for (suite, config, engine), generated at most once."""
        digest = generation_digest(suite, config, engine)
        hit = self._memory.get(digest)
        if hit is not None:
            self._memory_hits += 1
            _MEM_HITS.inc()
            if self.max_memory_entries is not None:
                # LRU refresh: re-insert at the back of the dict order.
                del self._memory[digest]
                self._memory[digest] = hit
            return hit
        self._memory_misses += 1
        _MEM_MISSES.inc()
        if self.cache_dir is not None:
            path = self._path(suite.name, digest)
            if path.exists():
                try:
                    nbytes = path.stat().st_size
                    data = _load_npz(path)
                except (ValueError, OSError, KeyError):
                    path.unlink(missing_ok=True)
                else:
                    self._disk_hits += 1
                    self._disk_bytes_read += nbytes
                    _DISK_HITS.inc()
                    _DISK_BYTES_READ.inc(nbytes)
                    self._remember(digest, data)
                    return data
            self._disk_misses += 1
            _DISK_MISSES.inc()
        data = suite.generate(config, engine=engine)
        self._generations += 1
        _GENERATIONS.inc()
        self._remember(digest, data)
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            path = self._path(suite.name, digest)
            _save_npz(data, path)
            try:
                nbytes = path.stat().st_size
            except OSError:
                nbytes = 0
            self._disk_bytes_written += nbytes
            _DISK_BYTES_WRITTEN.inc(nbytes)
        return data

    def __len__(self) -> int:
        return len(self._memory)
