"""Statistics substrate.

Everything the transferability analysis of the paper (Section VI) needs,
implemented from first principles:

* :mod:`repro.stats.special` — special functions (erf, log-gamma,
  regularized incomplete beta/gamma) via series and continued fractions.
* :mod:`repro.stats.distributions` — Normal, Student-t, F and chi-square
  distributions built on the special functions.
* :mod:`repro.stats.descriptive` — the unbiased estimators of
  Equations 8-11 of the paper plus general descriptive summaries.

scipy is deliberately *not* imported here; it is only used in the test
suite as an oracle to validate these implementations.
"""

from repro.stats.descriptive import (
    Summary,
    corrcoef,
    covariance,
    mean,
    sample_std,
    sample_var,
    standard_error_of_difference,
    summarize,
)
from repro.stats.distributions import (
    ChiSquare,
    FDistribution,
    Normal,
    StudentT,
)
from repro.stats.special import (
    erf,
    erfc,
    log_beta,
    log_gamma,
    regularized_incomplete_beta,
    regularized_lower_gamma,
)

__all__ = [
    "ChiSquare",
    "FDistribution",
    "Normal",
    "StudentT",
    "Summary",
    "corrcoef",
    "covariance",
    "erf",
    "erfc",
    "log_beta",
    "log_gamma",
    "mean",
    "regularized_incomplete_beta",
    "regularized_lower_gamma",
    "sample_std",
    "sample_var",
    "standard_error_of_difference",
    "summarize",
]
