"""Shared transferability arithmetic — Equations 8-13 in one place.

Section VI of the paper judges a model transfer twice: by two-sample
t statistics built from the unbiased mean/variance estimators of
Equations 8-11, and by the prediction accuracy metrics C (Eq. 12) and
MAE (Eq. 13) against the C > 0.85 / MAE < 0.15 acceptance thresholds.
Two very different callers need exactly that arithmetic:

* the batch experiment path (:mod:`repro.transfer`, experiments E7/E8),
  which holds full sample arrays, and
* the streaming drift detectors (:mod:`repro.drift`), which hold only
  Welford-style window moments and can never materialize the samples.

This module is the single implementation both consume.  Every entry
point therefore works from *moments* (:class:`SampleMoments`) or from
co-moments, with thin array wrappers on top; the batch wrappers
reproduce the historical :mod:`repro.transfer` results bit-for-bit
(the regression test in ``tests/experiments`` pins this).

Small samples are first-class here, not an error: a window with n < 2
or zero variance yields a :class:`TTestSummary` whose ``sufficient``
flag is False and whose ``reject`` is a well-defined False — the
streaming caller turns that into an "insufficient data" verdict
instead of a NaN or a divide-by-zero warning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

import numpy as np

from repro.stats.descriptive import corrcoef, standard_error_of_difference
from repro.stats.distributions import StudentT, t_critical_value

__all__ = [
    "SampleMoments",
    "TTestSummary",
    "TransferCriteria",
    "t_statistic_from_moments",
    "pearson_from_comoments",
    "paired_arrays",
    "correlation_coefficient",
    "mean_absolute_error",
    "meets_accuracy_thresholds",
]


@dataclass(frozen=True)
class SampleMoments:
    """Sufficient statistics of one sample: Eq. 8 (mean) and Eq. 9 (var).

    ``var`` is the unbiased (n-1 denominator) sample variance, 0.0 by
    convention when ``n < 2`` — exactly what a Welford accumulator
    reports for a degenerate window.
    """

    n: int
    mean: float
    var: float

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError(f"n must be non-negative, got {self.n}")
        if self.var < 0.0:
            raise ValueError(f"variance must be non-negative, got {self.var}")

    @staticmethod
    def from_values(values: Sequence[float]) -> "SampleMoments":
        """Moments of a raw sample (the batch caller's constructor)."""
        arr = np.asarray(values, dtype=float)
        if arr.ndim != 1:
            raise ValueError(f"expected a 1-D sample, got shape {arr.shape}")
        if not np.all(np.isfinite(arr)):
            raise ValueError("sample contains NaN or infinite values")
        n = int(arr.size)
        if n == 0:
            return SampleMoments(0, 0.0, 0.0)
        var = float(arr.var(ddof=1)) if n >= 2 else 0.0
        return SampleMoments(n, float(arr.mean()), var)


@dataclass(frozen=True)
class TTestSummary:
    """Outcome of the Eqs. 8-11 two-sample t statistic.

    ``sufficient`` distinguishes "the test ran" from "the inputs cannot
    support the test" (a sample with n < 2, or both samples constant).
    An insufficient summary carries NaN fields but a *defined*
    ``reject`` of False, so threshold logic never touches a NaN.
    """

    statistic: float
    df: float
    critical_value: float
    confidence: float
    sufficient: bool
    reason: str = ""

    @cached_property
    def p_value(self) -> float:
        """Two-sided p, computed on first access.

        The verdict only needs ``|t|`` vs the critical value, so the
        streaming hot path (drift detectors evaluating every batch)
        never pays the incomplete-beta evaluation behind this.
        """
        if not self.sufficient or not math.isfinite(self.statistic):
            return float("nan")
        return StudentT(self.df).two_sided_p(self.statistic)

    @property
    def reject(self) -> bool:
        """True when H0 is rejected at ``confidence`` (never on NaN)."""
        return self.sufficient and abs(self.statistic) > self.critical_value

    def __str__(self) -> str:
        if not self.sufficient:
            return f"t-test: insufficient data ({self.reason})"
        verdict = "reject H0" if self.reject else "fail to reject H0"
        return (
            f"t={self.statistic:.4g} (critical {self.critical_value:.4g} "
            f"at {self.confidence * 100:.0f}%) -> {verdict}"
        )


@dataclass(frozen=True)
class TransferCriteria:
    """Section VI acceptance thresholds; the paper's illustrative values."""

    min_correlation: float = 0.85
    max_mae: float = 0.15
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if not -1.0 <= self.min_correlation <= 1.0:
            raise ValueError(
                f"min_correlation must be in [-1, 1], got {self.min_correlation}"
            )
        if self.max_mae <= 0:
            raise ValueError(f"max_mae must be positive, got {self.max_mae}")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )


def _insufficient(reason: str, confidence: float) -> TTestSummary:
    nan = float("nan")
    return TTestSummary(
        statistic=nan,
        df=nan,
        critical_value=nan,
        confidence=confidence,
        sufficient=False,
        reason=reason,
    )


def t_statistic_from_moments(
    a: SampleMoments,
    b: SampleMoments,
    confidence: float = 0.95,
) -> TTestSummary:
    """The paper's two-sample t statistic (Eqs. 8-11) from moments.

    Uses the unpooled standard error ``sqrt(S_a^2/n + S_b^2/m)`` and
    ``n + m - 2`` degrees of freedom, exactly as Section VI.A.  The
    arithmetic matches :func:`repro.transfer.hypothesis.two_sample_t_test`
    bit-for-bit when fed :meth:`SampleMoments.from_values` moments.
    """
    if a.n < 2 or b.n < 2:
        return _insufficient(
            f"need >= 2 observations per sample (n_a={a.n}, n_b={b.n})",
            confidence,
        )
    se = standard_error_of_difference(a.var, a.n, b.var, b.n)
    if se == 0.0:
        return _insufficient("both samples have zero variance", confidence)
    statistic = (a.mean - b.mean) / se
    df = a.n + b.n - 2
    return TTestSummary(
        statistic=statistic,
        df=float(df),
        critical_value=t_critical_value(df, confidence),
        confidence=confidence,
        sufficient=True,
    )


def pearson_from_comoments(m2_x: float, m2_y: float, comoment: float) -> float:
    """Eq. 12's C from centered second moments.

    ``m2_*`` are sums of squared deviations and ``comoment`` the sum of
    cross deviations (the quantities a paired Welford accumulator
    maintains); the shared ``1/(n-1)`` factors cancel.  Degenerate
    windows (either side constant) return 0.0, matching
    :func:`repro.stats.descriptive.corrcoef`'s convention.
    """
    if m2_x <= 0.0 or m2_y <= 0.0:
        return 0.0
    return comoment / math.sqrt(m2_x * m2_y)


def paired_arrays(
    predicted: Sequence[float], actual: Sequence[float]
) -> tuple:
    """Validate a (predicted, actual) pair into equal-length 1-D arrays."""
    p = np.asarray(predicted, dtype=float)
    a = np.asarray(actual, dtype=float)
    if p.ndim != 1 or a.ndim != 1 or p.size != a.size:
        raise ValueError(
            f"predicted/actual must be equal-length 1-D arrays, "
            f"got shapes {p.shape} and {a.shape}"
        )
    if p.size == 0:
        raise ValueError("need at least one prediction")
    if not (np.all(np.isfinite(p)) and np.all(np.isfinite(a))):
        raise ValueError("predictions or actuals contain NaN/inf")
    return p, a


def correlation_coefficient(
    predicted: Sequence[float], actual: Sequence[float]
) -> float:
    """Equation 12: Pearson correlation of predicted vs. actual."""
    p, a = paired_arrays(predicted, actual)
    return corrcoef(p, a)


def mean_absolute_error(
    predicted: Sequence[float], actual: Sequence[float]
) -> float:
    """Equation 13: mean absolute error, in CPI units."""
    p, a = paired_arrays(predicted, actual)
    return float(np.mean(np.abs(p - a)))


def meets_accuracy_thresholds(
    correlation: float,
    mae: float,
    criteria: TransferCriteria = TransferCriteria(),
) -> bool:
    """Section VI.B acceptance: C above and MAE below their thresholds.

    NaN inputs fail closed (a window with no labelled traffic is not
    evidence of transferability).
    """
    return correlation > criteria.min_correlation and mae < criteria.max_mae
