"""Probability distributions needed by the hypothesis tests.

Each distribution exposes ``cdf`` and ``sf`` (survival function) plus a
``two_sided_p(statistic)`` helper where that notion makes sense, and an
inverse CDF via bisection (``ppf``) so the tests can report critical
values like the paper's 1.960 threshold at 95% confidence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.stats.special import (
    erf,
    regularized_incomplete_beta,
    regularized_lower_gamma,
)

__all__ = ["Normal", "StudentT", "FDistribution", "ChiSquare", "t_critical_value"]


def _bisect_ppf(cdf, p: float, lo: float, hi: float, tol: float = 1e-12) -> float:
    """Invert a monotone CDF by bisection on a bracketing interval."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"ppf requires 0 < p < 1, got {p}")
    # Expand the bracket until it contains the quantile.
    for _ in range(200):
        if cdf(lo) <= p:
            break
        lo *= 2.0 if lo < 0 else 0.5
        lo = lo if lo != 0.0 else -1.0
    for _ in range(200):
        if cdf(hi) >= p:
            break
        hi *= 2.0 if hi > 0 else 0.5
        hi = hi if hi != 0.0 else 1.0
    for _ in range(400):
        mid = 0.5 * (lo + hi)
        if cdf(mid) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol * max(1.0, abs(hi)):
            break
    return 0.5 * (lo + hi)


@dataclass(frozen=True)
class Normal:
    """Normal distribution with the given mean and standard deviation."""

    mu: float = 0.0
    sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.sigma <= 0.0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")

    def cdf(self, x: float) -> float:
        z = (x - self.mu) / (self.sigma * math.sqrt(2.0))
        return 0.5 * (1.0 + erf(z))

    def sf(self, x: float) -> float:
        return 1.0 - self.cdf(x)

    def pdf(self, x: float) -> float:
        z = (x - self.mu) / self.sigma
        return math.exp(-0.5 * z * z) / (self.sigma * math.sqrt(2.0 * math.pi))

    def ppf(self, p: float) -> float:
        return _bisect_ppf(self.cdf, p, self.mu - 20 * self.sigma, self.mu + 20 * self.sigma)

    def two_sided_p(self, statistic: float) -> float:
        """P(|Z| >= |statistic|) for the standardized statistic."""
        z = abs(statistic - self.mu) / self.sigma
        return 2.0 * Normal().sf(z)


@dataclass(frozen=True)
class StudentT:
    """Student-t distribution with ``df`` degrees of freedom."""

    df: float

    def __post_init__(self) -> None:
        if self.df <= 0.0:
            raise ValueError(f"degrees of freedom must be positive, got {self.df}")

    def cdf(self, x: float) -> float:
        if x == 0.0:
            return 0.5
        tail = 0.5 * regularized_incomplete_beta(
            0.5 * self.df, 0.5, self.df / (self.df + x * x)
        )
        return 1.0 - tail if x > 0.0 else tail

    def sf(self, x: float) -> float:
        return self.cdf(-x)

    def ppf(self, p: float) -> float:
        return _bisect_ppf(self.cdf, p, -50.0, 50.0)

    def two_sided_p(self, statistic: float) -> float:
        """P(|T| >= |statistic|)."""
        return regularized_incomplete_beta(
            0.5 * self.df, 0.5, self.df / (self.df + statistic * statistic)
        )

    def critical_value(self, confidence: float = 0.95) -> float:
        """Two-sided critical value, e.g. ~1.960 at 95% for large df.

        Memoized on ``(df, confidence)``: the bisection PPF costs tens
        of microseconds, and streaming callers (the drift detectors)
        ask for the same quantile on every evaluation.
        """
        if not 0.0 < confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {confidence}")
        return _t_critical_cached(self.df, confidence)


@lru_cache(maxsize=4096)
def _t_critical_cached(df: float, confidence: float) -> float:
    return StudentT(df).ppf(0.5 + confidence / 2.0)


def t_critical_value(df: float, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value without a distribution object.

    Same memoized quantile as :meth:`StudentT.critical_value`; streaming
    callers evaluating per batch use this to skip even the dataclass
    construction.
    """
    if df <= 0.0:
        raise ValueError(f"degrees of freedom must be positive, got {df}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return _t_critical_cached(df, confidence)


@dataclass(frozen=True)
class FDistribution:
    """F distribution with ``dfn`` numerator and ``dfd`` denominator df."""

    dfn: float
    dfd: float

    def __post_init__(self) -> None:
        if self.dfn <= 0.0 or self.dfd <= 0.0:
            raise ValueError(
                f"degrees of freedom must be positive, got dfn={self.dfn}, dfd={self.dfd}"
            )

    def cdf(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        return regularized_incomplete_beta(
            0.5 * self.dfn, 0.5 * self.dfd, self.dfn * x / (self.dfn * x + self.dfd)
        )

    def sf(self, x: float) -> float:
        if x <= 0.0:
            return 1.0
        return regularized_incomplete_beta(
            0.5 * self.dfd, 0.5 * self.dfn, self.dfd / (self.dfn * x + self.dfd)
        )

    def ppf(self, p: float) -> float:
        return _bisect_ppf(self.cdf, p, 1e-12, 1e6)


@dataclass(frozen=True)
class ChiSquare:
    """Chi-square distribution with ``df`` degrees of freedom."""

    df: float

    def __post_init__(self) -> None:
        if self.df <= 0.0:
            raise ValueError(f"degrees of freedom must be positive, got {self.df}")

    def cdf(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        return regularized_lower_gamma(0.5 * self.df, 0.5 * x)

    def sf(self, x: float) -> float:
        return 1.0 - self.cdf(x)

    def ppf(self, p: float) -> float:
        return _bisect_ppf(self.cdf, p, 1e-12, 1e7)
