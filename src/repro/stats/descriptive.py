"""Descriptive estimators — Equations 8-11 of the paper.

The paper estimates means (Eq. 8), unbiased variances (Eq. 9) and the
standard error of the difference between two sample means (Eqs. 10-11)
before forming the two-sample t statistics.  Those estimators live
here, together with covariance/correlation used by the prediction
accuracy metrics (Eq. 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "Summary",
    "mean",
    "sample_var",
    "sample_std",
    "covariance",
    "corrcoef",
    "standard_error_of_difference",
    "summarize",
]


def _as_array(values: Sequence[float]) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D sequence, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("expected a non-empty sequence")
    if not np.all(np.isfinite(arr)):
        raise ValueError("sequence contains NaN or infinite values")
    return arr


def mean(values: Sequence[float]) -> float:
    """Sample mean (Eq. 8)."""
    return float(_as_array(values).mean())


def sample_var(values: Sequence[float]) -> float:
    """Unbiased sample variance with the n-1 denominator (Eq. 9)."""
    arr = _as_array(values)
    if arr.size < 2:
        raise ValueError("sample variance requires at least 2 observations")
    return float(arr.var(ddof=1))


def sample_std(values: Sequence[float]) -> float:
    """Unbiased-variance-based sample standard deviation."""
    return float(np.sqrt(sample_var(values)))


def covariance(x: Sequence[float], y: Sequence[float]) -> float:
    """Unbiased sample covariance between two equal-length sequences."""
    ax, ay = _as_array(x), _as_array(y)
    if ax.size != ay.size:
        raise ValueError(f"length mismatch: {ax.size} vs {ay.size}")
    if ax.size < 2:
        raise ValueError("covariance requires at least 2 observations")
    return float(np.cov(ax, ay, ddof=1)[0, 1])


def corrcoef(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient.

    This is the paper's metric ``C`` (Eq. 12) when ``x`` holds the
    predicted values and ``y`` the actual values.  Returns 0.0 when
    either sequence is constant (no linear relationship measurable).
    """
    ax, ay = _as_array(x), _as_array(y)
    if ax.size != ay.size:
        raise ValueError(f"length mismatch: {ax.size} vs {ay.size}")
    sx = ax.std(ddof=1)
    sy = ay.std(ddof=1)
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(np.cov(ax, ay, ddof=1)[0, 1] / (sx * sy))


def standard_error_of_difference(
    var_a: float, n_a: int, var_b: float, n_b: int
) -> float:
    """Unbiased standard error of the difference of two means (Eqs. 10-11).

    ``sqrt(S_a^2 / n_a + S_b^2 / n_b)`` — the unpooled (Welch-style) form
    used by the paper for both the L1-vs-L2 and actual-vs-predicted tests.
    """
    if n_a < 2 or n_b < 2:
        raise ValueError("each sample needs at least 2 observations")
    if var_a < 0.0 or var_b < 0.0:
        raise ValueError("variances must be non-negative")
    return float(np.sqrt(var_a / n_a + var_b / n_b))


@dataclass(frozen=True)
class Summary:
    """Descriptive summary of one sample, in the paper's notation."""

    n: int
    mean: float
    var: float
    std: float
    minimum: float
    maximum: float
    median: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.6g} std={self.std:.6g} "
            f"min={self.minimum:.6g} median={self.median:.6g} max={self.maximum:.6g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Compute the full descriptive summary of a sample."""
    arr = _as_array(values)
    var = float(arr.var(ddof=1)) if arr.size > 1 else 0.0
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        var=var,
        std=float(np.sqrt(var)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
    )
