"""Special functions implemented from first principles.

The hypothesis tests of the paper (Section VI.A) need tail probabilities
of the Student-t and F distributions, which reduce to the regularized
incomplete beta function; the normal approximation used by the
Mann-Whitney test needs ``erf``.  All of them are implemented here with
classic numerical recipes: a power series plus continued-fraction
evaluation (modified Lentz's method) for the incomplete beta/gamma
functions and a Lanczos approximation for ``log_gamma``.

Accuracy is validated against scipy in ``tests/stats/test_special.py``
to at least 1e-10 over the ranges the library uses.
"""

from __future__ import annotations

import math

__all__ = [
    "erf",
    "erfc",
    "log_gamma",
    "log_beta",
    "regularized_incomplete_beta",
    "regularized_lower_gamma",
]

# Lanczos coefficients (g=7, n=9); classic choice giving ~15 significant
# digits for real arguments.
_LANCZOS_G = 7.0
_LANCZOS_COEFFS = (
    0.99999999999980993,
    676.5203681218851,
    -1259.1392167224028,
    771.32342877765313,
    -176.61502916214059,
    12.507343278686905,
    -0.13857109526572012,
    9.9843695780195716e-6,
    1.5056327351493116e-7,
)

_MAX_ITERATIONS = 500
_EPS = 3.0e-15
_FPMIN = 1.0e-300


def log_gamma(x: float) -> float:
    """Natural log of the gamma function for ``x > 0``.

    Uses the Lanczos approximation with reflection for ``x < 0.5``.
    """
    if x <= 0.0 and x == math.floor(x):
        raise ValueError(f"log_gamma undefined at non-positive integer {x}")
    if x < 0.5:
        # Reflection formula: Gamma(x) * Gamma(1-x) = pi / sin(pi x).
        return math.log(math.pi / abs(math.sin(math.pi * x))) - log_gamma(1.0 - x)
    x -= 1.0
    acc = _LANCZOS_COEFFS[0]
    for i, coeff in enumerate(_LANCZOS_COEFFS[1:], start=1):
        acc += coeff / (x + i)
    t = x + _LANCZOS_G + 0.5
    return 0.5 * math.log(2.0 * math.pi) + (x + 0.5) * math.log(t) - t + math.log(acc)


def log_beta(a: float, b: float) -> float:
    """Natural log of the beta function B(a, b)."""
    if a <= 0.0 or b <= 0.0:
        raise ValueError(f"log_beta requires positive arguments, got a={a}, b={b}")
    return log_gamma(a) + log_gamma(b) - log_gamma(a + b)


def erf(x: float) -> float:
    """Error function, accurate to ~1e-15.

    Computed through the regularized lower incomplete gamma function:
    ``erf(x) = P(1/2, x^2)`` for ``x >= 0``.
    """
    if x == 0.0:
        return 0.0
    sign = 1.0 if x > 0.0 else -1.0
    return sign * regularized_lower_gamma(0.5, x * x)


def erfc(x: float) -> float:
    """Complementary error function ``1 - erf(x)``.

    For large positive ``x`` this goes through the upper incomplete
    gamma continued fraction and therefore keeps full relative accuracy
    deep into the tail (where ``1 - erf(x)`` would underflow to 0).
    """
    if x < 0.0:
        return 2.0 - erfc(-x)
    if x == 0.0:
        return 1.0
    return 1.0 - regularized_lower_gamma(0.5, x * x)


def _lower_gamma_series(a: float, x: float) -> float:
    """Series representation of P(a, x); converges fast for x < a + 1."""
    term = 1.0 / a
    total = term
    denominator = a
    for _ in range(_MAX_ITERATIONS):
        denominator += 1.0
        term *= x / denominator
        total += term
        if abs(term) < abs(total) * _EPS:
            break
    return total * math.exp(-x + a * math.log(x) - log_gamma(a))


def _upper_gamma_continued_fraction(a: float, x: float) -> float:
    """Continued fraction for Q(a, x); converges fast for x >= a + 1.

    Modified Lentz's method as in Numerical Recipes section 6.2.
    """
    b = x + 1.0 - a
    c = 1.0 / _FPMIN
    d = 1.0 / b
    h = d
    for i in range(1, _MAX_ITERATIONS + 1):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < _FPMIN:
            d = _FPMIN
        c = b + an / c
        if abs(c) < _FPMIN:
            c = _FPMIN
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPS:
            break
    return h * math.exp(-x + a * math.log(x) - log_gamma(a))


def regularized_lower_gamma(a: float, x: float) -> float:
    """Regularized lower incomplete gamma function P(a, x)."""
    if a <= 0.0:
        raise ValueError(f"regularized_lower_gamma requires a > 0, got {a}")
    if x < 0.0:
        raise ValueError(f"regularized_lower_gamma requires x >= 0, got {x}")
    if x == 0.0:
        return 0.0
    if x < a + 1.0:
        return _lower_gamma_series(a, x)
    return 1.0 - _upper_gamma_continued_fraction(a, x)


def _beta_continued_fraction(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta function.

    Modified Lentz's method as in Numerical Recipes section 6.4.
    """
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _FPMIN:
        d = _FPMIN
    d = 1.0 / d
    h = d
    for m in range(1, _MAX_ITERATIONS + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _FPMIN:
            d = _FPMIN
        c = 1.0 + aa / c
        if abs(c) < _FPMIN:
            c = _FPMIN
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _FPMIN:
            d = _FPMIN
        c = 1.0 + aa / c
        if abs(c) < _FPMIN:
            c = _FPMIN
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPS:
            break
    return h


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b).

    This is the CDF of the Beta(a, b) distribution at ``x`` and the
    building block for the Student-t and F CDFs.
    """
    if a <= 0.0 or b <= 0.0:
        raise ValueError(f"incomplete beta requires positive a, b; got a={a}, b={b}")
    if x < 0.0 or x > 1.0:
        raise ValueError(f"incomplete beta requires 0 <= x <= 1, got {x}")
    if x == 0.0:
        return 0.0
    if x == 1.0:
        return 1.0
    front = math.exp(
        a * math.log(x) + b * math.log(1.0 - x) - log_beta(a, b)
    )
    # Use the symmetry relation to stay in the fast-converging regime.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_continued_fraction(a, b, x) / a
    return 1.0 - front * _beta_continued_fraction(b, a, 1.0 - x) / b
