"""CART-style regression tree with constant leaves.

Same SDR split machinery as the model tree, but every leaf predicts
its training mean — isolating the value of M5's leaf *linear models*
in the ablation (a constant-leaf tree needs far more leaves to
approximate a sloped regime).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.mtree.splitting import find_best_split

__all__ = ["CartRegressionTree"]


@dataclass
class _Leaf:
    value: float
    n: int


@dataclass
class _Split:
    feature_index: int
    threshold: float
    left: "_Node"
    right: "_Node"
    n: int


_Node = Union[_Leaf, _Split]


class CartRegressionTree:
    """Variance-reduction regression tree with mean-valued leaves."""

    def __init__(
        self,
        min_leaf: int = 10,
        max_depth: int = 14,
        sd_threshold: float = 0.01,
    ) -> None:
        if min_leaf < 1:
            raise ValueError(f"min_leaf must be >= 1, got {min_leaf}")
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.min_leaf = min_leaf
        self.max_depth = max_depth
        self.sd_threshold = sd_threshold
        self._root: Optional[_Node] = None
        self._n_features = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "CartRegressionTree":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ValueError(f"inconsistent shapes X={X.shape}, y={y.shape}")
        if X.shape[0] < 1:
            raise ValueError("need at least 1 sample")
        self._n_features = X.shape[1]
        root_sd = float(np.std(y))
        self._root = self._build(X, y, 0, root_sd)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int, root_sd: float) -> _Node:
        n = y.size
        if (
            n < 2 * self.min_leaf
            or depth >= self.max_depth
            or float(np.std(y)) <= self.sd_threshold * root_sd
        ):
            return _Leaf(value=float(np.mean(y)), n=n)
        split = find_best_split(X, y, self.min_leaf)
        if split is None:
            return _Leaf(value=float(np.mean(y)), n=n)
        mask = X[:, split.feature_index] <= split.threshold
        return _Split(
            feature_index=split.feature_index,
            threshold=split.threshold,
            left=self._build(X[mask], y[mask], depth + 1, root_sd),
            right=self._build(X[~mask], y[~mask], depth + 1, root_sd),
            n=n,
        )

    @property
    def n_leaves(self) -> int:
        def count(node: _Node) -> int:
            if isinstance(node, _Leaf):
                return 1
            return count(node.left) + count(node.right)

        if self._root is None:
            raise RuntimeError("model is not fitted")
        return count(self._root)

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self._n_features:
            raise ValueError(
                f"expected (n, {self._n_features}) inputs, got {X.shape}"
            )
        out = np.empty(X.shape[0], dtype=float)

        def visit(node: _Node, rows: np.ndarray) -> None:
            if rows.size == 0:
                return
            if isinstance(node, _Leaf):
                out[rows] = node.value
                return
            go_left = X[rows, node.feature_index] <= node.threshold
            visit(node.left, rows[go_left])
            visit(node.right, rows[~go_left])

        visit(self._root, np.arange(X.shape[0]))
        return out
