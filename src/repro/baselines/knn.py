"""k-nearest-neighbors regression.

A non-parametric baseline: predict the (optionally distance-weighted)
mean CPI of the k nearest training samples under standardized
Euclidean distance.  Features are z-scored on the training set because
the Table I densities span four orders of magnitude.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["KnnRegressor"]


class KnnRegressor:
    """Brute-force kNN with training-set standardization."""

    def __init__(self, k: int = 10, weighted: bool = True) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.weighted = weighted
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KnnRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ValueError(f"inconsistent shapes X={X.shape}, y={y.shape}")
        if X.shape[0] < self.k:
            raise ValueError(
                f"need at least k={self.k} samples, got {X.shape[0]}"
            )
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._scale = scale
        self._X = (X - self._mean) / self._scale
        self._y = y
        return self

    def predict(self, X: np.ndarray, batch_size: int = 512) -> np.ndarray:
        if self._X is None or self._y is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self._X.shape[1]:
            raise ValueError(
                f"expected (n, {self._X.shape[1]}) inputs, got {X.shape}"
            )
        Z = (X - self._mean) / self._scale
        out = np.empty(Z.shape[0], dtype=float)
        train_sq = np.sum(self._X**2, axis=1)
        for start in range(0, Z.shape[0], batch_size):
            batch = Z[start : start + batch_size]
            # Squared distances via the expansion trick; clip the tiny
            # negatives that cancellation can produce.
            d2 = np.maximum(
                train_sq[None, :]
                - 2.0 * batch @ self._X.T
                + np.sum(batch**2, axis=1)[:, None],
                0.0,
            )
            neighbor_idx = np.argpartition(d2, self.k - 1, axis=1)[:, : self.k]
            neighbor_y = self._y[neighbor_idx]
            if self.weighted:
                neighbor_d = np.take_along_axis(d2, neighbor_idx, axis=1)
                weights = 1.0 / (np.sqrt(neighbor_d) + 1e-12)
                out[start : start + batch.shape[0]] = (
                    np.sum(weights * neighbor_y, axis=1) / np.sum(weights, axis=1)
                )
            else:
                out[start : start + batch.shape[0]] = neighbor_y.mean(axis=1)
        return out
