"""Global multiple linear regression.

The single-hyperplane model every other technique is measured against:
"most other linear and non-linear regression techniques fit a single
function" (Section III).  Its failure to capture the regime structure
is precisely why the paper uses model trees.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["LinearRegressionBaseline"]


class LinearRegressionBaseline:
    """Ordinary least squares with a ridge-stabilized normal solve."""

    def __init__(self, ridge: float = 1e-8) -> None:
        if ridge < 0:
            raise ValueError(f"ridge must be non-negative, got {ridge}")
        self.ridge = ridge
        self.intercept_: float = 0.0
        self.coef_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegressionBaseline":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ValueError(f"inconsistent shapes X={X.shape}, y={y.shape}")
        if X.shape[0] < 2:
            raise ValueError("need at least 2 samples")
        design = np.column_stack([np.ones(X.shape[0]), X])
        gram = design.T @ design
        gram[np.arange(1, gram.shape[0]), np.arange(1, gram.shape[0])] += self.ridge
        try:
            beta = np.linalg.solve(gram, design.T @ y)
        except np.linalg.LinAlgError:
            beta, *_ = np.linalg.lstsq(design, y, rcond=None)
        self.intercept_ = float(beta[0])
        self.coef_ = beta[1:]
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.coef_.size:
            raise ValueError(
                f"expected (n, {self.coef_.size}) inputs, got {X.shape}"
            )
        return X @ self.coef_ + self.intercept_
