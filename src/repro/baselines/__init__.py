"""Baseline regressors for the model-family comparison.

The related work the paper builds on ([15]) compared model trees
against other regression algorithms (ANNs, SVMs, linear regression)
and found model trees competitive while remaining interpretable.
These baselines support that ablation: global ordinary least squares,
a CART-style regression tree with constant leaves, k-nearest
neighbors, and a small multilayer perceptron — all numpy-only,
all sharing the ``fit(X, y)`` / ``predict(X)`` interface.
"""

from repro.baselines.linreg import LinearRegressionBaseline
from repro.baselines.cart import CartRegressionTree
from repro.baselines.knn import KnnRegressor
from repro.baselines.mlp import MlpRegressor

__all__ = [
    "CartRegressionTree",
    "KnnRegressor",
    "LinearRegressionBaseline",
    "MlpRegressor",
]
