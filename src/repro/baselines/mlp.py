"""A small multilayer perceptron regressor (numpy only).

Stands in for the artificial-neural-network comparison of [15]: a
single ReLU hidden layer trained with Adam on mini-batches of the
squared error.  Inputs are z-scored and the target is centered/scaled
on the training set; the point of the baseline is accuracy-versus-
interpretability, not deep-learning sophistication.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["MlpRegressor"]


class MlpRegressor:
    """One-hidden-layer ReLU network trained with Adam."""

    def __init__(
        self,
        hidden: int = 32,
        epochs: int = 60,
        batch_size: int = 128,
        learning_rate: float = 1e-3,
        l2: float = 1e-5,
        seed: int = 0,
    ) -> None:
        if hidden < 1:
            raise ValueError(f"hidden must be >= 1, got {hidden}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.l2 = l2
        self.seed = seed
        self._params: Optional[dict] = None
        self._x_mean: Optional[np.ndarray] = None
        self._x_scale: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_scale = 1.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MlpRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ValueError(f"inconsistent shapes X={X.shape}, y={y.shape}")
        if X.shape[0] < 2:
            raise ValueError("need at least 2 samples")
        rng = np.random.default_rng(self.seed)
        self._x_mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._x_scale = scale
        Z = (X - self._x_mean) / self._x_scale
        self._y_mean = float(y.mean())
        self._y_scale = float(y.std()) or 1.0
        target = (y - self._y_mean) / self._y_scale

        d = Z.shape[1]
        params = {
            "W1": rng.normal(0.0, np.sqrt(2.0 / d), (d, self.hidden)),
            "b1": np.zeros(self.hidden),
            "W2": rng.normal(0.0, np.sqrt(1.0 / self.hidden), (self.hidden,)),
            "b2": 0.0,
        }
        moments = {k: (np.zeros_like(np.asarray(v)), np.zeros_like(np.asarray(v)))
                   for k, v in params.items()}
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        n = Z.shape[0]
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                xb, yb = Z[batch], target[batch]
                # Forward.
                pre = xb @ params["W1"] + params["b1"]
                act = np.maximum(pre, 0.0)
                pred = act @ params["W2"] + params["b2"]
                err = pred - yb
                m = xb.shape[0]
                # Backward.
                grad_W2 = act.T @ err / m + self.l2 * params["W2"]
                grad_b2 = float(err.mean())
                upstream = np.outer(err, params["W2"]) * (pre > 0.0)
                grad_W1 = xb.T @ upstream / m + self.l2 * params["W1"]
                grad_b1 = upstream.mean(axis=0)
                grads = {
                    "W1": grad_W1,
                    "b1": grad_b1,
                    "W2": grad_W2,
                    "b2": grad_b2,
                }
                step += 1
                for key in params:
                    g = np.asarray(grads[key])
                    m1, m2 = moments[key]
                    m1 = beta1 * m1 + (1 - beta1) * g
                    m2 = beta2 * m2 + (1 - beta2) * g**2
                    moments[key] = (m1, m2)
                    m1_hat = m1 / (1 - beta1**step)
                    m2_hat = m2 / (1 - beta2**step)
                    update = self.learning_rate * m1_hat / (np.sqrt(m2_hat) + eps)
                    if key == "b2":
                        params[key] = float(params[key] - update)
                    else:
                        params[key] = params[key] - update
        self._params = params
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._params is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self._x_mean.size:
            raise ValueError(
                f"expected (n, {self._x_mean.size}) inputs, got {X.shape}"
            )
        Z = (X - self._x_mean) / self._x_scale
        act = np.maximum(Z @ self._params["W1"] + self._params["b1"], 0.0)
        pred = act @ self._params["W2"] + self._params["b2"]
        return pred * self._y_scale + self._y_mean
