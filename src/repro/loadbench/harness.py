"""The load generator: closed-loop and open-loop HTTP driving.

Two load models, because they answer different questions:

**Closed loop** — K client threads, each with one persistent
connection, each looping request → response → think-time.  Offered
load adapts to service rate (a slow server simply sees its clients
wait), so this measures *capacity*: the achieved-throughput plateau as
K grows is the saturation point.  This is the SPEC-style "how much can
the box do" number.

**Open loop** — arrivals are a Poisson process at a target rate,
independent of how the server is doing; requests that arrive while
others are in flight queue.  This measures *latency at an offered
rate*, the question a production SLO asks.  Crucially the latency
clock for each request starts at its **scheduled arrival time**, not
when a sender thread finally got around to transmitting it: starting
at send time silently excuses server-induced backlog — the
coordinated-omission trap — and reports fantasy percentiles exactly
when the server is the problem.

Implementation notes: persistent ``http.client.HTTPConnection`` per
sender thread (reconnect-per-request would measure TCP handshakes and,
against a ``SO_REUSEPORT`` cluster, re-roll the replica hash per
request — one connection per thread is also what keeps replica
affinity realistic); percentiles are nearest-rank over every recorded
sample, no binning; errors (connect failures, non-2xx, timeouts) are
counted and excluded from the latency population rather than recorded
as zero-latency successes.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional
from urllib.parse import urlsplit

__all__ = ["LoadConfig", "LoadResult", "run_load", "percentile"]


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (the convention used across the repo)."""
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class LoadConfig:
    """One load run against one URL."""

    url: str  #: server base URL, e.g. http://127.0.0.1:8080
    model: str = "latest"
    mode: str = "closed"  #: "closed" | "open"
    duration_s: float = 10.0
    #: closed loop: concurrent connections; open loop: sender pool size
    #: (bounds in-flight requests the harness itself can sustain).
    connections: int = 4
    #: closed loop only — per-iteration think time (0 = back to back).
    think_ms: float = 0.0
    #: open loop only — offered arrival rate, requests/s.
    rate: float = 100.0
    #: rows per request (the serving batch the paper's numbers use).
    batch_rows: int = 64
    #: the request body; built once, identical for every request, so
    #: the measurement isolates the serving path, not payload variety.
    instances: Optional[List[List[float]]] = None
    timeout_s: float = 30.0
    seed: int = 20080402

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open': {self.mode!r}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be > 0: {self.duration_s}")
        if self.connections < 1:
            raise ValueError(f"connections must be >= 1: {self.connections}")
        if self.mode == "open" and self.rate <= 0:
            raise ValueError(f"rate must be > 0 in open mode: {self.rate}")


@dataclass
class LoadResult:
    """What one run measured; :meth:`as_dict` is the snapshot section."""

    mode: str
    duration_s: float
    requests: int
    errors: int
    rows: int
    achieved_rps: float
    achieved_rows_per_s: float
    offered_rps: Optional[float]  #: open loop only
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    latency_max_ms: float
    connections: int
    batch_rows: int
    replicas_seen: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "duration_s": self.duration_s,
            "requests": self.requests,
            "errors": self.errors,
            "rows": self.rows,
            "achieved_rps": self.achieved_rps,
            "achieved_rows_per_s": self.achieved_rows_per_s,
            "offered_rps": self.offered_rps,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_mean_ms": self.latency_mean_ms,
            "latency_max_ms": self.latency_max_ms,
            "connections": self.connections,
            "batch_rows": self.batch_rows,
            "replicas_seen": sorted(self.replicas_seen),
        }


class _Sender:
    """One persistent-connection client thread's state."""

    def __init__(self, host: str, port: int, timeout_s: float) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.conn: Optional[http.client.HTTPConnection] = None

    def request(self, path: str, body: bytes) -> tuple:
        """POST once; returns (ok, replica_header).  Reconnects lazily."""
        if self.conn is None:
            self.conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        try:
            self.conn.request(
                "POST",
                path,
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = self.conn.getresponse()
            replica = response.getheader("X-Repro-Replica")
            response.read()
            if response.status != 200:
                return False, replica
            return True, replica
        except (OSError, http.client.HTTPException):
            # Drop the connection; the next call re-establishes it.
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None
            return False, None

    def close(self) -> None:
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None


def _default_instances(
    batch_rows: int, seed: int, n_features: int = 3
) -> List[List[float]]:
    """A deterministic payload of ``n_features``-wide rows."""
    rng = random.Random(seed)
    return [
        [rng.uniform(-2, 2) for _ in range(n_features)]
        for _ in range(batch_rows)
    ]


def run_load(config: LoadConfig) -> LoadResult:
    """Drive one load run; blocks for ``config.duration_s``."""
    parts = urlsplit(config.url)
    host, port = parts.hostname or "127.0.0.1", parts.port or 80
    path = f"/v1/models/{config.model}/predict"
    instances = config.instances
    if instances is None:
        instances = _default_instances(config.batch_rows, config.seed)
    body = json.dumps({"instances": instances}).encode()
    rows_per_request = len(instances)

    lock = threading.Lock()
    latencies: List[float] = []
    errors = [0]
    replicas: set = set()
    stop = threading.Event()
    started = time.perf_counter()
    deadline = started + config.duration_s

    def record(ok: bool, replica: Optional[str], latency_s: float) -> None:
        with lock:
            if ok:
                latencies.append(latency_s)
            else:
                errors[0] += 1
            if replica is not None:
                replicas.add(replica)

    offered: Optional[float] = None
    threads: List[threading.Thread] = []

    if config.mode == "closed":

        def closed_client(index: int) -> None:
            sender = _Sender(host, port, config.timeout_s)
            think_s = config.think_ms / 1e3
            try:
                while not stop.is_set() and time.perf_counter() < deadline:
                    t0 = time.perf_counter()
                    ok, replica = sender.request(path, body)
                    record(ok, replica, time.perf_counter() - t0)
                    if think_s > 0:
                        stop.wait(think_s)
            finally:
                sender.close()

        threads = [
            threading.Thread(
                target=closed_client, args=(i,), name=f"loadbench-{i}",
                daemon=True,
            )
            for i in range(config.connections)
        ]
    else:
        # Open loop: one shared schedule of Poisson arrival offsets,
        # partitioned round-robin over the sender pool.  Each sender
        # sleeps to its next *scheduled* time and measures from that
        # schedule point — late sends (server backlog, GIL) eat into
        # the recorded latency instead of being silently omitted.
        rng = random.Random(config.seed)
        arrivals: List[float] = []
        t = 0.0
        while True:
            t += rng.expovariate(config.rate)
            if t >= config.duration_s:
                break
            arrivals.append(t)
        offered = len(arrivals) / config.duration_s

        def open_client(index: int) -> None:
            sender = _Sender(host, port, config.timeout_s)
            try:
                for scheduled in arrivals[index :: config.connections]:
                    target = started + scheduled
                    delay = target - time.perf_counter()
                    if delay > 0 and stop.wait(delay):
                        break
                    if stop.is_set():
                        break
                    ok, replica = sender.request(path, body)
                    record(ok, replica, time.perf_counter() - target)
            finally:
                sender.close()

        threads = [
            threading.Thread(
                target=open_client, args=(i,), name=f"loadbench-{i}",
                daemon=True,
            )
            for i in range(config.connections)
        ]

    for thread in threads:
        thread.start()
    for thread in threads:
        # Bounded: a hung server cannot hang the harness forever.
        thread.join(config.duration_s + config.timeout_s + 5.0)
    stop.set()
    elapsed = time.perf_counter() - started

    requests = len(latencies)
    return LoadResult(
        mode=config.mode,
        duration_s=elapsed,
        requests=requests,
        errors=errors[0],
        rows=requests * rows_per_request,
        achieved_rps=requests / elapsed if elapsed > 0 else 0.0,
        achieved_rows_per_s=(
            requests * rows_per_request / elapsed if elapsed > 0 else 0.0
        ),
        offered_rps=offered,
        latency_p50_ms=percentile(latencies, 0.50) * 1e3,
        latency_p95_ms=percentile(latencies, 0.95) * 1e3,
        latency_p99_ms=percentile(latencies, 0.99) * 1e3,
        latency_mean_ms=(
            sum(latencies) / len(latencies) * 1e3 if latencies else float("nan")
        ),
        latency_max_ms=max(latencies) * 1e3 if latencies else float("nan"),
        connections=config.connections,
        batch_rows=rows_per_request,
        replicas_seen=sorted(replicas),
    )
