"""Closed- and open-loop load generation against the serving HTTP path.

The microbenchmarks (``repro perf``, ``run_servebench``) time the
engine from inside the process; this package measures what a *client*
sees — the full HTTP path through connection handling, JSON decode,
the batching queue, the compiled kernel and response encode — in the
two canonical load models (closed loop: K connections with think
time; open loop: Poisson arrivals at an offered rate).  See
``docs/PERFORMANCE.md`` ("The load harness") for when each model is
the right question and why the open-loop clock starts at the
*scheduled* arrival (coordinated omission).
"""

from repro.loadbench.harness import LoadConfig, LoadResult, run_load

__all__ = ["LoadConfig", "LoadResult", "run_load"]
