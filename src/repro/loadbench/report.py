"""Saturation curves and terminal rendering for the load harness.

:func:`run_saturation_curve` is the orchestration the ISSUE's
SPEC-CPU2026-style scaling story needs: boot a cluster at each worker
count, drive identical closed-loop load against it, verify one
replica-served response is bit-identical to a direct
``ModelTree.predict`` on the same rows, tear down, repeat.  Each point
is a fresh cluster on an ephemeral port so the counts never contend
with each other.
"""

from __future__ import annotations

import json
import urllib.request
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence

from repro.loadbench.harness import LoadConfig, LoadResult, run_load

__all__ = ["run_saturation_curve", "verify_bit_equality", "render_load_text"]


def verify_bit_equality(
    url: str,
    model: str,
    instances: List[List[float]],
    expected: Sequence[float],
    timeout_s: float = 30.0,
) -> Dict[str, Any]:
    """One HTTP predict vs the caller's direct ``tree.predict`` floats.

    Equality is ``==`` on the JSON-decoded floats: Python round-trips
    doubles exactly (shortest-repr), so serving is bit-identical to the
    in-process kernel or this fails — no tolerance, by design.
    """
    body = json.dumps({"instances": instances}).encode()
    request = urllib.request.Request(
        f"{url}/v1/models/{model}/predict",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout_s) as response:
        payload = json.loads(response.read())
        replica = response.headers.get("X-Repro-Replica")
    served = payload["predictions"]
    identical = list(served) == list(expected)
    return {
        "identical": identical,
        "replica": replica,
        "n": len(served),
    }


def run_saturation_curve(
    registry_dir: str,
    worker_counts: Sequence[int],
    base: LoadConfig,
    model: str = "latest",
    expected: Optional[Sequence[float]] = None,
    instances: Optional[List[List[float]]] = None,
) -> List[Dict[str, Any]]:
    """One load point per worker count, each against a fresh cluster.

    Returns one dict per count: ``{"workers", "socket_mode", "result",
    "bit_identical"}`` — ``bit_identical`` is ``None`` unless the
    caller supplied ``expected`` (the direct-predict floats for
    ``instances``).
    """
    from repro.cluster import ClusterConfig, ClusterSupervisor

    points: List[Dict[str, Any]] = []
    for workers in worker_counts:
        supervisor = ClusterSupervisor(
            ClusterConfig(
                registry_dir=registry_dir,
                workers=workers,
                port=0,
                monitor=False,
            )
        ).start()
        try:
            config = replace(base, url=supervisor.url, model=model)
            check: Optional[Dict[str, Any]] = None
            if expected is not None and instances is not None:
                check = verify_bit_equality(
                    supervisor.url, model, instances, expected
                )
            result = run_load(config)
            points.append(
                {
                    "workers": workers,
                    "socket_mode": supervisor.socket_mode,
                    "result": result.as_dict(),
                    "bit_identical": check["identical"] if check else None,
                }
            )
        finally:
            supervisor.shutdown()
    return points


def render_load_text(result: LoadResult, url: str) -> str:
    """The ``repro loadbench`` terminal report for one run."""
    lines = [
        f"loadbench  {result.mode} loop against {url}",
        (
            f"  requests {result.requests}  errors {result.errors}  "
            f"rows {result.rows}  over {result.duration_s:.2f}s"
        ),
        (
            f"  throughput {result.achieved_rps:,.1f} req/s  "
            f"{result.achieved_rows_per_s:,.0f} rows/s"
            + (
                f"  (offered {result.offered_rps:,.1f} req/s)"
                if result.offered_rps is not None
                else ""
            )
        ),
        (
            f"  latency  p50 {result.latency_p50_ms:.2f} ms  "
            f"p95 {result.latency_p95_ms:.2f} ms  "
            f"p99 {result.latency_p99_ms:.2f} ms  "
            f"max {result.latency_max_ms:.2f} ms"
        ),
    ]
    if result.replicas_seen:
        lines.append(
            "  replicas  " + ", ".join(result.replicas_seen)
        )
    return "\n".join(lines)
