"""Online transferability monitoring for served CPI models.

The batch experiments (E7/E8) answer the paper's Section VI question
once, offline: does a model trained on suite L1 transfer to suite L2?
This package answers it *continuously*, over the traffic a deployed
model actually sees:

* :mod:`~repro.drift.window` — fixed-memory sliding/tumbling windows
  holding the sufficient statistics of recent traffic.
* :mod:`~repro.drift.stats` — the Section VI battery (Eqs. 8-13 plus
  Eq. 4 leaf-profile distance) as incremental detectors.
* :mod:`~repro.drift.monitor` — the verdict state machine with
  hysteresis, obs gauges and pluggable actions (log, JSONL audit,
  retrain trigger).
* :mod:`~repro.drift.shadow` — champion/challenger evaluation.
* :mod:`~repro.drift.hub` — per-model fan-out for a serving process.
"""

from repro.drift.hub import DriftHub
from repro.drift.monitor import (
    DriftEvent,
    DriftMonitor,
    DriftMonitorConfig,
    DriftVerdict,
    JsonlAudit,
    LogSink,
    ModelProfile,
    RetrainTrigger,
)
from repro.drift.shadow import ShadowEvaluator
from repro.drift.stats import (
    DependentTTest,
    DetectorReading,
    DetectorStatus,
    DriftCriteria,
    LeafProfileDrift,
    PredictionTTest,
    RollingCorrelation,
    RollingMae,
    build_detectors,
)
from repro.drift.window import StreamWindow, WindowSnapshot

__all__ = [
    "DriftHub",
    "DriftEvent",
    "DriftMonitor",
    "DriftMonitorConfig",
    "DriftVerdict",
    "JsonlAudit",
    "LogSink",
    "ModelProfile",
    "RetrainTrigger",
    "ShadowEvaluator",
    "DependentTTest",
    "DetectorReading",
    "DetectorStatus",
    "DriftCriteria",
    "LeafProfileDrift",
    "PredictionTTest",
    "RollingCorrelation",
    "RollingMae",
    "build_detectors",
    "StreamWindow",
    "WindowSnapshot",
]
