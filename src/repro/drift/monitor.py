"""The drift monitor: verdict state machine, actions, obs gauges.

A :class:`DriftMonitor` watches one deployed model's traffic and
continuously answers the paper's Section VI question — "does this
model still transfer to what it is seeing?" — as a typed
:class:`DriftVerdict`:

* ``INSUFFICIENT_DATA`` — not enough (labelled) traffic yet.
* ``OK`` — the rolling battery passes: C above / MAE below the
  acceptance thresholds, |t| under the critical value, leaf profile
  near the training profile.
* ``WARN`` — at least one detector breached on the latest evaluation.
* ``TRANSFER_FAILED`` — breaches persisted for ``fail_after``
  consecutive evaluations: the live confirmation of the paper's
  cross-suite result (C ≈ 0.43, MAE ≈ 0.37, t ≫ 1.96).

Hysteresis prevents flapping in both directions: escalation to
TRANSFER_FAILED needs ``fail_after`` consecutive breaching
evaluations, and recovery to OK needs ``recover_after`` consecutive
clean ones.  A single noisy window moves the monitor to WARN, then
back to OK once the clean streak completes — never to
TRANSFER_FAILED.

Every evaluation publishes gauges into the process-wide
:mod:`repro.obs.metrics` registry (so a serving ``/metrics`` scrape
sees ``repro_drift_<model>_rolling_c`` etc.) and is offered to the
configured actions: :class:`LogSink`, :class:`JsonlAudit`, and
:class:`RetrainTrigger` cover the log/audit/retrain trio, and any
callable of one :class:`DriftEvent` plugs in the same way.
"""

from __future__ import annotations

import enum
import json
import math
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.drift.stats import (
    DetectorReading,
    DetectorStatus,
    DriftCriteria,
    build_detectors,
)
from repro.drift.window import StreamWindow
from repro.obs.metrics import counter, gauge
from repro.stats.transfer import SampleMoments

__all__ = [
    "DriftVerdict",
    "ModelProfile",
    "DriftMonitorConfig",
    "DriftEvent",
    "DriftMonitor",
    "LogSink",
    "JsonlAudit",
    "RetrainTrigger",
]


class DriftVerdict(enum.Enum):
    INSUFFICIENT_DATA = "insufficient_data"
    OK = "ok"
    WARN = "warn"
    TRANSFER_FAILED = "transfer_failed"


#: Gauge encoding of the verdict (0 is healthy, higher is worse).
_VERDICT_CODES = {
    DriftVerdict.INSUFFICIENT_DATA: -1.0,
    DriftVerdict.OK: 0.0,
    DriftVerdict.WARN: 1.0,
    DriftVerdict.TRANSFER_FAILED: 2.0,
}


@dataclass(frozen=True)
class ModelProfile:
    """What the monitor knows about the model's training distribution.

    ``training_y`` (the training split's CPI moments) powers the
    dependent-variable t-test; the leaf vocabulary and training shares
    power the Eq. 4 profile detector.  Either may be absent — the
    battery degrades gracefully.
    """

    model_id: str
    leaf_names: Tuple[str, ...] = ()
    training_leaf_shares_pct: Dict[str, float] = field(default_factory=dict)
    training_y: Optional[SampleMoments] = None

    @staticmethod
    def from_tree(
        model_id: str,
        tree,
        training_y: Optional[SampleMoments] = None,
    ) -> "ModelProfile":
        """Profile a fitted :class:`~repro.mtree.tree.ModelTree`."""
        leaves = tree.leaves()
        return ModelProfile(
            model_id=model_id,
            leaf_names=tuple(leaf.name for leaf in leaves),
            training_leaf_shares_pct={
                leaf.name: 100.0 * leaf.share for leaf in leaves
            },
            training_y=training_y,
        )

    @staticmethod
    def from_record(record, tree) -> "ModelProfile":
        """Profile a registry (record, tree) pair.

        ``repro publish`` stores the training CPI moments under the
        ``train_y`` metadata key; models published before that key
        existed simply run without the dependent-variable test.
        """
        training_y = None
        payload = record.metadata.get("train_y")
        if isinstance(payload, dict):
            try:
                training_y = SampleMoments(
                    n=int(payload["n"]),
                    mean=float(payload["mean"]),
                    var=float(payload["var"]),
                )
            except (KeyError, TypeError, ValueError):
                training_y = None
        return ModelProfile.from_tree(
            record.model_id, tree, training_y=training_y
        )


@dataclass(frozen=True)
class DriftMonitorConfig:
    """Window geometry, thresholds and hysteresis for one monitor."""

    window: int = 256
    window_kind: str = "sliding"
    criteria: DriftCriteria = field(default_factory=DriftCriteria)
    fail_after: int = 3
    recover_after: int = 3

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError(f"window must be >= 2, got {self.window}")
        if self.window_kind not in ("sliding", "tumbling"):
            raise ValueError(
                f"window_kind must be 'sliding' or 'tumbling', "
                f"got {self.window_kind!r}"
            )
        if self.fail_after < 1:
            raise ValueError(f"fail_after must be >= 1, got {self.fail_after}")
        if self.recover_after < 1:
            raise ValueError(
                f"recover_after must be >= 1, got {self.recover_after}"
            )


@dataclass(frozen=True)
class DriftEvent:
    """One evaluation of the battery, as delivered to actions."""

    model_id: str
    seq: int
    records_seen: int
    window_n: int
    n_labelled: int
    verdict: DriftVerdict
    previous_verdict: DriftVerdict
    changed: bool
    readings: Tuple[DetectorReading, ...]
    unix_time: float

    @property
    def breaches(self) -> Tuple[DetectorReading, ...]:
        return tuple(r for r in self.readings if r.breached)

    def as_dict(self) -> Dict[str, object]:
        return {
            "model_id": self.model_id,
            "seq": self.seq,
            "records_seen": self.records_seen,
            "window_n": self.window_n,
            "n_labelled": self.n_labelled,
            "verdict": self.verdict.value,
            "previous_verdict": self.previous_verdict.value,
            "changed": self.changed,
            "readings": [r.as_dict() for r in self.readings],
            "unix_time": self.unix_time,
        }


class LogSink:
    """Print verdict transitions (or every evaluation) to a stream."""

    def __init__(self, stream=None, only_changes: bool = True) -> None:
        self._stream = stream
        self.only_changes = only_changes

    def __call__(self, event: DriftEvent) -> None:
        if self.only_changes and not event.changed:
            return
        stream = self._stream if self._stream is not None else sys.stderr
        breaches = "; ".join(str(r) for r in event.breaches) or "none"
        print(
            f"[drift] model {event.model_id} verdict "
            f"{event.previous_verdict.value} -> {event.verdict.value} "
            f"after {event.records_seen} records (breaches: {breaches})",
            file=stream,
        )


class JsonlAudit:
    """Append every evaluation to a JSONL audit trail."""

    def __init__(self, path) -> None:
        self.path = path

    def __call__(self, event: DriftEvent) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(event.as_dict()) + "\n")


class RetrainTrigger:
    """Invoke a callback when the verdict enters TRANSFER_FAILED.

    Fires on the *transition* (once per failure episode, not once per
    evaluation) — the callback is the hook a deployment wires to its
    retraining pipeline.

    With ``debounce=True`` the trigger also carries an in-flight
    latch: once fired it stays silent — counting the suppressed
    attempts — until :meth:`release` is called, so a sustained
    ``transfer_failed`` streak (or repeated fail/recover flapping)
    cannot start a second retrain/shadow cycle while one is already
    running.  The pipeline orchestrator releases the latch when its
    cycle finishes (promoted, rejected, or aborted).
    """

    def __init__(
        self,
        callback: Callable[[DriftEvent], None],
        debounce: bool = False,
    ) -> None:
        self.callback = callback
        self.debounce = debounce
        self.fired = 0
        self.suppressed = 0
        self._lock = threading.Lock()
        self._in_flight = False

    def __call__(self, event: DriftEvent) -> None:
        if event.changed and event.verdict is DriftVerdict.TRANSFER_FAILED:
            self.fire(event)

    def fire(self, event: DriftEvent) -> bool:
        """Attempt to fire for ``event``, honouring the latch.

        Returns True if the callback ran.  Used directly (bypassing
        the transition check) when a caller needs to re-kick a cycle
        for a verdict that is *still* TRANSFER_FAILED — e.g. after an
        aborted retrain — without waiting for a fresh transition.
        """
        with self._lock:
            if self.debounce and self._in_flight:
                self.suppressed += 1
                return False
            if self.debounce:
                self._in_flight = True
            self.fired += 1
        self.callback(event)
        return True

    def hold(self) -> None:
        """Engage the latch without firing (crash-resume bookkeeping)."""
        with self._lock:
            if self.debounce:
                self._in_flight = True

    def release(self) -> None:
        """Release the in-flight latch; the next failure may fire again."""
        with self._lock:
            self._in_flight = False

    @property
    def in_flight(self) -> bool:
        with self._lock:
            return self._in_flight


class DriftMonitor:
    """Streams one model's traffic through the Section VI battery.

    Thread-safe: the serving engine's worker feeds :meth:`observe`
    while HTTP handler threads read :meth:`report`.
    """

    def __init__(
        self,
        profile: ModelProfile,
        config: Optional[DriftMonitorConfig] = None,
        actions: Sequence[Callable[[DriftEvent], None]] = (),
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.profile = profile
        self.config = config or DriftMonitorConfig()
        self.actions = tuple(actions)
        self._clock = clock
        self._lock = threading.Lock()
        self._window = StreamWindow(
            self.config.window,
            n_leaves=len(profile.leaf_names),
            kind=self.config.window_kind,
        )
        self._leaf_index = {
            name: i for i, name in enumerate(profile.leaf_names)
        }
        self._detectors = build_detectors(
            self.config.criteria,
            training_y=profile.training_y,
            leaf_names=profile.leaf_names,
            training_shares_pct=(
                profile.training_leaf_shares_pct or None
            ),
        )
        self._verdict = DriftVerdict.INSUFFICIENT_DATA
        self._breach_streak = 0
        self._clean_streak = 0
        self._seq = 0
        self._last_event: Optional[DriftEvent] = None
        self._verdict_since_seen = 0
        # Bounded memory of verdict transitions, oldest dropped first —
        # the dashboard's "what happened to this model" timeline.
        self._transitions: Deque[Dict[str, object]] = deque(maxlen=32)
        # obs instruments (name-stable per model id).
        prefix = f"drift.{profile.model_id}"
        self._g_verdict = gauge(f"{prefix}.verdict_code")
        self._gauges = {
            "rolling_c": gauge(f"{prefix}.rolling_c"),
            "rolling_mae": gauge(f"{prefix}.rolling_mae"),
            "dependent_t": gauge(f"{prefix}.dependent_t"),
            "prediction_t": gauge(f"{prefix}.prediction_t"),
            "leaf_l1": gauge(f"{prefix}.leaf_l1_pct"),
        }
        self._c_evaluations = counter(f"{prefix}.evaluations")
        self._c_transitions = counter(f"{prefix}.verdict_changes")
        self._c_records = counter(f"{prefix}.records")

    # -- feeding ---------------------------------------------------------

    def leaf_indices(self, leaf_names) -> np.ndarray:
        """Map an array of leaf names to window indices (-1 = unknown)."""
        index = self._leaf_index
        return np.fromiter(
            (index.get(name, -1) for name in leaf_names),
            dtype=np.int64,
            count=len(leaf_names),
        )

    def observe(
        self,
        predictions,
        actuals=None,
        leaves=None,
    ) -> DriftEvent:
        """Feed one batch and evaluate the battery once.

        ``leaves`` may be leaf *names* (as
        :meth:`~repro.mtree.tree.ModelTree.assign_leaves` returns) or
        integer indices into the profile's leaf vocabulary.
        """
        predictions = np.asarray(predictions, dtype=float).ravel()
        if leaves is not None:
            leaves = np.asarray(leaves)
            if leaves.dtype.kind not in "iu":
                leaves = self.leaf_indices(leaves)
        with self._lock:
            self._window.extend(predictions, actuals, leaves)
            self._c_records.inc(int(predictions.size))
            event = self._evaluate()
        for action in self.actions:
            action(event)
        return event

    # -- the verdict state machine --------------------------------------

    def _evaluate(self) -> DriftEvent:
        # Caller holds the lock.
        snapshot = self._window.snapshot()
        readings = tuple([d.read(snapshot) for d in self._detectors])
        previous = self._verdict
        if all(
            r.status is DetectorStatus.INSUFFICIENT for r in readings
        ):
            # Nothing measurable yet: streaks and verdict are untouched.
            verdict = previous
        else:
            if any(r.status is DetectorStatus.BREACH for r in readings):
                self._breach_streak += 1
                self._clean_streak = 0
            else:
                self._clean_streak += 1
                self._breach_streak = 0
            verdict = self._next_verdict(previous)
        changed = verdict is not previous
        self._verdict = verdict
        self._seq += 1
        if changed:
            self._verdict_since_seen = self._window.total_seen
            self._transitions.append(
                {
                    "seq": self._seq,
                    "from": previous.value,
                    "to": verdict.value,
                    "records_seen": self._window.total_seen,
                    "unix_time": self._clock(),
                }
            )
        event = DriftEvent(
            model_id=self.profile.model_id,
            seq=self._seq,
            records_seen=self._window.total_seen,
            window_n=snapshot.n,
            n_labelled=snapshot.n_labelled,
            verdict=verdict,
            previous_verdict=previous,
            changed=changed,
            readings=readings,
            unix_time=self._clock(),
        )
        self._last_event = event
        self._publish_metrics(event)
        return event

    def _next_verdict(self, previous: DriftVerdict) -> DriftVerdict:
        cfg = self.config
        if self._breach_streak >= cfg.fail_after:
            return DriftVerdict.TRANSFER_FAILED
        if self._breach_streak >= 1:
            # Escalate out of healthy states immediately; an already
            # failed model stays failed until it proves recovery.
            if previous is DriftVerdict.TRANSFER_FAILED:
                return DriftVerdict.TRANSFER_FAILED
            return DriftVerdict.WARN
        if self._clean_streak >= cfg.recover_after:
            return DriftVerdict.OK
        if previous in (DriftVerdict.INSUFFICIENT_DATA, DriftVerdict.OK):
            # A healthy monitor doesn't need the full recovery streak.
            return DriftVerdict.OK
        return previous

    def _publish_metrics(self, event: DriftEvent) -> None:
        self._c_evaluations.inc()
        if event.changed:
            self._c_transitions.inc()
        self._g_verdict.set(_VERDICT_CODES[event.verdict])
        for reading in event.readings:
            instrument = self._gauges.get(reading.detector)
            if instrument is not None and math.isfinite(reading.value):
                instrument.set(float(reading.value))

    # -- reading ---------------------------------------------------------

    @property
    def verdict(self) -> DriftVerdict:
        with self._lock:
            return self._verdict

    @property
    def last_event(self) -> Optional[DriftEvent]:
        with self._lock:
            return self._last_event

    def report(self) -> Dict[str, object]:
        """JSON-ready summary for the ``/drift`` endpoint and the CLI."""
        with self._lock:
            snapshot = self._window.snapshot()
            event = self._last_event
            criteria = self.config.criteria
            return {
                "model_id": self.profile.model_id,
                "verdict": self._verdict.value,
                "verdict_since_record": self._verdict_since_seen,
                "evaluations": self._seq,
                "records_seen": snapshot.total_seen,
                "window": {
                    "capacity": self.config.window,
                    "kind": self.config.window_kind,
                    "n": snapshot.n,
                    "n_labelled": snapshot.n_labelled,
                },
                "thresholds": {
                    "min_correlation": criteria.transfer.min_correlation,
                    "max_mae": criteria.transfer.max_mae,
                    "confidence": criteria.transfer.confidence,
                    "max_leaf_l1_pct": criteria.max_leaf_l1_pct,
                    "min_labelled": criteria.min_labelled,
                },
                "hysteresis": {
                    "fail_after": self.config.fail_after,
                    "recover_after": self.config.recover_after,
                    "breach_streak": self._breach_streak,
                    "clean_streak": self._clean_streak,
                },
                "readings": (
                    [r.as_dict() for r in event.readings]
                    if event is not None
                    else []
                ),
                "transitions": [dict(t) for t in self._transitions],
            }
