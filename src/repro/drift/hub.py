"""Per-model monitor fan-out for a serving process.

The :class:`DriftHub` is what :mod:`repro.serve` actually talks to: a
registry-backed collection of :class:`~repro.drift.monitor.DriftMonitor`
instances, created lazily the first time a model's traffic shows up.
Each monitor is profiled from the model's registry record (leaf
vocabulary, training leaf shares and — when ``repro publish`` stored it
— the training CPI moments), so the battery a model gets depends only
on the provenance it was published with.

The hub also owns the optional champion/challenger
:class:`~repro.drift.shadow.ShadowEvaluator`: when a shadow pair is
configured, every batch served by the champion is re-predicted through
the challenger's tree (off the client latency path — the engine calls
:meth:`observe` after answering callers) and both prediction streams
feed the shadow windows.

The registry argument is duck-typed (``resolve``/``load`` — the
:class:`repro.serve.registry.ModelRegistry` surface) so this module
does not import :mod:`repro.serve` and the serve package can import it
without a cycle.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.drift.monitor import (
    DriftEvent,
    DriftMonitor,
    DriftMonitorConfig,
    ModelProfile,
)
from repro.drift.shadow import ShadowEvaluator

__all__ = ["DriftHub"]


class _LeafRouter:
    """Vectorized leaf classifier compiled from a fitted model tree.

    :meth:`~repro.mtree.tree.ModelTree.assign_leaves` walks the tree
    recursively and returns leaf *names*, which the monitor then maps
    back to vocabulary indices one record at a time — fine for batch
    experiments, too slow for the per-served-batch hot path.

    Compilation flattens the tree into its split predicates and one
    signed path matrix.  A leaf's decision path is a conjunction of
    split outcomes, so a row belongs to leaf ``l`` exactly when its
    predicate vector scores ``+1`` on every split the path takes left
    (``X[:, f] <= t``) and ``-1`` on every split it takes right —
    i.e. when the signed score equals the number of left turns.  The
    tree partitions the feature space, so exactly one leaf matches
    each row.  Classifying a batch is then a constant six numpy calls
    — predicate gather, compare, one (rows x splits) @ (splits x
    leaves) product, match, argmax, index take — independent of tree
    depth, and the emitted values are already monitor vocabulary
    indices (-1 for a leaf name the profile does not know).
    """

    def __init__(self, tree, leaf_names: Sequence[str]) -> None:
        index = {name: i for i, name in enumerate(leaf_names)}
        split_feature: list = []
        split_threshold: list = []
        # Per leaf: its vocabulary index and {split slot: went left}.
        leaf_index: list = []
        leaf_paths: list = []

        def walk(node, path) -> None:
            if hasattr(node, "threshold"):  # SplitNode
                slot = len(split_feature)
                split_feature.append(node.feature_index)
                split_threshold.append(node.threshold)
                walk(node.left, path + [(slot, True)])
                walk(node.right, path + [(slot, False)])
            else:
                leaf_index.append(index.get(node.name, -1))
                leaf_paths.append(path)

        walk(tree._require_fitted(), [])
        n_splits, n_leaves = len(split_feature), len(leaf_index)
        signs = np.zeros((n_splits, n_leaves))
        lefts = np.zeros(n_leaves)
        for l, path in enumerate(leaf_paths):
            for slot, went_left in path:
                signs[slot, l] = 1.0 if went_left else -1.0
                lefts[l] += 1.0 if went_left else 0.0
        self._split_feature = np.asarray(split_feature, dtype=np.int64)
        self._split_threshold = np.asarray(split_threshold, dtype=float)
        self._signs = signs
        self._lefts = lefts
        self._leaf = np.asarray(leaf_index, dtype=np.int64)

    def __call__(self, X: np.ndarray) -> np.ndarray:
        went_left = (
            X[:, self._split_feature] <= self._split_threshold
        ).astype(float)
        # score[r, l] = (left turns taken) - (wrong-way turns at right
        # splits); it reaches lefts[l] exactly when every split on l's
        # path went the required way.
        score = went_left @ self._signs
        slot = np.argmax(score == self._lefts, axis=1)
        return self._leaf[slot]


class DriftHub:
    """Lazily monitors every model a serving process predicts with."""

    def __init__(
        self,
        registry,
        config: Optional[DriftMonitorConfig] = None,
        actions: Sequence[Callable[[DriftEvent], None]] = (),
        shadow: Optional[Tuple[str, str]] = None,
    ) -> None:
        """``shadow`` is an optional (champion ref, challenger ref) pair;
        both must resolve in ``registry`` at construction time.
        """
        self.registry = registry
        self.config = config or DriftMonitorConfig()
        self.actions = tuple(actions)
        self._lock = threading.Lock()
        self._monitors: Dict[str, DriftMonitor] = {}
        # Hot-path cache: observe() runs once per served batch, and the
        # registry's resolve()/load() each touch the filesystem, so the
        # (monitor, leaf router) pair is pinned per model id after
        # first use.
        self._observe_state: Dict[str, Tuple[DriftMonitor, _LeafRouter]] = {}
        self._shadow: Optional[ShadowEvaluator] = None
        self._shadow_champion: Optional[str] = None
        self._shadow_tree = None
        if shadow is not None:
            champion_ref, challenger_ref = shadow
            champion_id = registry.resolve(champion_ref)
            challenger_id = registry.resolve(challenger_ref)
            _, self._shadow_tree = registry.load(challenger_id)
            self._shadow_champion = champion_id
            criteria = self.config.criteria
            self._shadow = ShadowEvaluator(
                champion_id,
                challenger_id,
                window=self.config.window,
                criteria=criteria.transfer,
                min_labelled=criteria.min_labelled,
            )

    # -- monitors --------------------------------------------------------

    def monitor_for(self, ref: str) -> DriftMonitor:
        """The (lazily created) monitor for a model id or alias."""
        model_id = self.registry.resolve(ref)
        with self._lock:
            monitor = self._monitors.get(model_id)
            if monitor is None:
                record, tree = self.registry.load(model_id)
                monitor = DriftMonitor(
                    ModelProfile.from_record(record, tree),
                    config=self.config,
                    actions=self.actions,
                )
                self._monitors[model_id] = monitor
            return monitor

    def observe(
        self,
        model_id: str,
        X: np.ndarray,
        predictions: np.ndarray,
        actuals=None,
    ) -> DriftEvent:
        """Feed one served batch into the model's monitor (and shadow).

        ``X`` is re-used to classify rows into leaves for the Eq. 4
        profile detector and, when this model is the shadow champion,
        to produce the challenger's predictions on identical inputs.

        The engine passes resolved model ids, so the monitor/router
        pair is cached under the id given here; aliases still share one
        monitor because creation goes through :meth:`monitor_for`.
        """
        state = self._observe_state.get(model_id)
        if state is None:
            monitor = self.monitor_for(model_id)
            _, tree = self.registry.load(model_id)
            state = (monitor, _LeafRouter(tree, monitor.profile.leaf_names))
            with self._lock:
                self._observe_state[model_id] = state
        monitor, router = state
        leaves = router(X)
        event = monitor.observe(predictions, actuals, leaves)
        shadow = self._shadow
        if shadow is not None and model_id == self._shadow_champion:
            challenger_pred = self._shadow_tree.predict(X)
            shadow.observe(predictions, challenger_pred, actuals)
        return event

    # -- reading ---------------------------------------------------------

    @property
    def shadow(self) -> Optional[ShadowEvaluator]:
        return self._shadow

    def model_ids(self) -> Tuple[str, ...]:
        """Ids of every model currently being monitored."""
        with self._lock:
            return tuple(sorted(self._monitors))

    def report(self, ref: str) -> Dict[str, object]:
        """Drift report for one model, without creating a monitor.

        A model that has served no traffic yet reports its verdict as
        ``insufficient_data`` with zero records rather than erroring.
        """
        model_id = self.registry.resolve(ref)
        with self._lock:
            monitor = self._monitors.get(model_id)
        if monitor is None:
            return {
                "model_id": model_id,
                "verdict": "insufficient_data",
                "evaluations": 0,
                "records_seen": 0,
            }
        payload = monitor.report()
        if self._shadow is not None and model_id == self._shadow_champion:
            payload["shadow"] = self._shadow.recommendation()
        return payload
