"""Per-model monitor fan-out for a serving process.

The :class:`DriftHub` is what :mod:`repro.serve` actually talks to: a
registry-backed collection of :class:`~repro.drift.monitor.DriftMonitor`
instances, created lazily the first time a model's traffic shows up.
Each monitor is profiled from the model's registry record (leaf
vocabulary, training leaf shares and — when ``repro publish`` stored it
— the training CPI moments), so the battery a model gets depends only
on the provenance it was published with.

The hub also owns the optional champion/challenger
:class:`~repro.drift.shadow.ShadowEvaluator`: when a shadow pair is
configured, every batch served by the champion is re-predicted through
the challenger's tree (off the client latency path — the engine calls
:meth:`observe` after answering callers) and both prediction streams
feed the shadow windows.

Per-batch tree work runs on the shared compiled evaluator
(:mod:`repro.mtree.compiled`): the hub builds one
:class:`~repro.mtree.compiled.CompiledForest` per served model —
champion plus, for the shadow champion, the challenger — so a single
fused comparison pass both classifies rows into monitor leaves (the
Eq. 4 profile detector) and produces the challenger's shadow
predictions.

The registry argument is duck-typed (``resolve``/``load`` — the
:class:`repro.serve.registry.ModelRegistry` surface) so this module
does not import :mod:`repro.serve` and the serve package can import it
without a cycle.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.drift.monitor import (
    DriftEvent,
    DriftMonitor,
    DriftMonitorConfig,
    ModelProfile,
)
from repro.drift.shadow import ShadowEvaluator
from repro.mtree.compiled import CompiledForest

__all__ = ["DriftHub"]


class _ObserveState:
    """Hot-path state pinned per served model after first use.

    ``forest`` is the shared compiled evaluator: member 0 is always
    the served model (used for leaf *routing*), member 1 — present
    only for the shadow champion — is the challenger (used for shadow
    *predictions*).  One fused comparison pass feeds both operations.
    ``vocab`` maps member 0's compiled leaf slots to the monitor's
    vocabulary indices (-1 for a leaf name the profile does not know),
    so classification emits monitor-ready indices without any
    per-record name lookups.
    """

    __slots__ = ("monitor", "forest", "vocab")

    def __init__(
        self, monitor: DriftMonitor, forest: CompiledForest
    ) -> None:
        self.monitor = monitor
        self.forest = forest
        index = {
            name: i for i, name in enumerate(monitor.profile.leaf_names)
        }
        self.vocab = np.asarray(
            [index.get(name, -1) for name in forest.members[0].leaf_names],
            dtype=np.int64,
        )


class DriftHub:
    """Lazily monitors every model a serving process predicts with."""

    def __init__(
        self,
        registry,
        config: Optional[DriftMonitorConfig] = None,
        actions: Sequence[Callable[[DriftEvent], None]] = (),
        shadow: Optional[Tuple[str, str]] = None,
    ) -> None:
        """``shadow`` is an optional (champion ref, challenger ref) pair;
        both must resolve in ``registry`` at construction time.
        """
        self.registry = registry
        self.config = config or DriftMonitorConfig()
        self.actions = tuple(actions)
        self._lock = threading.Lock()
        self._monitors: Dict[str, DriftMonitor] = {}
        # Taps see every observed batch's raw rows before the monitor
        # evaluates it — the pipeline's traffic buffer hangs here so
        # the batch that *trips* a verdict is part of the retrain data.
        self._taps: Tuple[
            Callable[[str, np.ndarray, np.ndarray, Optional[np.ndarray]], None],
            ...,
        ] = ()
        # Hot-path cache: observe() runs once per served batch, and the
        # registry's resolve()/load() each touch the filesystem, so the
        # (monitor, compiled forest) state is pinned per model id after
        # first use.
        self._observe_state: Dict[str, _ObserveState] = {}
        self._shadow: Optional[ShadowEvaluator] = None
        self._shadow_champion: Optional[str] = None
        self._shadow_tree = None
        if shadow is not None:
            champion_ref, challenger_ref = shadow
            champion_id = registry.resolve(champion_ref)
            challenger_id = registry.resolve(challenger_ref)
            _, self._shadow_tree = registry.load(challenger_id)
            self._shadow_champion = champion_id
            criteria = self.config.criteria
            self._shadow = ShadowEvaluator(
                champion_id,
                challenger_id,
                window=self.config.window,
                criteria=criteria.transfer,
                min_labelled=criteria.min_labelled,
            )

    # -- dynamic wiring (pipeline hooks) ---------------------------------

    def add_action(
        self, action: Callable[[DriftEvent], None]
    ) -> None:
        """Attach an action to the hub and every existing monitor.

        Monitors copy the hub's action list at creation time, so a
        late-attached consumer (the pipeline orchestrator arms itself
        after the hub exists) must be spliced into live monitors too.
        """
        with self._lock:
            self.actions = self.actions + (action,)
            for monitor in self._monitors.values():
                monitor.actions = monitor.actions + (action,)

    def add_tap(
        self,
        tap: Callable[
            [str, np.ndarray, np.ndarray, Optional[np.ndarray]], None
        ],
    ) -> None:
        """Attach a raw-batch tap: ``tap(model_id, X, predictions,
        actuals)`` runs at the top of every :meth:`observe` call,
        before the monitor evaluates the batch."""
        with self._lock:
            self._taps = self._taps + (tap,)

    def set_shadow(self, champion_ref: str, challenger_ref: str) -> None:
        """(Re-)configure the champion/challenger pair at runtime.

        Both refs must resolve; the champion's cached observe state is
        dropped so its next batch rebuilds the compiled forest with
        the challenger as member 1.
        """
        champion_id = self.registry.resolve(champion_ref)
        challenger_id = self.registry.resolve(challenger_ref)
        _, challenger_tree = self.registry.load(challenger_id)
        criteria = self.config.criteria
        evaluator = ShadowEvaluator(
            champion_id,
            challenger_id,
            window=self.config.window,
            criteria=criteria.transfer,
            min_labelled=criteria.min_labelled,
        )
        with self._lock:
            previous_champion = self._shadow_champion
            self._shadow = evaluator
            self._shadow_champion = champion_id
            self._shadow_tree = challenger_tree
            self._observe_state.pop(champion_id, None)
            if previous_champion is not None:
                self._observe_state.pop(previous_champion, None)

    def clear_shadow(self) -> None:
        """Drop the shadow pair (end of a pipeline cycle)."""
        with self._lock:
            champion_id = self._shadow_champion
            self._shadow = None
            self._shadow_champion = None
            self._shadow_tree = None
            if champion_id is not None:
                self._observe_state.pop(champion_id, None)

    # -- monitors --------------------------------------------------------

    def monitor_for(self, ref: str) -> DriftMonitor:
        """The (lazily created) monitor for a model id or alias."""
        model_id = self.registry.resolve(ref)
        with self._lock:
            monitor = self._monitors.get(model_id)
            if monitor is None:
                record, tree = self.registry.load(model_id)
                monitor = DriftMonitor(
                    ModelProfile.from_record(record, tree),
                    config=self.config,
                    actions=self.actions,
                )
                self._monitors[model_id] = monitor
            return monitor

    def observe(
        self,
        model_id: str,
        X: np.ndarray,
        predictions: np.ndarray,
        actuals=None,
    ) -> DriftEvent:
        """Feed one served batch into the model's monitor (and shadow).

        ``X`` is re-used to classify rows into leaves for the Eq. 4
        profile detector and, when this model is the shadow champion,
        to produce the challenger's predictions on identical inputs —
        both from one fused comparison pass over the model's
        :class:`~repro.mtree.compiled.CompiledForest`.

        The engine passes resolved model ids, so the monitor/forest
        state is cached under the id given here; aliases still share
        one monitor because creation goes through :meth:`monitor_for`.
        """
        # Snapshot the shadow pair up front: a pipeline promotion (run
        # from a monitor action *inside* this very call) may clear or
        # replace it mid-batch, and the challenger feed below must only
        # reach the evaluator this batch was routed for.
        with self._lock:
            shadow = self._shadow
            shadow_champion = self._shadow_champion
            shadow_tree = self._shadow_tree
            taps = self._taps
        for tap in taps:
            tap(model_id, X, predictions, actuals)
        state = self._observe_state.get(model_id)
        if state is None:
            monitor = self.monitor_for(model_id)
            _, tree = self.registry.load(model_id)
            members = [(model_id, tree)]
            if shadow is not None and model_id == shadow_champion:
                members.append((shadow.challenger_id, shadow_tree))
            state = _ObserveState(monitor, CompiledForest(members))
            with self._lock:
                self._observe_state[model_id] = state
        monitor, forest = state.monitor, state.forest
        went = forest.comparisons(X)
        slots = forest.members[0].route(
            X,
            checked=True,
            went_left=np.ascontiguousarray(went[:, forest.slices[0]]),
        )
        if len(forest) > 1 and shadow is not None:
            # Predict the challenger *before* the monitor fires its
            # actions: a promote decision made inside an action sees a
            # shadow evaluator already fed with this batch.
            challenger_pred = forest.members[1].predict(
                X,
                checked=True,
                went_left=np.ascontiguousarray(went[:, forest.slices[1]]),
            )
            shadow.observe(predictions, challenger_pred, actuals)
        event = monitor.observe(predictions, actuals, state.vocab[slots])
        return event

    # -- reading ---------------------------------------------------------

    @property
    def shadow(self) -> Optional[ShadowEvaluator]:
        return self._shadow

    def model_ids(self) -> Tuple[str, ...]:
        """Ids of every model currently being monitored."""
        with self._lock:
            return tuple(sorted(self._monitors))

    def report(self, ref: str) -> Dict[str, object]:
        """Drift report for one model, without creating a monitor.

        A model that has served no traffic yet reports its verdict as
        ``insufficient_data`` with zero records rather than erroring.
        """
        model_id = self.registry.resolve(ref)
        with self._lock:
            monitor = self._monitors.get(model_id)
        if monitor is None:
            return {
                "model_id": model_id,
                "verdict": "insufficient_data",
                "evaluations": 0,
                "records_seen": 0,
            }
        payload = monitor.report()
        if self._shadow is not None and model_id == self._shadow_champion:
            payload["shadow"] = self._shadow.recommendation()
        return payload

    def status(self) -> Dict[str, object]:
        """One JSON-ready rollup across every monitored model.

        Feeds the server's ``/v1/status`` document: per-model verdicts
        (full :meth:`report` payloads, transition history included) and
        the shadow recommendation when a champion/challenger pair is
        configured.
        """
        payload: Dict[str, object] = {
            "monitoring": True,
            "models": {
                model_id: self.report(model_id)
                for model_id in self.model_ids()
            },
        }
        if self._shadow is not None:
            payload["shadow"] = self._shadow.recommendation()
        return payload
