"""Fixed-memory streaming windows with Welford-style online moments.

The drift monitor never holds the traffic it has seen — at serving
scale that would be unbounded — only a bounded ring buffer of the most
recent (prediction, observed CPI, leaf) records plus the sufficient
statistics the Section VI battery needs: means and centered second
moments of predictions and actuals (Eqs. 8-9), their co-moment
(Eq. 12's numerator), the absolute-residual sum (Eq. 13) and per-leaf
occupancy counts (Eq. 4's live profile).

Two window shapes:

* ``sliding`` — always covers the latest ``capacity`` records; each
  insert beyond capacity evicts the oldest via the exact inverse of
  the Welford update.  To stop floating-point drift from accumulating
  over millions of evictions, the accumulators are recomputed exactly
  from the buffer once per ``capacity`` evictions (amortized O(1) per
  record).
* ``tumbling`` — fills, emits one :class:`WindowSnapshot`, resets.

Observed CPI is optional per record (serving traffic is mostly
unlabelled); pair statistics cover only the labelled subset.  Leaf
indices are optional too (``-1`` = unassigned).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.stats.transfer import SampleMoments, pearson_from_comoments

__all__ = ["WindowSnapshot", "StreamWindow"]


class _PairStats:
    """Welford accumulator for labelled (prediction, actual) pairs."""

    __slots__ = ("n", "mean_p", "m2_p", "mean_a", "m2_a", "comoment", "abs_sum")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.n = 0
        self.mean_p = 0.0
        self.m2_p = 0.0
        self.mean_a = 0.0
        self.m2_a = 0.0
        self.comoment = 0.0
        self.abs_sum = 0.0

    def add(self, p: float, a: float) -> None:
        self.n += 1
        dp = p - self.mean_p
        self.mean_p += dp / self.n
        da = a - self.mean_a
        self.mean_a += da / self.n
        self.m2_p += dp * (p - self.mean_p)
        self.m2_a += da * (a - self.mean_a)
        self.comoment += dp * (a - self.mean_a)
        self.abs_sum += abs(p - a)

    def remove(self, p: float, a: float) -> None:
        if self.n <= 1:
            self.reset()
            return
        n_new = self.n - 1
        mean_p_new = (self.n * self.mean_p - p) / n_new
        mean_a_new = (self.n * self.mean_a - a) / n_new
        # Exact inverse of add(): the same products, subtracted.
        self.m2_p -= (p - mean_p_new) * (p - self.mean_p)
        self.m2_a -= (a - mean_a_new) * (a - self.mean_a)
        self.comoment -= (p - mean_p_new) * (a - self.mean_a)
        self.abs_sum -= abs(p - a)
        self.mean_p = mean_p_new
        self.mean_a = mean_a_new
        self.n = n_new

    def merge_chunk(self, p: np.ndarray, a: np.ndarray) -> None:
        """Fold a whole labelled chunk in (Chan's pairwise merge)."""
        nb = int(p.size)
        if nb == 0:
            return
        mean_pb = float(p.mean())
        mean_ab = float(a.mean())
        m2_pb = float(((p - mean_pb) ** 2).sum())
        m2_ab = float(((a - mean_ab) ** 2).sum())
        co_b = float(((p - mean_pb) * (a - mean_ab)).sum())
        abs_b = float(np.abs(p - a).sum())
        na, n = self.n, self.n + nb
        if na == 0:
            self.n = nb
            self.mean_p, self.m2_p = mean_pb, m2_pb
            self.mean_a, self.m2_a = mean_ab, m2_ab
            self.comoment, self.abs_sum = co_b, abs_b
            return
        scale = na * nb / n
        dp = mean_pb - self.mean_p
        da = mean_ab - self.mean_a
        self.m2_p += m2_pb + dp * dp * scale
        self.m2_a += m2_ab + da * da * scale
        self.comoment += co_b + dp * da * scale
        self.abs_sum += abs_b
        self.mean_p += dp * nb / n
        self.mean_a += da * nb / n
        self.n = n

    def unmerge_chunk(self, p: np.ndarray, a: np.ndarray) -> None:
        """Exact inverse of :meth:`merge_chunk` for an evicted chunk."""
        ne = int(p.size)
        if ne == 0:
            return
        if ne >= self.n:
            self.reset()
            return
        mean_pe = float(p.mean())
        mean_ae = float(a.mean())
        m2_pe = float(((p - mean_pe) ** 2).sum())
        m2_ae = float(((a - mean_ae) ** 2).sum())
        co_e = float(((p - mean_pe) * (a - mean_ae)).sum())
        n, na = self.n, self.n - ne
        mean_pa = (n * self.mean_p - ne * mean_pe) / na
        mean_aa = (n * self.mean_a - ne * mean_ae) / na
        scale = na * ne / n
        dp = mean_pe - mean_pa
        da = mean_ae - mean_aa
        self.m2_p -= m2_pe + dp * dp * scale
        self.m2_a -= m2_ae + da * da * scale
        self.comoment -= co_e + dp * da * scale
        self.abs_sum -= float(np.abs(p - a).sum())
        self.mean_p, self.mean_a = mean_pa, mean_aa
        self.n = na

    def recompute(self, p: np.ndarray, a: np.ndarray) -> None:
        """Exact refresh from the surviving records (drift control).

        Raw ``np.add.reduce`` keeps this cheap enough to run per batch
        (the bulk-insert path refreshes instead of merging).
        """
        n = self.n = int(p.size)
        if n == 0:
            self.reset()
            return
        add = np.add.reduce
        self.mean_p = mean_p = float(add(p)) / n
        self.mean_a = mean_a = float(add(a)) / n
        dp = p - mean_p
        da = a - mean_a
        self.m2_p = float(add(dp * dp))
        self.m2_a = float(add(da * da))
        self.comoment = float(add(dp * da))
        self.abs_sum = float(add(np.abs(p - a)))

    def moments_p(self) -> SampleMoments:
        return _moments(self.n, self.mean_p, self.m2_p)

    def moments_a(self) -> SampleMoments:
        return _moments(self.n, self.mean_a, self.m2_a)


def _moments(n: int, mean: float, m2: float) -> SampleMoments:
    # Eviction round-off can leave m2 a hair below zero; clamp.
    var = m2 / (n - 1) if n >= 2 else 0.0
    return SampleMoments(n, mean if n else 0.0, max(0.0, var))


@dataclass(frozen=True)
class WindowSnapshot:
    """Sufficient statistics of one window, ready for the detectors.

    ``pred`` covers every record; ``pred_labelled``/``actual``/
    ``correlation``/``mae`` cover only records that arrived with an
    observed CPI.  ``leaf_counts`` is indexed by the leaf vocabulary
    the window was created with.
    """

    n: int
    n_labelled: int
    total_seen: int
    pred: SampleMoments
    pred_labelled: SampleMoments
    actual: SampleMoments
    correlation: float
    mae: float
    leaf_counts: np.ndarray

    @property
    def leaf_total(self) -> int:
        """Records in the window that carried a leaf assignment."""
        return int(self.leaf_counts.sum()) if self.leaf_counts.size else 0


class StreamWindow:
    """Bounded window over (prediction, actual?, leaf?) records.

    Memory is fixed at construction: three ``capacity``-sized arrays
    plus O(1) accumulators and an O(n_leaves) count vector, regardless
    of how many records stream through.
    """

    def __init__(
        self,
        capacity: int,
        n_leaves: int = 0,
        kind: str = "sliding",
    ) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        if kind not in ("sliding", "tumbling"):
            raise ValueError(
                f"kind must be 'sliding' or 'tumbling', got {kind!r}"
            )
        if n_leaves < 0:
            raise ValueError(f"n_leaves must be >= 0, got {n_leaves}")
        self.capacity = capacity
        self.kind = kind
        self.n_leaves = n_leaves
        self._pred = np.zeros(capacity)
        self._actual = np.full(capacity, np.nan)
        self._leaf = np.full(capacity, -1, dtype=np.int64)
        self._start = 0  # ring-buffer head (oldest record)
        self._count = 0
        self._seen = 0
        self._pairs = _PairStats()
        # Moments over *all* predictions (labelled or not).
        self._pn = 0
        self._pmean = 0.0
        self._pm2 = 0.0
        self._leaf_counts = np.zeros(n_leaves, dtype=np.int64)
        self._evictions = 0

    # -- introspection ---------------------------------------------------

    @property
    def n(self) -> int:
        return self._count

    @property
    def n_labelled(self) -> int:
        return self._pairs.n

    @property
    def total_seen(self) -> int:
        return self._seen

    @property
    def full(self) -> bool:
        return self._count == self.capacity

    # -- streaming -------------------------------------------------------

    def push(
        self,
        prediction: float,
        actual: float = float("nan"),
        leaf: int = -1,
    ) -> Optional[WindowSnapshot]:
        """Insert one record; a tumbling window returns the snapshot it
        emits when this record fills it (then resets), otherwise None.
        """
        prediction = float(prediction)
        actual = float(actual)
        leaf = int(leaf)
        if not np.isfinite(prediction):
            raise ValueError(f"prediction must be finite, got {prediction}")
        if leaf >= self.n_leaves:
            raise ValueError(
                f"leaf index {leaf} out of range for {self.n_leaves} leaves"
            )
        if self.kind == "sliding" and self._count == self.capacity:
            self._evict_oldest()
        slot = (self._start + self._count) % self.capacity
        self._pred[slot] = prediction
        self._actual[slot] = actual
        self._leaf[slot] = leaf
        self._count += 1
        self._seen += 1
        self._pn += 1
        dp = prediction - self._pmean
        self._pmean += dp / self._pn
        self._pm2 += dp * (prediction - self._pmean)
        if np.isfinite(actual):
            self._pairs.add(prediction, actual)
        if leaf >= 0:
            self._leaf_counts[leaf] += 1
        if self.kind == "tumbling" and self._count == self.capacity:
            snapshot = self.snapshot()
            self._reset_window()
            return snapshot
        return None

    def extend(
        self,
        predictions: Sequence[float],
        actuals: Optional[Sequence[float]] = None,
        leaves: Optional[Sequence[int]] = None,
    ) -> List[WindowSnapshot]:
        """Push a batch; returns the snapshots a tumbling window emitted."""
        predictions = np.asarray(predictions, dtype=float)
        if actuals is None:
            actuals = np.full(predictions.shape, np.nan)
        else:
            actuals = np.asarray(actuals, dtype=float)
        if leaves is None:
            leaves = np.full(predictions.shape, -1, dtype=np.int64)
        else:
            leaves = np.asarray(leaves, dtype=np.int64)
        if not (predictions.shape == actuals.shape == leaves.shape):
            raise ValueError(
                f"predictions/actuals/leaves must align, got shapes "
                f"{predictions.shape}, {actuals.shape}, {leaves.shape}"
            )
        # Tumbling windows emit mid-batch, and tiny batches don't pay
        # for the chunked arithmetic: both take the per-record path.
        if self.kind == "tumbling" or predictions.size < 8:
            emitted = []
            for p, a, leaf in zip(predictions, actuals, leaves):
                snapshot = self.push(p, a, leaf)
                if snapshot is not None:
                    emitted.append(snapshot)
            return emitted
        self._extend_sliding(predictions, actuals, leaves)
        return []

    # -- internals -------------------------------------------------------

    def _extend_sliding(
        self,
        predictions: np.ndarray,
        actuals: np.ndarray,
        leaves: np.ndarray,
    ) -> None:
        """Batch insert: O(numpy ops per chunk), not per record.

        The accumulators are updated by merging the incoming chunk's
        exact moments (and unmerging the evicted chunk's) via Chan's
        parallel formulas — same results as the per-record Welford
        path to well under the 1e-10 parity bound, at a fraction of
        the cost.  The periodic exact refresh applies unchanged.
        """
        bad = ~np.isfinite(predictions)
        if bad.any():
            raise ValueError(
                f"prediction must be finite, got {predictions[bad][0]}"
            )
        out_of_range = leaves >= self.n_leaves
        if out_of_range.any():
            first = int(leaves[out_of_range][0])
            raise ValueError(
                f"leaf index {first} out of range for {self.n_leaves} leaves"
            )
        m = int(predictions.size)
        cap = self.capacity
        if m >= cap:
            # Only the trailing `cap` records survive; rebuild exactly.
            self._pred[:] = predictions[m - cap:]
            self._actual[:] = actuals[m - cap:]
            self._leaf[:] = leaves[m - cap:]
            self._start = 0
            self._count = cap
            self._seen += m
            self._refresh()
            return
        if 8 * m >= cap:
            # The chunk is a sizable slice of the window, so one exact
            # O(capacity) rebuild is cheaper than the merge/unmerge
            # algebra — and drift-free, no periodic refresh needed.
            n_evict = max(0, self._count + m - cap)
            if n_evict > 0:
                self._start = (self._start + n_evict) % cap
                self._count -= n_evict
            pos = (self._start + self._count) % cap
            head = min(m, cap - pos)
            for ring, chunk in (
                (self._pred, predictions),
                (self._actual, actuals),
                (self._leaf, leaves),
            ):
                ring[pos:pos + head] = chunk[:head]
                if head < m:
                    ring[: m - head] = chunk[head:]
            self._count += m
            self._seen += m
            self._refresh()
            return
        n_evict = self._count + m - cap
        if n_evict > 0:
            index = (self._start + np.arange(n_evict)) % cap
            self._unmerge_chunk(
                self._pred[index], self._actual[index], self._leaf[index]
            )
            self._start = (self._start + n_evict) % cap
            self._count -= n_evict
            self._evictions += n_evict
        slots = (self._start + self._count + np.arange(m)) % cap
        self._pred[slots] = predictions
        self._actual[slots] = actuals
        self._leaf[slots] = leaves
        self._count += m
        self._seen += m
        self._merge_chunk(predictions, actuals, leaves)
        if self._evictions >= cap:
            self._refresh()

    def _merge_chunk(
        self, p: np.ndarray, a: np.ndarray, leaf: np.ndarray
    ) -> None:
        nb = int(p.size)
        mean_b = float(p.mean())
        m2_b = float(((p - mean_b) ** 2).sum())
        if self._pn == 0:
            self._pn, self._pmean, self._pm2 = nb, mean_b, m2_b
        else:
            n = self._pn + nb
            delta = mean_b - self._pmean
            self._pm2 += m2_b + delta * delta * self._pn * nb / n
            self._pmean += delta * nb / n
            self._pn = n
        labelled = np.isfinite(a)
        if labelled.any():
            self._pairs.merge_chunk(p[labelled], a[labelled])
        if self.n_leaves:
            self._leaf_counts += np.bincount(
                leaf[leaf >= 0], minlength=self.n_leaves
            )

    def _unmerge_chunk(
        self, p: np.ndarray, a: np.ndarray, leaf: np.ndarray
    ) -> None:
        ne = int(p.size)
        if ne >= self._pn:
            self._pn, self._pmean, self._pm2 = 0, 0.0, 0.0
        else:
            mean_e = float(p.mean())
            m2_e = float(((p - mean_e) ** 2).sum())
            n, na = self._pn, self._pn - ne
            mean_a = (n * self._pmean - ne * mean_e) / na
            delta = mean_e - mean_a
            self._pm2 -= m2_e + delta * delta * na * ne / n
            self._pmean = mean_a
            self._pn = na
        labelled = np.isfinite(a)
        if labelled.any():
            self._pairs.unmerge_chunk(p[labelled], a[labelled])
        if self.n_leaves:
            self._leaf_counts -= np.bincount(
                leaf[leaf >= 0], minlength=self.n_leaves
            )

    def _evict_oldest(self) -> None:
        slot = self._start
        prediction = float(self._pred[slot])
        actual = float(self._actual[slot])
        leaf = int(self._leaf[slot])
        self._start = (self._start + 1) % self.capacity
        self._count -= 1
        if self._pn <= 1:
            self._pn, self._pmean, self._pm2 = 0, 0.0, 0.0
        else:
            n_new = self._pn - 1
            mean_new = (self._pn * self._pmean - prediction) / n_new
            self._pm2 -= (prediction - mean_new) * (prediction - self._pmean)
            self._pmean = mean_new
            self._pn = n_new
        if np.isfinite(actual):
            self._pairs.remove(prediction, actual)
        if leaf >= 0:
            self._leaf_counts[leaf] -= 1
        self._evictions += 1
        if self._evictions >= self.capacity:
            self._refresh()

    def _window_arrays(self):
        # The accumulators are permutation-invariant, so a full ring
        # (or one that has never wrapped) needs no modular gather.
        if self._count == self.capacity:
            return self._pred, self._actual, self._leaf
        if self._start == 0:
            count = self._count
            return (
                self._pred[:count],
                self._actual[:count],
                self._leaf[:count],
            )
        index = (self._start + np.arange(self._count)) % self.capacity
        return self._pred[index], self._actual[index], self._leaf[index]

    def _refresh(self) -> None:
        """Recompute every accumulator exactly from the live records."""
        self._evictions = 0
        pred, actual, leaf = self._window_arrays()
        n = int(pred.size)
        labelled = np.isfinite(actual)
        n_labelled = int(np.count_nonzero(labelled))
        self._pn = n
        if n_labelled == n:
            # Fully labelled window: the pair stats already cover every
            # prediction, so the all-predictions moments are theirs.
            self._pairs.recompute(pred, actual)
            self._pmean = self._pairs.mean_p
            self._pm2 = self._pairs.m2_p
        else:
            if n:
                self._pmean = float(np.add.reduce(pred)) / n
                dp = pred - self._pmean
                self._pm2 = float(np.add.reduce(dp * dp))
            else:
                self._pmean, self._pm2 = 0.0, 0.0
            if n_labelled:
                self._pairs.recompute(pred[labelled], actual[labelled])
            else:
                self._pairs.reset()
        if self.n_leaves:
            self._leaf_counts = np.bincount(
                leaf[leaf >= 0], minlength=self.n_leaves
            ).astype(np.int64)

    def _reset_window(self) -> None:
        self._start = 0
        self._count = 0
        self._pn, self._pmean, self._pm2 = 0, 0.0, 0.0
        self._pairs.reset()
        self._leaf_counts = np.zeros(self.n_leaves, dtype=np.int64)
        self._evictions = 0

    # -- reading ---------------------------------------------------------

    def snapshot(self) -> WindowSnapshot:
        """Current sufficient statistics (cheap: no buffer traversal)."""
        pairs = self._pairs
        return WindowSnapshot(
            n=self._count,
            n_labelled=pairs.n,
            total_seen=self._seen,
            pred=_moments(self._pn, self._pmean, self._pm2),
            pred_labelled=pairs.moments_p(),
            actual=pairs.moments_a(),
            correlation=pearson_from_comoments(
                max(0.0, pairs.m2_p), max(0.0, pairs.m2_a), pairs.comoment
            ),
            mae=max(0.0, pairs.abs_sum) / pairs.n if pairs.n else float("nan"),
            leaf_counts=self._leaf_counts.copy(),
        )

    def __repr__(self) -> str:
        return (
            f"StreamWindow(kind={self.kind!r}, n={self._count}/"
            f"{self.capacity}, labelled={self._pairs.n}, "
            f"seen={self._seen})"
        )
