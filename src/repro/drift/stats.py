"""Incremental transferability detectors over window snapshots.

Each detector is one criterion of the paper's Section V-VI battery,
re-expressed so it can be evaluated from a
:class:`~repro.drift.window.WindowSnapshot` (sufficient statistics
only, no samples):

* :class:`DependentTTest` — Eqs. 8-11 on the dependent variable:
  the window's observed CPI against the model's *training* CPI
  moments.  This is the paper's "do L1 and L2 even come from the same
  population" test, run continuously.
* :class:`PredictionTTest` — the same statistic on predicted-vs-actual
  over the window (Section VI.A's second test).
* :class:`RollingCorrelation` / :class:`RollingMae` — Eqs. 12-13
  against the C > 0.85 / MAE < 0.15 acceptance thresholds, computed
  from the window's co-moments.
* :class:`LeafProfileDrift` — Eq. 4's L1 distance between the live
  window's leaf-occupancy profile and the model's training profile:
  the serving-time version of Table III's similarity analysis.

Detectors return typed :class:`DetectorReading`\\ s with a three-way
status: OK, BREACH, or INSUFFICIENT.  Insufficient windows (n < 2,
zero variance, too little labelled traffic) are a first-class outcome
— never a NaN comparison or a numpy warning (the shared
:func:`repro.stats.transfer.t_statistic_from_moments` guarantees it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.drift.window import WindowSnapshot
from repro.stats.transfer import (
    SampleMoments,
    TransferCriteria,
    t_statistic_from_moments,
)

__all__ = [
    "DetectorStatus",
    "DetectorReading",
    "DriftCriteria",
    "DependentTTest",
    "PredictionTTest",
    "RollingCorrelation",
    "RollingMae",
    "LeafProfileDrift",
    "build_detectors",
]


class DetectorStatus(enum.Enum):
    OK = "ok"
    BREACH = "breach"
    INSUFFICIENT = "insufficient"


@dataclass(frozen=True)
class DetectorReading:
    """One detector's verdict on one window snapshot."""

    detector: str
    status: DetectorStatus
    value: float
    threshold: float
    detail: str = ""

    @property
    def breached(self) -> bool:
        return self.status is DetectorStatus.BREACH

    def as_dict(self) -> Dict[str, object]:
        return {
            "detector": self.detector,
            "status": self.status.value,
            "value": self.value,
            "threshold": self.threshold,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        if self.status is DetectorStatus.INSUFFICIENT:
            return f"{self.detector}: insufficient ({self.detail})"
        return (
            f"{self.detector}: {self.value:.4g} "
            f"(threshold {self.threshold:.4g}) -> {self.status.value}"
        )


@dataclass(frozen=True)
class DriftCriteria:
    """Everything the detector battery compares against.

    ``transfer`` carries the paper's Section VI thresholds; the leaf
    L1 limit extends Eq. 4 into an alarm (0 = identical regime mix,
    100 = disjoint).  ``min_labelled`` gates the labelled-traffic
    statistics so a handful of observed CPIs cannot flip a verdict.
    """

    transfer: TransferCriteria = field(default_factory=TransferCriteria)
    max_leaf_l1_pct: float = 25.0
    min_labelled: int = 48
    min_leaf_records: int = 48

    def __post_init__(self) -> None:
        if not 0.0 < self.max_leaf_l1_pct <= 100.0:
            raise ValueError(
                f"max_leaf_l1_pct must be in (0, 100], got "
                f"{self.max_leaf_l1_pct}"
            )
        if self.min_labelled < 2:
            raise ValueError(
                f"min_labelled must be >= 2, got {self.min_labelled}"
            )
        if self.min_leaf_records < 1:
            raise ValueError(
                f"min_leaf_records must be >= 1, got {self.min_leaf_records}"
            )


def _insufficient(name: str, threshold: float, detail: str) -> DetectorReading:
    return DetectorReading(
        detector=name,
        status=DetectorStatus.INSUFFICIENT,
        value=float("nan"),
        threshold=threshold,
        detail=detail,
    )


class DependentTTest:
    """Window observed CPI vs. training CPI (Eqs. 8-11, H0: same mean)."""

    name = "dependent_t"

    def __init__(
        self,
        training_y: SampleMoments,
        confidence: float = 0.95,
        min_labelled: int = 48,
    ) -> None:
        if training_y.n < 2:
            raise ValueError(
                "training reference needs >= 2 observations, got "
                f"{training_y.n}"
            )
        self.training_y = training_y
        self.confidence = confidence
        self.min_labelled = min_labelled

    def read(self, snapshot: WindowSnapshot) -> DetectorReading:
        if snapshot.n_labelled < self.min_labelled:
            return _insufficient(
                self.name,
                float("nan"),
                f"{snapshot.n_labelled} labelled < {self.min_labelled}",
            )
        result = t_statistic_from_moments(
            snapshot.actual, self.training_y, self.confidence
        )
        if not result.sufficient:
            return _insufficient(self.name, float("nan"), result.reason)
        return DetectorReading(
            detector=self.name,
            status=(
                DetectorStatus.BREACH if result.reject else DetectorStatus.OK
            ),
            value=result.statistic,
            threshold=result.critical_value,
            detail=f"|t| vs critical at {self.confidence * 100:.0f}%",
        )


class PredictionTTest:
    """Window predicted vs. window observed CPI (Section VI.A, test 2)."""

    name = "prediction_t"

    def __init__(
        self, confidence: float = 0.95, min_labelled: int = 48
    ) -> None:
        self.confidence = confidence
        self.min_labelled = min_labelled

    def read(self, snapshot: WindowSnapshot) -> DetectorReading:
        if snapshot.n_labelled < self.min_labelled:
            return _insufficient(
                self.name,
                float("nan"),
                f"{snapshot.n_labelled} labelled < {self.min_labelled}",
            )
        result = t_statistic_from_moments(
            snapshot.pred_labelled, snapshot.actual, self.confidence
        )
        if not result.sufficient:
            return _insufficient(self.name, float("nan"), result.reason)
        return DetectorReading(
            detector=self.name,
            status=(
                DetectorStatus.BREACH if result.reject else DetectorStatus.OK
            ),
            value=result.statistic,
            threshold=result.critical_value,
            detail=f"|t| vs critical at {self.confidence * 100:.0f}%",
        )


class RollingCorrelation:
    """Eq. 12's C over the window, against the C > 0.85 acceptance."""

    name = "rolling_c"

    def __init__(
        self, min_correlation: float = 0.85, min_labelled: int = 48
    ) -> None:
        self.min_correlation = min_correlation
        self.min_labelled = min_labelled

    def read(self, snapshot: WindowSnapshot) -> DetectorReading:
        if snapshot.n_labelled < self.min_labelled:
            return _insufficient(
                self.name,
                self.min_correlation,
                f"{snapshot.n_labelled} labelled < {self.min_labelled}",
            )
        ok = snapshot.correlation > self.min_correlation
        return DetectorReading(
            detector=self.name,
            status=DetectorStatus.OK if ok else DetectorStatus.BREACH,
            value=snapshot.correlation,
            threshold=self.min_correlation,
            detail="C must exceed threshold",
        )


class RollingMae:
    """Eq. 13's MAE over the window, against the MAE < 0.15 acceptance."""

    name = "rolling_mae"

    def __init__(self, max_mae: float = 0.15, min_labelled: int = 48) -> None:
        self.max_mae = max_mae
        self.min_labelled = min_labelled

    def read(self, snapshot: WindowSnapshot) -> DetectorReading:
        if snapshot.n_labelled < self.min_labelled:
            return _insufficient(
                self.name,
                self.max_mae,
                f"{snapshot.n_labelled} labelled < {self.min_labelled}",
            )
        ok = snapshot.mae < self.max_mae
        return DetectorReading(
            detector=self.name,
            status=DetectorStatus.OK if ok else DetectorStatus.BREACH,
            value=snapshot.mae,
            threshold=self.max_mae,
            detail="MAE must stay below threshold",
        )


class LeafProfileDrift:
    """Eq. 4 L1 distance: live leaf profile vs. the training profile.

    Unlike the labelled-traffic detectors this needs no observed CPI at
    all — every prediction lands in some leaf — so it is the earliest
    warning the monitor has on purely unlabelled traffic.
    """

    name = "leaf_l1"

    def __init__(
        self,
        leaf_names: Sequence[str],
        training_shares_pct: Mapping[str, float],
        max_l1_pct: float = 25.0,
        min_records: int = 48,
    ) -> None:
        if not leaf_names:
            raise ValueError("need at least one leaf name")
        self.leaf_names = tuple(leaf_names)
        self.training_shares_pct = dict(training_shares_pct)
        self.max_l1_pct = max_l1_pct
        self.min_records = min_records
        # Eq. 4 runs on every evaluation, so the training side is
        # pre-aligned to the vocabulary; training mass under names the
        # window can never count contributes a constant.
        self._training_vec = np.array(
            [self.training_shares_pct.get(n, 0.0) for n in self.leaf_names]
        )
        self._foreign_mass = sum(
            abs(share)
            for name, share in self.training_shares_pct.items()
            if name not in set(self.leaf_names)
        )

    def read(self, snapshot: WindowSnapshot) -> DetectorReading:
        total = snapshot.leaf_total
        if total < self.min_records:
            return _insufficient(
                self.name,
                self.max_l1_pct,
                f"{total} classified records < {self.min_records}",
            )
        live = snapshot.leaf_counts * (100.0 / total)
        distance = 0.5 * (
            float(np.abs(live - self._training_vec).sum())
            + self._foreign_mass
        )
        ok = distance < self.max_l1_pct
        return DetectorReading(
            detector=self.name,
            status=DetectorStatus.OK if ok else DetectorStatus.BREACH,
            value=distance,
            threshold=self.max_l1_pct,
            detail="Eq. 4 distance vs training leaf profile",
        )


def build_detectors(
    criteria: DriftCriteria,
    training_y: Optional[SampleMoments] = None,
    leaf_names: Sequence[str] = (),
    training_shares_pct: Optional[Mapping[str, float]] = None,
) -> Tuple[object, ...]:
    """The standard battery for one model, skipping what it can't know.

    ``training_y`` (the training set's CPI moments) enables the
    dependent-variable t-test; leaf vocabulary + training shares enable
    the Eq. 4 profile detector.  Models published without that
    provenance still get the prediction-side battery.
    """
    transfer = criteria.transfer
    detectors: list = []
    if training_y is not None and training_y.n >= 2:
        detectors.append(
            DependentTTest(
                training_y,
                confidence=transfer.confidence,
                min_labelled=criteria.min_labelled,
            )
        )
    detectors.append(
        PredictionTTest(
            confidence=transfer.confidence,
            min_labelled=criteria.min_labelled,
        )
    )
    detectors.append(
        RollingCorrelation(
            min_correlation=transfer.min_correlation,
            min_labelled=criteria.min_labelled,
        )
    )
    detectors.append(
        RollingMae(
            max_mae=transfer.max_mae, min_labelled=criteria.min_labelled
        )
    )
    if leaf_names and training_shares_pct is not None:
        detectors.append(
            LeafProfileDrift(
                leaf_names,
                training_shares_pct,
                max_l1_pct=criteria.max_leaf_l1_pct,
                min_records=criteria.min_leaf_records,
            )
        )
    return tuple(detectors)
