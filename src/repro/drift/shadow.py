"""Champion/challenger shadow evaluation.

``repro serve --shadow <model>`` routes every served batch through a
second ("challenger") model from the registry while the deployed
("champion") model keeps answering clients.  Three rolling windows
accumulate the evidence a promotion decision needs:

* champion predictions vs. observed CPI (rolling C / MAE, Eqs. 12-13),
* challenger predictions vs. observed CPI (same battery), and
* challenger vs. champion predictions — agreement on *unlabelled*
  traffic, which keeps flowing even when no observed CPI arrives.

:meth:`ShadowEvaluator.recommendation` turns that into
``promote_challenger`` / ``keep_champion`` / ``insufficient_data``:
a challenger is promotable on evidence when it meets the paper's
acceptance thresholds while the champion does not, or when both pass
and the challenger's MAE is at least ``min_improvement`` (relative)
better.  Promotion itself stays a human/registry action (re-point the
alias); this module only accumulates and judges the evidence.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

import numpy as np

from repro.drift.window import StreamWindow
from repro.stats.transfer import TransferCriteria, meets_accuracy_thresholds

__all__ = ["ShadowEvaluator"]


class ShadowEvaluator:
    """Rolling champion/challenger comparison over served traffic."""

    def __init__(
        self,
        champion_id: str,
        challenger_id: str,
        window: int = 256,
        criteria: Optional[TransferCriteria] = None,
        min_labelled: int = 48,
        min_improvement: float = 0.05,
    ) -> None:
        if min_labelled < 2:
            raise ValueError(f"min_labelled must be >= 2, got {min_labelled}")
        if not 0.0 <= min_improvement < 1.0:
            raise ValueError(
                f"min_improvement must be in [0, 1), got {min_improvement}"
            )
        self.champion_id = champion_id
        self.challenger_id = challenger_id
        self.criteria = criteria or TransferCriteria()
        self.min_labelled = min_labelled
        self.min_improvement = min_improvement
        self._lock = threading.Lock()
        self._champion = StreamWindow(window)
        self._challenger = StreamWindow(window)
        self._agreement = StreamWindow(window)

    def observe(
        self,
        champion_pred,
        challenger_pred,
        actuals=None,
    ) -> None:
        """Feed one batch of paired predictions (plus optional CPI)."""
        champion_pred = np.asarray(champion_pred, dtype=float).ravel()
        challenger_pred = np.asarray(challenger_pred, dtype=float).ravel()
        if champion_pred.shape != challenger_pred.shape:
            raise ValueError(
                f"champion/challenger predictions must align, got "
                f"{champion_pred.shape} vs {challenger_pred.shape}"
            )
        with self._lock:
            self._champion.extend(champion_pred, actuals)
            self._challenger.extend(challenger_pred, actuals)
            # Agreement treats the champion as ground truth, so it works
            # on fully unlabelled traffic.
            self._agreement.extend(challenger_pred, champion_pred)

    # -- judgement -------------------------------------------------------

    def _side(self, window: StreamWindow) -> Dict[str, object]:
        snapshot = window.snapshot()
        sufficient = snapshot.n_labelled >= self.min_labelled
        return {
            "n": snapshot.n,
            "n_labelled": snapshot.n_labelled,
            "rolling_c": snapshot.correlation if sufficient else None,
            "rolling_mae": snapshot.mae if sufficient else None,
            "meets_thresholds": (
                meets_accuracy_thresholds(
                    snapshot.correlation, snapshot.mae, self.criteria
                )
                if sufficient
                else None
            ),
        }

    def recommendation(self) -> Dict[str, object]:
        """The current promotion judgement, JSON-ready."""
        with self._lock:
            champion = self._side(self._champion)
            challenger = self._side(self._challenger)
            agreement = self._agreement.snapshot()
        report: Dict[str, object] = {
            "champion": {"model_id": self.champion_id, **champion},
            "challenger": {"model_id": self.challenger_id, **challenger},
            "agreement": {
                "n": agreement.n_labelled,
                "correlation": agreement.correlation,
                "mean_abs_diff": agreement.mae,
            },
            "thresholds": {
                "min_correlation": self.criteria.min_correlation,
                "max_mae": self.criteria.max_mae,
                "min_labelled": self.min_labelled,
                "min_improvement": self.min_improvement,
            },
        }
        if champion["meets_thresholds"] is None or (
            challenger["meets_thresholds"] is None
        ):
            report["recommendation"] = "insufficient_data"
            report["reason"] = (
                f"need >= {self.min_labelled} labelled records per side "
                f"(champion {champion['n_labelled']}, "
                f"challenger {challenger['n_labelled']})"
            )
            return report
        champ_mae = champion["rolling_mae"]
        chal_mae = challenger["rolling_mae"]
        if challenger["meets_thresholds"] and not champion["meets_thresholds"]:
            report["recommendation"] = "promote_challenger"
            report["reason"] = (
                "challenger meets the acceptance thresholds while the "
                "champion does not"
            )
        elif (
            challenger["meets_thresholds"]
            and chal_mae <= champ_mae * (1.0 - self.min_improvement)
        ):
            report["recommendation"] = "promote_challenger"
            report["reason"] = (
                f"both transfer; challenger MAE {chal_mae:.4f} improves on "
                f"champion {champ_mae:.4f} by >= "
                f"{self.min_improvement * 100:.0f}%"
            )
        else:
            report["recommendation"] = "keep_champion"
            report["reason"] = (
                "challenger shows no qualifying improvement over the "
                "champion"
            )
        return report
