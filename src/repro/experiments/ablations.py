"""E9 / E10 — ablations behind the paper's design choices.

E9 compares the model-tree family against the baselines of related
work [15] (linear regression, CART, kNN, MLP) on the CPU2006 data.

E10 ablates the M5' machinery itself — pruning, smoothing, attribute
elimination — plus the two measurement-pipeline choices: multiplexed
vs. dedicated counters and the 10% training fraction.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.cart import CartRegressionTree
from repro.baselines.knn import KnnRegressor
from repro.baselines.linreg import LinearRegressionBaseline
from repro.baselines.mlp import MlpRegressor
from repro.datasets.splits import train_test_split
from repro.experiments.context import ExperimentContext
from repro.experiments.result import ExperimentResult
from repro.mtree.tree import ModelTree, ModelTreeConfig
from repro.pmu.collector import CollectorConfig
from repro.transfer.metrics import prediction_metrics
from repro.uarch.core2 import build_core2_cost_model
from repro.uarch.execution import ExecutionEngine
from repro.workloads.suite import SuiteGenerationConfig

__all__ = ["run_model_comparison", "run_tree_ablation"]


def run_model_comparison(ctx: ExperimentContext) -> ExperimentResult:
    """E9 — model families on the CPU2006 data (cf. [15])."""
    train = ctx.train_set(ctx.CPU)
    test = ctx.test_set(ctx.CPU)
    models = {
        "M5' model tree": ctx.tree(ctx.CPU),
        "linear regression": LinearRegressionBaseline().fit(train.X, train.y),
        "CART (constant leaves)": CartRegressionTree(min_leaf=20).fit(
            train.X, train.y
        ),
        "kNN (k=10, weighted)": KnnRegressor(k=10).fit(train.X, train.y),
        "MLP (32 hidden)": MlpRegressor(seed=ctx.config.seed).fit(
            train.X, train.y
        ),
    }
    rows = {}
    lines = [
        f"{'model':24s}{'C':>9s}{'MAE':>9s}{'RMSE':>9s}{'RAE%':>9s}",
        "-" * 60,
    ]
    for name, model in models.items():
        metrics = prediction_metrics(model.predict(test.X), test.y)
        rows[name] = metrics
        lines.append(
            f"{name:24s}{metrics.correlation:9.4f}{metrics.mae:9.4f}"
            f"{metrics.rmse:9.4f}{metrics.rae * 100:9.1f}"
        )
    tree_mae = rows["M5' model tree"].mae
    linreg_mae = rows["linear regression"].mae
    lines.append("")
    lines.append(
        f"model tree vs single linear model: {linreg_mae / tree_mae:.2f}x "
        f"lower MAE (the regime structure a single hyperplane cannot fit)"
    )
    return ExperimentResult(
        experiment_id="E9",
        title="Ablation: model families on SPEC CPU2006 (cf. [15])",
        text="\n".join(lines),
        data={name: m for name, m in rows.items()},
    )


def _fit_eval(train, test, config: ModelTreeConfig):
    tree = ModelTree(config).fit_sample_set(train)
    return tree, prediction_metrics(tree.predict(test.X), test.y)


def run_tree_ablation(ctx: ExperimentContext) -> ExperimentResult:
    """E10 — M5' design choices and measurement-pipeline ablations."""
    base_cfg = ctx.config.tree
    train = ctx.train_set(ctx.CPU)
    test = ctx.test_set(ctx.CPU)

    variants = {
        "full M5' (prune+smooth+eliminate)": base_cfg,
        "no pruning": ModelTreeConfig(
            min_leaf=base_cfg.min_leaf, prune=False, smooth=base_cfg.smooth
        ),
        "no smoothing": ModelTreeConfig(
            min_leaf=base_cfg.min_leaf, smooth=False
        ),
        "no attribute elimination": ModelTreeConfig(
            min_leaf=base_cfg.min_leaf, eliminate=False
        ),
    }
    lines = [
        f"{'variant':36s}{'leaves':>8s}{'C':>9s}{'MAE':>9s}",
        "-" * 62,
    ]
    data = {}
    for name, cfg in variants.items():
        tree, metrics = _fit_eval(train, test, cfg)
        lines.append(
            f"{name:36s}{tree.n_leaves:8d}{metrics.correlation:9.4f}"
            f"{metrics.mae:9.4f}"
        )
        data[name] = {
            "n_leaves": tree.n_leaves,
            "C": metrics.correlation,
            "MAE": metrics.mae,
        }

    # Multiplexing ablation: dedicated counters (no multiplexing noise).
    ideal_cfg = SuiteGenerationConfig(
        total_samples=ctx.config.cpu_samples,
        seed=ctx.config.seed,
        collector=CollectorConfig(multiplex=False),
        noise=ctx.config.noise,
    )
    engine = ExecutionEngine(build_core2_cost_model(), ctx.config.noise)
    ideal_data = ctx.generate(ctx.suite(ctx.CPU), ideal_cfg, engine=engine)
    rng = np.random.default_rng(ctx.config.seed + 100)
    ideal_train, ideal_test = train_test_split(
        ideal_data,
        (ctx.config.train_fraction, ctx.config.test_fraction),
        rng,
    )
    _, ideal_metrics = _fit_eval(ideal_train, ideal_test, base_cfg)
    mux_metrics = data["full M5' (prune+smooth+eliminate)"]
    lines.append("")
    lines.append("measurement pipeline:")
    lines.append(
        f"  multiplexed counters (2 of {len(train.feature_names)}): "
        f"MAE={mux_metrics['MAE']:.4f}"
    )
    lines.append(
        f"  dedicated counter per event:  MAE={ideal_metrics.mae:.4f}"
    )
    data["dedicated_counters"] = {
        "C": ideal_metrics.correlation,
        "MAE": ideal_metrics.mae,
    }

    # Training-fraction sweep: why 10% is enough.
    lines.append("")
    lines.append("training-fraction sweep (test MAE):")
    full = ctx.data(ctx.CPU)
    sweep = {}
    for fraction in (0.01, 0.02, 0.05, 0.10, 0.25):
        rng = np.random.default_rng(ctx.config.seed + 200)
        sweep_train, sweep_test = train_test_split(
            full, (fraction, ctx.config.test_fraction), rng
        )
        _, metrics = _fit_eval(sweep_train, sweep_test, base_cfg)
        sweep[fraction] = metrics.mae
        lines.append(f"  {fraction * 100:5.1f}% train -> MAE={metrics.mae:.4f}")
    data["train_fraction_sweep"] = sweep
    return ExperimentResult(
        experiment_id="E10",
        title="Ablation: M5' design choices and measurement pipeline",
        text="\n".join(lines),
        data=data,
    )
