"""E19 — cross-machine transferability (extension).

The paper's closing caveat: "the results are specific to the
architecture, platform, and compiler used."  This experiment tests it
directly: the *same* SPEC CPU2006 workloads are measured on a
successor machine (different per-event costs, same densities), and the
Core-2-trained model is transferred to the new machine's data.
Expected shape: the verdict degrades markedly versus same-machine
transfer — a model of one machine is not a model of another — while a
model retrained on the new machine is perfectly transferable within it.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.splits import train_test_split
from repro.experiments.context import ExperimentContext
from repro.experiments.result import ExperimentResult
from repro.mtree.tree import ModelTree
from repro.transfer.assess import assess_transferability
from repro.uarch.execution import ExecutionEngine
from repro.uarch.nextgen import build_nextgen_cost_model

__all__ = ["run"]


def run(ctx: ExperimentContext) -> ExperimentResult:
    cfg = ctx.config
    engine = ExecutionEngine(build_nextgen_cost_model(), cfg.noise)
    from repro.workloads.suite import SuiteGenerationConfig

    nextgen_data = ctx.generate(
        ctx.suite(ctx.CPU),
        SuiteGenerationConfig(
            total_samples=cfg.cpu_samples,
            seed=cfg.seed + 3,
            collector=cfg.collector,
            noise=cfg.noise,
        ),
        engine=engine,
    )
    rng = np.random.default_rng(cfg.seed + 600)
    nextgen_train, nextgen_test = train_test_split(
        nextgen_data, (cfg.train_fraction, cfg.test_fraction), rng
    )

    core2_model = ctx.tree(ctx.CPU)
    cross_machine = assess_transferability(
        core2_model, ctx.train_set(ctx.CPU), nextgen_test,
        source_name="CPU2006 @ Core 2",
        target_name="CPU2006 @ next-gen machine",
    )
    same_machine = assess_transferability(
        core2_model, ctx.train_set(ctx.CPU), ctx.test_set(ctx.CPU),
        source_name="CPU2006 @ Core 2",
        target_name="CPU2006 @ Core 2 (test)",
    )
    retrained = ModelTree(cfg.tree).fit_sample_set(nextgen_train)
    retrained_report = assess_transferability(
        retrained, nextgen_train, nextgen_test,
        source_name="CPU2006 @ next-gen (retrained)",
        target_name="CPU2006 @ next-gen (test)",
    )

    lines = [
        "Cross-machine transferability: same workloads, successor "
        "machine (the paper's 'results are specific to the "
        "architecture' caveat)",
        "",
        f"next-gen suite CPI: {nextgen_data.y.mean():.3f} "
        f"(Core 2: {ctx.data(ctx.CPU).y.mean():.3f})",
        "",
    ]
    rows = {}
    for label, report in (
        ("same machine", same_machine),
        ("cross machine", cross_machine),
        ("retrained on new machine", retrained_report),
    ):
        lines.append(f"{label}:")
        lines.append(f"  {report.metrics}")
        lines.append(
            f"  metric verdict: "
            f"{'transferable' if report.metrics_transferable else 'not transferable'}"
        )
        lines.append("")
        rows[label] = {
            "C": report.metrics.correlation,
            "MAE": report.metrics.mae,
            "transferable": report.metrics_transferable,
        }
    degradation = rows["cross machine"]["MAE"] / rows["same machine"]["MAE"]
    lines.append(
        f"cross-machine MAE is {degradation:.1f}x the same-machine MAE; "
        f"retraining restores accuracy "
        f"(MAE {rows['retrained on new machine']['MAE']:.4f})"
    )
    rows["degradation_factor"] = degradation
    return ExperimentResult(
        experiment_id="E19",
        title="Extension: cross-machine transferability",
        text="\n".join(lines),
        data=rows,
    )
