"""Registry mapping experiment ids to runners."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.experiments import (
    ablations,
    attribution,
    generational,
    machine_transfer,
    model_diff,
    per_benchmark_error,
    phase_quality,
    profiles,
    robustness,
    sim_validation,
    similarity,
    subsetting_exp,
    table1,
    transferability,
    tree_models,
    tuning,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.context import ExperimentContext
from repro.experiments.result import ExperimentResult
from repro.obs.metrics import counter
from repro.obs.trace import span as obs_span

__all__ = ["EXPERIMENTS", "run_experiment"]

_EXPERIMENTS_RUN = counter("experiments.completed")

EXPERIMENTS: Dict[str, Callable[[ExperimentContext], ExperimentResult]] = {
    "E1": table1.run,
    "E2": tree_models.run_cpu2006,
    "E3": profiles.run_cpu2006,
    "E4": similarity.run,
    "E5": tree_models.run_omp2001,
    "E6": profiles.run_omp2001,
    "E7": transferability.run_ttests,
    "E8": transferability.run_metrics,
    "E9": ablations.run_model_comparison,
    "E10": ablations.run_tree_ablation,
    "E11": subsetting_exp.run,
    "E12": tuning.run,
    "E13": attribution.run,
    "E14": robustness.run,
    "E15": generational.run,
    "E16": model_diff.run,
    "E17": phase_quality.run,
    "E18": per_benchmark_error.run,
    "E19": machine_transfer.run,
    "E20": sim_validation.run,
}


def run_experiment(
    experiment_id: str,
    ctx: Optional[ExperimentContext] = None,
    config: Optional[ExperimentConfig] = None,
) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"E3"``), creating a context if needed."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; have {sorted(EXPERIMENTS)}"
        )
    if ctx is None:
        ctx = ExperimentContext(config)
    with obs_span(f"experiment.{key}", experiment=key) as sp:
        result = EXPERIMENTS[key](ctx)
        sp.note(title=result.title)
    _EXPERIMENTS_RUN.inc()
    return result
