"""Shared, lazily-computed experiment state.

Generating a suite and fitting a model tree are the expensive steps;
every experiment that needs "the CPU2006 tree" must see the *same*
tree (Table II classifies with the Figure 1 model).  The context
computes each artifact once and caches it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.datasets.cache import SampleSetCache
from repro.datasets.dataset import SampleSet
from repro.datasets.splits import train_test_split
from repro.experiments.config import ExperimentConfig
from repro.mtree.tree import ModelTree
from repro.obs.trace import span as obs_span
from repro.uarch.core2 import build_core2_cost_model
from repro.uarch.execution import ExecutionEngine
from repro.workloads.spec_cpu2006 import spec_cpu2006
from repro.workloads.spec_omp2001 import spec_omp2001
from repro.workloads.suite import Suite, SuiteGenerationConfig

__all__ = ["ExperimentContext"]


class ExperimentContext:
    """Caches suites, data sets, splits and fitted trees."""

    CPU = "cpu2006"
    OMP = "omp2001"

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        cache_dir: Optional[str] = None,
    ) -> None:
        self.config = config or ExperimentConfig()
        self.cache_dir = cache_dir
        self.cache = SampleSetCache(cache_dir)
        self._suites: Dict[str, Suite] = {}
        self._data: Dict[str, SampleSet] = {}
        self._splits: Dict[str, List[SampleSet]] = {}
        self._trees: Dict[str, ModelTree] = {}

    # -- raw materials ---------------------------------------------------

    def suite(self, which: str) -> Suite:
        if which not in (self.CPU, self.OMP):
            raise ValueError(f"unknown suite {which!r}")
        if which not in self._suites:
            self._suites[which] = (
                spec_cpu2006() if which == self.CPU else spec_omp2001()
            )
        return self._suites[which]

    def generate(
        self,
        suite: Suite,
        generation: SuiteGenerationConfig,
        engine: Optional[ExecutionEngine] = None,
    ) -> SampleSet:
        """Generate a dataset through the content-addressed cache.

        Experiments that need extra datasets (other machines, other
        suites, other seeds) should route generation through here so a
        battery — serial or parallel — generates each distinct dataset
        at most once per cache.
        """
        with obs_span(
            "context.generate",
            suite=suite.name,
            samples=generation.total_samples,
            seed=generation.seed,
        ):
            return self.cache.get_or_generate(suite, generation, engine)

    def data(self, which: str) -> SampleSet:
        """The full generated sample set for one suite."""
        if which not in self._data:
            cfg = self.config
            total = cfg.cpu_samples if which == self.CPU else cfg.omp_samples
            seed = cfg.seed if which == self.CPU else cfg.seed + 1
            engine = ExecutionEngine(build_core2_cost_model(), cfg.noise)
            generation = SuiteGenerationConfig(
                total_samples=total,
                seed=seed,
                collector=cfg.collector,
                noise=cfg.noise,
            )
            self._data[which] = self.generate(
                self.suite(which), generation, engine
            )
        return self._data[which]

    def _split(self, which: str) -> List[SampleSet]:
        if which not in self._splits:
            cfg = self.config
            rng = np.random.default_rng(cfg.seed + 100)
            with obs_span("context.split", suite=which):
                self._splits[which] = train_test_split(
                    self.data(which),
                    (cfg.train_fraction, cfg.test_fraction),
                    rng,
                )
        return self._splits[which]

    def train_set(self, which: str) -> SampleSet:
        """The random 10% training split (the paper's L1 set)."""
        return self._split(which)[0]

    def test_set(self, which: str) -> SampleSet:
        """The independent random 10% test split (the paper's L2 set)."""
        return self._split(which)[1]

    # -- models ---------------------------------------------------------

    def tree(self, which: str) -> ModelTree:
        """The suite's M5' model, trained on its 10% split."""
        if which not in self._trees:
            with obs_span("context.tree", suite=which):
                tree = ModelTree(self.config.tree)
                tree.fit_sample_set(self.train_set(which))
            self._trees[which] = tree
        return self._trees[which]

    def suite_label(self, which: str) -> str:
        return "SPEC CPU2006" if which == self.CPU else "SPEC OMP2001"
