"""E2 / E5 — Figures 1 and 2: the per-suite M5' model trees.

Reports the tree structure (root split, split-variable counts, leaf
count), the Figure-style rendering, and the leaf equations with their
sample shares and average CPI — the content of Section IV.A / V.A.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.result import ExperimentResult
from repro.mtree.render import render_ascii, render_equations
from repro.transfer.metrics import prediction_metrics

__all__ = ["run_cpu2006", "run_omp2001"]


def _run(ctx: ExperimentContext, which: str, experiment_id: str, figure: str) -> ExperimentResult:
    tree = ctx.tree(which)
    train = ctx.train_set(which)
    test = ctx.test_set(which)
    metrics = prediction_metrics(tree.predict(test.X), test.y)
    leaves = sorted(tree.leaves(), key=lambda leaf: -leaf.share)
    top3 = leaves[:3]
    top3_share = sum(leaf.share for leaf in top3) * 100

    lines = [
        f"{ctx.suite_label(which)} model tree "
        f"(trained on {len(train)} samples = "
        f"{ctx.config.train_fraction * 100:.0f}% of the suite data)",
        "",
        f"root split variable:   {tree.root_split_feature()}",
        f"linear models:         {tree.n_leaves}",
        f"tree depth:            {tree.depth()}",
        f"split variable counts: {tree.split_features()}",
        f"train-set average CPI: {np.mean(train.y):.3f}",
        f"held-out accuracy:     {metrics}",
        "",
        f"three largest linear models "
        f"({top3_share:.1f}% of samples, paper: LM1+LM7+LM8 = 68.04%):",
    ]
    for leaf in top3:
        lines.append(
            f"  {leaf.name}: {leaf.share * 100:.2f}% of samples, "
            f"avg CPI {leaf.mean_y:.2f}"
        )
    lines += ["", "tree:", render_ascii(tree), "", "leaf equations:",
              render_equations(tree)]
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"{figure}: {ctx.suite_label(which)} model tree",
        text="\n".join(lines),
        data={
            "root_feature": tree.root_split_feature(),
            "n_leaves": tree.n_leaves,
            "depth": tree.depth(),
            "split_features": tree.split_features(),
            "top3_share_pct": top3_share,
            "largest_leaf_share_pct": leaves[0].share * 100,
            "test_correlation": metrics.correlation,
            "test_mae": metrics.mae,
            "train_mean_cpi": float(np.mean(train.y)),
        },
    )


def run_cpu2006(ctx: ExperimentContext) -> ExperimentResult:
    """E2 — Figure 1: SPEC CPU2006 model tree."""
    return _run(ctx, ctx.CPU, "E2", "Figure 1")


def run_omp2001(ctx: ExperimentContext) -> ExperimentResult:
    """E5 — Figure 2: SPEC OMP2001 model tree."""
    return _run(ctx, ctx.OMP, "E5", "Figure 2")
