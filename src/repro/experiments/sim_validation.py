"""E20 — structural-simulation validation of the workload specs.

The workload layer *specifies* per-phase event densities; the paper's
hardware *produced* them.  This experiment closes the loop with the
event-level simulator (:mod:`repro.sim`): concrete access patterns are
pushed through Core-2-shaped cache/TLB/predictor models, and the
measured densities are checked two ways —

1. they land in the same ground-truth cost-model regimes as the
   archetypal workload phases they imitate, and
2. they order the same way the specs assert (pointer chase >> stream
   >> compute in DTLB misses, etc.).

This demonstrates the specified densities are physically producible,
not free parameters.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.result import ExperimentResult
from repro.pmu.events import PREDICTOR_NAMES
from repro.sim.engine import simulate_phase
from repro.sim.streams import (
    pointer_chase_stream,
    random_working_set_stream,
    sequential_stream,
)
from repro.uarch.core2 import build_core2_cost_model
from repro.workloads.defaults import DEFAULT_DENSITIES

__all__ = ["run"]

_N_ACCESSES = 30_000


def _densities_to_row(densities: Dict[str, float]) -> np.ndarray:
    values = dict(DEFAULT_DENSITIES)
    # Events the structural simulator does not model keep baseline-quiet
    # values scaled down (the simulated phases are "clean" codes).
    for event in ("LdBlkOlp", "LdBlkStA", "SplitLoad", "Misalign"):
        values[event] = 0.0
    values.update(densities)
    return np.array([[values[name] for name in PREDICTOR_NAMES]])


def run(ctx: ExperimentContext) -> ExperimentResult:
    rng = np.random.default_rng(ctx.config.seed + 700)
    cost_model = build_core2_cost_model()

    scenarios = {
        "compute (16 KiB working set)": dict(
            stream=random_working_set_stream(_N_ACCESSES, 16 * 1024, rng),
            kwargs=dict(branch_taken_probability=0.97),
            expected_regime="BASE",
        ),
        "stream (32 MiB sweep)": dict(
            stream=sequential_stream(_N_ACCESSES, 32 * 1024 * 1024),
            kwargs=dict(branch_fraction=0.07,
                        branch_taken_probability=0.97),
            expected_regime="STREAM_MEMORY",
        ),
        "pointer chase (64 MiB)": dict(
            stream=pointer_chase_stream(_N_ACCESSES, 64 * 1024 * 1024, rng),
            kwargs=dict(branch_fraction=0.21,
                        branch_taken_probability=0.75,
                        n_branch_sites=32768),
            expected_regime="POINTER_CHASE",
        ),
    }
    lines = [
        "Structural-simulation validation: synthetic access patterns "
        "through Core-2-shaped cache/TLB/predictor models",
        "",
        f"{'scenario':30s} {'L1DMiss':>9s} {'L2Miss':>9s} {'DtlbMiss':>9s} "
        f"{'MisprBr':>9s}  regime",
        "-" * 86,
    ]
    data: Dict[str, Dict[str, object]] = {}
    for label, scenario in scenarios.items():
        phase = simulate_phase(scenario["stream"], rng, **scenario["kwargs"])
        row = _densities_to_row(phase.densities)
        regime = str(cost_model.regime_names(row)[0])
        cpi = float(cost_model.cpi(row)[0])
        lines.append(
            f"{label:30s} {phase.density('L1DMiss'):9.5f} "
            f"{phase.density('L2Miss'):9.5f} "
            f"{phase.density('DtlbMiss'):9.5f} "
            f"{phase.density('MisprBr'):9.5f}  {regime}"
        )
        data[label] = {
            "densities": phase.densities,
            "regime": regime,
            "expected_regime": scenario["expected_regime"],
            "regime_match": regime == scenario["expected_regime"],
            "cpi": cpi,
        }
    matches = sum(1 for d in data.values() if d["regime_match"])
    lines += [
        "",
        f"regime placement: {matches}/{len(scenarios)} scenarios land in "
        f"the intended ground-truth regime",
        "(these are archetypal pure phases; real benchmarks mix them, "
        "which is why the specs' densities sit well inside these "
        "extremes)",
    ]
    data["n_matches"] = matches
    data["n_scenarios"] = len(scenarios)
    return ExperimentResult(
        experiment_id="E20",
        title="Extension: event-level simulation validates the specs",
        text="\n".join(lines),
        data=data,
    )
