"""Shared experiment configuration.

Sample counts are scaled down ~50x from the paper's (which had
n = 208,373 in a 10% CPU2006 split, i.e. ~2M intervals per suite) so
the full experiment battery runs in minutes; the ratios — 10% train,
10% independent test, instruction-weighted benchmark shares — follow
the paper exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mtree.tree import ModelTreeConfig
from repro.pmu.collector import CollectorConfig
from repro.uarch.execution import NoiseConfig

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything that parameterizes the experiment battery."""

    cpu_samples: int = 40_000
    omp_samples: int = 24_000
    seed: int = 20080401
    train_fraction: float = 0.10
    test_fraction: float = 0.10
    tree: ModelTreeConfig = field(
        default_factory=lambda: ModelTreeConfig(min_leaf=40)
    )
    collector: CollectorConfig = field(default_factory=CollectorConfig)
    noise: NoiseConfig = field(default_factory=NoiseConfig)

    def __post_init__(self) -> None:
        if self.cpu_samples < 1000 or self.omp_samples < 1000:
            raise ValueError(
                "experiments need at least 1000 samples per suite to be "
                "statistically meaningful"
            )
        if not 0.0 < self.train_fraction <= 0.5:
            raise ValueError(
                f"train_fraction must be in (0, 0.5], got {self.train_fraction}"
            )
        if not 0.0 < self.test_fraction <= 0.5:
            raise ValueError(
                f"test_fraction must be in (0, 0.5], got {self.test_fraction}"
            )

    def scaled(self, factor: float) -> "ExperimentConfig":
        """A copy with sample counts scaled (for quick runs and tests)."""
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return ExperimentConfig(
            cpu_samples=max(1000, int(self.cpu_samples * factor)),
            omp_samples=max(1000, int(self.omp_samples * factor)),
            seed=self.seed,
            train_fraction=self.train_fraction,
            test_fraction=self.test_fraction,
            tree=self.tree,
            collector=self.collector,
            noise=self.noise,
        )
