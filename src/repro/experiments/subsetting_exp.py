"""E11 — benchmark subsetting strategy comparison (related work §II).

Compares three ways of choosing k representative CPU2006 benchmarks:

* PCA + k-means medoids over mean-density features ([13]/[14]),
* greedy matching of the model-tree profile mixture (this paper's
  machinery), and
* random selection (the control; best of 20 draws),

scoring each by the representativeness error — the Eq. 4 distance
between the subset's weighted profile mixture and the full suite's
profile.
"""

from __future__ import annotations

import numpy as np

from repro.characterization.profile import profile_sample_set
from repro.experiments.context import ExperimentContext
from repro.experiments.result import ExperimentResult
from repro.subsetting.features import density_feature_matrix
from repro.subsetting.select import (
    greedy_profile_subset,
    pca_cluster_subset,
    random_subset,
)

__all__ = ["run"]

SUBSET_SIZES = (4, 6, 8, 12)


def run(ctx: ExperimentContext) -> ExperimentResult:
    data = ctx.data(ctx.CPU)
    profile = profile_sample_set(ctx.tree(ctx.CPU), data)
    weights = data.benchmark_weights()
    names, densities = density_feature_matrix(data)

    rng = np.random.default_rng(ctx.config.seed + 300)
    lines = [
        "Representativeness error (Eq. 4 distance of the subset mixture "
        "to the suite profile; lower is better)",
        "",
        f"{'k':>3s}  {'greedy profile':>15s}  {'PCA+k-means':>12s}  "
        f"{'random(best of 20)':>19s}",
    ]
    data_out = {}
    for k in SUBSET_SIZES:
        greedy = greedy_profile_subset(profile, weights, k)
        pca = pca_cluster_subset(
            names, densities, profile, weights, k, seed=ctx.config.seed
        )
        rand = random_subset(profile, weights, k, rng, n_trials=20)
        lines.append(
            f"{k:3d}  {greedy.error:14.2f}%  {pca.error:11.2f}%  "
            f"{rand.error:18.2f}%"
        )
        data_out[k] = {
            "greedy": greedy,
            "pca_kmeans": pca,
            "random": rand,
        }
    final = data_out[max(SUBSET_SIZES)]
    lines += [
        "",
        f"k={max(SUBSET_SIZES)} subsets:",
        f"  {final['greedy']}",
        f"  {final['pca_kmeans']}",
        f"  {final['random']}",
    ]
    return ExperimentResult(
        experiment_id="E11",
        title="Extension: benchmark subsetting strategies (related work §II)",
        text="\n".join(lines),
        data=data_out,
    )
