"""E16 — structural model dissimilarity (extension).

Quantifies the paper's structural explanation of non-transferability:
"many of the key events that appear in one tree model do not appear in
the other."  Compares the CPU2006, OMP2001 and CPU2000 trees pairwise
by split-event overlap — and shows the overlap *predicts* the
transferability ordering of E8/E15.
"""

from __future__ import annotations

from repro.experiments.context import ExperimentContext
from repro.experiments.result import ExperimentResult
from repro.mtree.compare import compare_trees
from repro.mtree.tree import ModelTree
from repro.uarch.core2 import build_core2_cost_model
from repro.uarch.execution import ExecutionEngine
from repro.workloads.spec_cpu2000 import spec_cpu2000
from repro.workloads.suite import SuiteGenerationConfig

__all__ = ["run"]


def _cpu2000_tree(ctx: ExperimentContext) -> ModelTree:
    cfg = ctx.config
    engine = ExecutionEngine(build_core2_cost_model(), cfg.noise)
    data = ctx.generate(
        spec_cpu2000(),
        SuiteGenerationConfig(
            total_samples=max(cfg.cpu_samples // 2, 2000),
            seed=cfg.seed + 2,
            collector=cfg.collector,
            noise=cfg.noise,
        ),
        engine=engine,
    )
    import numpy as np

    from repro.datasets.splits import train_test_split

    rng = np.random.default_rng(cfg.seed + 400)
    fraction = min(max(cfg.train_fraction * 2, 0.2), 0.5)
    (train,) = train_test_split(data, (fraction,), rng)
    return ModelTree(cfg.tree).fit_sample_set(train)


def run(ctx: ExperimentContext) -> ExperimentResult:
    cpu2006 = ctx.tree(ctx.CPU)
    omp2001 = ctx.tree(ctx.OMP)
    cpu2000 = _cpu2000_tree(ctx)

    pairs = {
        "cpu2006-vs-cpu2000": compare_trees(
            cpu2006, cpu2000, "CPU2006", "CPU2000"
        ),
        "cpu2006-vs-omp2001": compare_trees(
            cpu2006, omp2001, "CPU2006", "OMP2001"
        ),
        "cpu2000-vs-omp2001": compare_trees(
            cpu2000, omp2001, "CPU2000", "OMP2001"
        ),
    }
    lines = []
    for comparison in pairs.values():
        lines.append(comparison.summary())
        lines.append("")
    same_family = pairs["cpu2006-vs-cpu2000"].weighted_overlap
    cross_family = pairs["cpu2006-vs-omp2001"].weighted_overlap
    lines.append(
        f"structural overlap predicts transferability: same-family "
        f"overlap {same_family:.3f} > cross-family overlap "
        f"{cross_family:.3f} "
        f"({'consistent' if same_family > cross_family else 'INCONSISTENT'} "
        f"with E8/E15)"
    )
    return ExperimentResult(
        experiment_id="E16",
        title="Extension: structural model dissimilarity",
        text="\n".join(lines),
        data={
            "comparisons": pairs,
            "same_family_overlap": same_family,
            "cross_family_overlap": cross_family,
        },
    )
