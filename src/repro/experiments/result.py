"""Uniform experiment result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["ExperimentResult"]


@dataclass(frozen=True)
class ExperimentResult:
    """One experiment's output.

    ``experiment_id`` matches DESIGN.md (e.g. "E3"); ``title`` names
    the paper artifact ("Table II"); ``text`` is the formatted report;
    ``data`` holds the structured values benchmarks and tests assert on.
    """

    experiment_id: str
    title: str
    text: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        bar = "=" * 72
        return f"{bar}\n{self.experiment_id}: {self.title}\n{bar}\n{self.text}"
