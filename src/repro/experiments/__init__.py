"""Experiment runners: one per paper table/figure plus ablations.

Every experiment consumes a shared :class:`ExperimentContext` (which
caches the generated suites, the 10% train/test splits and the two
fitted model trees) and returns an :class:`ExperimentResult` with both
structured data and a formatted text report.

Experiment ids follow DESIGN.md: E1 = Table I, E2 = Figure 1,
E3 = Table II, E4 = Table III, E5 = Figure 2, E6 = Table IV,
E7 = Section VI.A t-tests, E8 = Section VI.B metrics, E9/E10 =
ablations.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.context import ExperimentContext
from repro.experiments.result import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.runner import (
    BatteryRun,
    ExperimentTiming,
    ParallelRunner,
)

__all__ = [
    "EXPERIMENTS",
    "BatteryRun",
    "ExperimentConfig",
    "ExperimentContext",
    "ExperimentResult",
    "ExperimentTiming",
    "ParallelRunner",
    "run_experiment",
]
