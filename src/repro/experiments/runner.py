"""Parallel experiment runner.

The battery's experiments are independent given one
:class:`ExperimentConfig`: every experiment derives its random streams
from ``config.seed`` alone, never from shared mutable state, so running
them in separate processes cannot change any number.  This module
exploits that independence:

* each worker process owns a full :class:`ExperimentContext`;
* contexts share generated datasets through the content-addressed
  on-disk cache (a temporary directory when the caller gave none) and —
  under the ``fork`` start method — through copy-on-write inheritance
  of a context pre-warmed in the parent;
* results are collected as workers finish but emitted in *request*
  order, so ``repro all --jobs N`` prints stdout byte-identical to the
  serial run for the same seeds;
* per-experiment wall-clock and peak-RSS figures are recorded for the
  run summary (the CLI prints it to stderr, keeping stdout clean).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import resource
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import ExitStack
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.context import ExperimentContext
from repro.experiments.registry import EXPERIMENTS

__all__ = ["ExperimentTiming", "BatteryRun", "ParallelRunner"]


@dataclass(frozen=True)
class ExperimentTiming:
    """Wall-clock and peak-RSS accounting for one experiment."""

    key: str
    wall_s: float
    max_rss_kb: int


@dataclass(frozen=True)
class BatteryRun:
    """Outcome of one battery invocation.

    ``texts`` holds ``(experiment id, rendered result)`` pairs in the
    order the experiments were *requested* — not the order workers
    happened to finish — which is what makes parallel output
    reproducible.
    """

    texts: Tuple[Tuple[str, str], ...]
    timings: Tuple[ExperimentTiming, ...]
    wall_s: float
    jobs: int

    def summary(self) -> str:
        """Human-readable per-experiment timing table."""
        lines = [f"experiment timings ({self.jobs} worker(s)):"]
        for timing in self.timings:
            lines.append(
                f"  {timing.key:5s} {timing.wall_s:7.2f}s"
                f"  peak RSS {timing.max_rss_kb / 1024:7.1f} MB"
            )
        busy = sum(timing.wall_s for timing in self.timings)
        lines.append(f"  battery wall time {self.wall_s:.2f}s")
        if self.wall_s > 0:
            lines.append(
                f"  aggregate experiment time {busy:.2f}s "
                f"({busy / self.wall_s:.1f}x concurrency)"
            )
        return "\n".join(lines)


# Worker-side context.  Under the ``fork`` start method the parent
# installs its pre-warmed context here before creating the pool, and
# children inherit it copy-on-write; under ``spawn`` it stays None and
# the initializer builds a fresh context fed by the shared disk cache.
_WORKER_CTX: Optional[ExperimentContext] = None


def _available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def _worker_init(config: ExperimentConfig, cache_dir: Optional[str]) -> None:
    global _WORKER_CTX
    if _WORKER_CTX is None:
        _WORKER_CTX = ExperimentContext(config, cache_dir=cache_dir)


def _run_one(key: str) -> Tuple[str, str, float, int]:
    assert _WORKER_CTX is not None, "worker context missing"
    start = time.perf_counter()
    result = EXPERIMENTS[key](_WORKER_CTX)
    wall = time.perf_counter() - start
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return key, str(result), wall, rss_kb


class ParallelRunner:
    """Run a battery of experiments across a process pool.

    Results and the timing summary come back in request order no matter
    which worker finished first, and duplicate requests reuse the first
    execution's rendering (experiments are deterministic, so this is
    observationally identical to running them again).
    """

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be at least 1, got {jobs}")
        self.config = config or ExperimentConfig()
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.cache_dir = cache_dir

    def run(self, keys: Sequence[str]) -> BatteryRun:
        keys = [key.upper() for key in keys]
        unknown = [key for key in keys if key not in EXPERIMENTS]
        if unknown:
            raise KeyError(
                f"unknown experiment(s) {unknown}; have {sorted(EXPERIMENTS)}"
            )
        start = time.perf_counter()
        unique = list(dict.fromkeys(keys))
        if self.jobs == 1 or len(unique) == 1:
            texts, timings = self._run_serial(unique)
        else:
            texts, timings = self._run_parallel(unique)
        wall = time.perf_counter() - start
        return BatteryRun(
            texts=tuple((key, texts[key]) for key in keys),
            timings=tuple(timings[key] for key in unique),
            wall_s=wall,
            jobs=self.jobs,
        )

    def _run_serial(
        self, unique: List[str]
    ) -> Tuple[Dict[str, str], Dict[str, ExperimentTiming]]:
        ctx = ExperimentContext(self.config, cache_dir=self.cache_dir)
        texts: Dict[str, str] = {}
        timings: Dict[str, ExperimentTiming] = {}
        for key in unique:
            t0 = time.perf_counter()
            result = EXPERIMENTS[key](ctx)
            wall = time.perf_counter() - t0
            rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            texts[key] = str(result)
            timings[key] = ExperimentTiming(key, wall, rss_kb)
        return texts, timings

    def _run_parallel(
        self, unique: List[str]
    ) -> Tuple[Dict[str, str], Dict[str, ExperimentTiming]]:
        global _WORKER_CTX
        texts: Dict[str, str] = {}
        timings: Dict[str, ExperimentTiming] = {}
        use_fork = "fork" in mp.get_all_start_methods()
        with ExitStack() as stack:
            cache_dir = self.cache_dir
            if cache_dir is None:
                cache_dir = stack.enter_context(
                    tempfile.TemporaryDirectory(prefix="repro-cache-")
                )
            # Pre-warm the shared artifacts once in the parent: the two
            # suite datasets always go to the disk cache (so spawn
            # workers never race to regenerate them), and under fork the
            # fitted trees ride along copy-on-write for free.
            parent_ctx = ExperimentContext(self.config, cache_dir=cache_dir)
            for which in (parent_ctx.CPU, parent_ctx.OMP):
                parent_ctx.data(which)
                if use_fork:
                    parent_ctx.tree(which)
            # Never start more workers than CPUs we can run on: on a
            # single-CPU machine a pool of N only adds fork and IPC
            # overhead on top of fully serialized compute.  The clamped
            # one-worker case keeps the parallel path's observable
            # behavior (pre-warmed shared cache, identical output) but
            # runs the experiments in-process.
            workers = min(self.jobs, len(unique), _available_cpus())
            if workers == 1:
                for key in unique:
                    t0 = time.perf_counter()
                    result = EXPERIMENTS[key](parent_ctx)
                    wall = time.perf_counter() - t0
                    rss_kb = resource.getrusage(
                        resource.RUSAGE_SELF
                    ).ru_maxrss
                    texts[key] = str(result)
                    timings[key] = ExperimentTiming(key, wall, rss_kb)
                return texts, timings
            previous = _WORKER_CTX
            if use_fork:
                _WORKER_CTX = parent_ctx
            try:
                executor = stack.enter_context(
                    ProcessPoolExecutor(
                        max_workers=workers,
                        mp_context=mp.get_context("fork") if use_fork else None,
                        initializer=_worker_init,
                        initargs=(self.config, cache_dir),
                    )
                )
                futures = {
                    executor.submit(_run_one, key): key for key in unique
                }
                for future in as_completed(futures):
                    key, text, wall, rss_kb = future.result()
                    texts[key] = text
                    timings[key] = ExperimentTiming(key, wall, rss_kb)
            finally:
                _WORKER_CTX = previous
        return texts, timings
