"""Parallel experiment runner.

The battery's experiments are independent given one
:class:`ExperimentConfig`: every experiment derives its random streams
from ``config.seed`` alone, never from shared mutable state, so running
them in separate processes cannot change any number.  This module
exploits that independence:

* each worker process owns a full :class:`ExperimentContext`;
* contexts share generated datasets through the content-addressed
  on-disk cache (a temporary directory when the caller gave none) and —
  under the ``fork`` start method — through copy-on-write inheritance
  of a context pre-warmed in the parent;
* results are collected as workers finish but emitted in *request*
  order, so ``repro all --jobs N`` prints stdout byte-identical to the
  serial run for the same seeds;
* per-experiment wall-clock and RSS figures are measured *inside* the
  process that ran the experiment — each worker reads its own
  ``ru_maxrss`` immediately before and after the run and ships both
  back, so the reported per-experiment RSS growth is never polluted by
  whatever a previous experiment on the same (or another) worker
  peaked at, as parent-side ``RUSAGE_CHILDREN`` readings would be;
* when tracing is enabled (:mod:`repro.obs`), every worker records its
  experiment's span tree and ships it back serialized; the parent
  adopts them under the battery root span, so a parallel battery still
  exports one hierarchical trace.  Worker-side metric increments and
  cache statistics travel the same way and are folded into the
  parent's registry and the battery's cache totals.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import resource
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.datasets.cache import CacheStats, format_cache_stats
from repro.experiments.config import ExperimentConfig
from repro.experiments.context import ExperimentContext
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.obs.metrics import counter_delta, get_registry, histogram
from repro.obs.trace import (
    Tracer,
    current_tracer,
    set_tracer,
    span as obs_span,
    tracing_enabled,
    use_tracer,
)

__all__ = ["ExperimentTiming", "BatteryRun", "ParallelRunner"]

_EXPERIMENT_WALL = histogram("runner.experiment_wall_s")


@dataclass(frozen=True)
class ExperimentTiming:
    """Wall-clock and RSS accounting for one experiment.

    ``max_rss_kb`` is the executing process's high-water RSS right
    after the experiment finished; ``rss_delta_kb`` is how much that
    high-water mark *grew* while the experiment ran — the experiment's
    own contribution, measured in the worker itself.
    """

    key: str
    wall_s: float
    max_rss_kb: int
    rss_delta_kb: int = 0


@dataclass(frozen=True)
class BatteryRun:
    """Outcome of one battery invocation.

    ``texts`` holds ``(experiment id, rendered result)`` pairs in the
    order the experiments were *requested* — not the order workers
    happened to finish — which is what makes parallel output
    reproducible.  ``cache_stats`` sums the battery's dataset-cache
    traffic over the parent and every worker.
    """

    texts: Tuple[Tuple[str, str], ...]
    timings: Tuple[ExperimentTiming, ...]
    wall_s: float
    jobs: int
    cache_stats: CacheStats = field(default_factory=CacheStats)

    def summary(self) -> str:
        """Human-readable per-experiment timing table."""
        lines = [f"experiment timings ({self.jobs} worker(s)):"]
        for timing in self.timings:
            lines.append(
                f"  {timing.key:5s} {timing.wall_s:7.2f}s"
                f"  peak RSS {timing.max_rss_kb / 1024:7.1f} MB"
                f"  (+{timing.rss_delta_kb / 1024:.1f} MB)"
            )
        busy = sum(timing.wall_s for timing in self.timings)
        lines.append(f"  battery wall time {self.wall_s:.2f}s")
        if self.wall_s > 0:
            lines.append(
                f"  aggregate experiment time {busy:.2f}s "
                f"({busy / self.wall_s:.1f}x concurrency)"
            )
        lines.append(format_cache_stats(self.cache_stats))
        return "\n".join(lines)


# Worker-side context.  Under the ``fork`` start method the parent
# installs its pre-warmed context here before creating the pool, and
# children inherit it copy-on-write; under ``spawn`` it stays None and
# the initializer builds a fresh context fed by the shared disk cache.
_WORKER_CTX: Optional[ExperimentContext] = None
_WORKER_TRACE = False


def _available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def _maxrss_kb() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _worker_init(
    config: ExperimentConfig,
    cache_dir: Optional[str],
    trace: bool,
) -> None:
    global _WORKER_CTX, _WORKER_TRACE
    # A forked child inherits the parent's installed tracer object;
    # spans recorded into that copy would be lost, so clear it — when
    # tracing, each _run_one call scopes its own tracer and ships the
    # spans back explicitly.
    set_tracer(None)
    _WORKER_TRACE = trace
    if _WORKER_CTX is None:
        _WORKER_CTX = ExperimentContext(config, cache_dir=cache_dir)


@dataclass(frozen=True)
class _WorkerResult:
    """Everything one worker measured while running one experiment."""

    key: str
    text: str
    wall_s: float
    max_rss_kb: int
    rss_delta_kb: int
    worker_pid: int
    span_records: Tuple[Dict[str, Any], ...] = ()
    metric_delta: Tuple[Tuple[str, int], ...] = ()
    cache_delta: CacheStats = field(default_factory=CacheStats)


def _run_one(key: str) -> _WorkerResult:
    assert _WORKER_CTX is not None, "worker context missing"
    registry = get_registry()
    counters_before = registry.counter_values()
    cache_before = _WORKER_CTX.cache.stats
    tracer = Tracer() if _WORKER_TRACE else None
    rss_before = _maxrss_kb()
    start = time.perf_counter()
    with use_tracer(tracer):
        result = run_experiment(key, _WORKER_CTX)
    wall = time.perf_counter() - start
    rss_after = _maxrss_kb()
    return _WorkerResult(
        key=key,
        text=str(result),
        wall_s=wall,
        max_rss_kb=rss_after,
        rss_delta_kb=max(0, rss_after - rss_before),
        worker_pid=os.getpid(),
        span_records=tuple(tracer.span_records()) if tracer else (),
        metric_delta=tuple(
            counter_delta(registry.counter_values(), counters_before).items()
        ),
        cache_delta=_WORKER_CTX.cache.stats - cache_before,
    )


class ParallelRunner:
    """Run a battery of experiments across a process pool.

    Results and the timing summary come back in request order no matter
    which worker finished first, and duplicate requests reuse the first
    execution's rendering (experiments are deterministic, so this is
    observationally identical to running them again).
    """

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be at least 1, got {jobs}")
        self.config = config or ExperimentConfig()
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.cache_dir = cache_dir

    def run(self, keys: Sequence[str]) -> BatteryRun:
        keys = [key.upper() for key in keys]
        unknown = [key for key in keys if key not in EXPERIMENTS]
        if unknown:
            raise KeyError(
                f"unknown experiment(s) {unknown}; have {sorted(EXPERIMENTS)}"
            )
        start = time.perf_counter()
        unique = list(dict.fromkeys(keys))
        with obs_span(
            "battery", jobs=self.jobs, experiments=list(unique)
        ):
            if self.jobs == 1 or len(unique) == 1:
                texts, timings, cache_stats = self._run_serial(unique)
            else:
                texts, timings, cache_stats = self._run_parallel(unique)
        wall = time.perf_counter() - start
        return BatteryRun(
            texts=tuple((key, texts[key]) for key in keys),
            timings=tuple(timings[key] for key in unique),
            wall_s=wall,
            jobs=self.jobs,
            cache_stats=cache_stats,
        )

    def _run_in_process(
        self,
        ctx: ExperimentContext,
        unique: List[str],
        texts: Dict[str, str],
        timings: Dict[str, ExperimentTiming],
    ) -> None:
        """Run experiments in this process, recording worker-style timings."""
        for key in unique:
            rss_before = _maxrss_kb()
            t0 = time.perf_counter()
            result = run_experiment(key, ctx)
            wall = time.perf_counter() - t0
            rss_after = _maxrss_kb()
            _EXPERIMENT_WALL.observe(wall)
            texts[key] = str(result)
            timings[key] = ExperimentTiming(
                key, wall, rss_after, max(0, rss_after - rss_before)
            )

    def _run_serial(
        self, unique: List[str]
    ) -> Tuple[Dict[str, str], Dict[str, ExperimentTiming], CacheStats]:
        ctx = ExperimentContext(self.config, cache_dir=self.cache_dir)
        texts: Dict[str, str] = {}
        timings: Dict[str, ExperimentTiming] = {}
        self._run_in_process(ctx, unique, texts, timings)
        return texts, timings, ctx.cache.stats

    def _run_parallel(
        self, unique: List[str]
    ) -> Tuple[Dict[str, str], Dict[str, ExperimentTiming], CacheStats]:
        global _WORKER_CTX
        texts: Dict[str, str] = {}
        timings: Dict[str, ExperimentTiming] = {}
        registry = get_registry()
        use_fork = "fork" in mp.get_all_start_methods()
        with ExitStack() as stack:
            cache_dir = self.cache_dir
            if cache_dir is None:
                cache_dir = stack.enter_context(
                    tempfile.TemporaryDirectory(prefix="repro-cache-")
                )
            # Pre-warm the shared artifacts once in the parent: the two
            # suite datasets always go to the disk cache (so spawn
            # workers never race to regenerate them), and under fork the
            # fitted trees ride along copy-on-write for free.
            parent_ctx = ExperimentContext(self.config, cache_dir=cache_dir)
            with obs_span("battery.prewarm"):
                for which in (parent_ctx.CPU, parent_ctx.OMP):
                    parent_ctx.data(which)
                    if use_fork:
                        parent_ctx.tree(which)
            cache_stats = parent_ctx.cache.stats
            # Never start more workers than CPUs we can run on: on a
            # single-CPU machine a pool of N only adds fork and IPC
            # overhead on top of fully serialized compute.  The clamped
            # one-worker case keeps the parallel path's observable
            # behavior (pre-warmed shared cache, identical output) but
            # runs the experiments in-process.
            workers = min(self.jobs, len(unique), _available_cpus())
            if workers == 1:
                self._run_in_process(parent_ctx, unique, texts, timings)
                return texts, timings, parent_ctx.cache.stats
            previous = _WORKER_CTX
            if use_fork:
                _WORKER_CTX = parent_ctx
            try:
                executor = stack.enter_context(
                    ProcessPoolExecutor(
                        max_workers=workers,
                        mp_context=mp.get_context("fork") if use_fork else None,
                        initializer=_worker_init,
                        initargs=(self.config, cache_dir, tracing_enabled()),
                    )
                )
                futures = {
                    executor.submit(_run_one, key): key for key in unique
                }
                for future in as_completed(futures):
                    outcome: _WorkerResult = future.result()
                    texts[outcome.key] = outcome.text
                    timings[outcome.key] = ExperimentTiming(
                        outcome.key,
                        outcome.wall_s,
                        outcome.max_rss_kb,
                        outcome.rss_delta_kb,
                    )
                    _EXPERIMENT_WALL.observe(outcome.wall_s)
                    registry.merge_counter_delta(dict(outcome.metric_delta))
                    cache_stats = cache_stats + outcome.cache_delta
                    if outcome.span_records:
                        tracer = current_tracer()
                        if tracer is not None:
                            tracer.adopt(
                                list(outcome.span_records),
                                worker_pid=outcome.worker_pid,
                            )
            finally:
                _WORKER_CTX = previous
        return texts, timings, cache_stats
