"""E1 — Table I: the CPU performance metrics used in the study."""

from __future__ import annotations

from repro.experiments.context import ExperimentContext
from repro.experiments.result import ExperimentResult
from repro.pmu.events import EVENT_TABLE, FIXED_EVENTS, PREDICTOR_EVENTS

__all__ = ["run"]


def run(ctx: ExperimentContext) -> ExperimentResult:
    """Render the metric catalog plus the counter budget."""
    name_w = max(len(e.name) for e in EVENT_TABLE) + 2
    event_w = max(len(e.pmu_event) for e in EVENT_TABLE) + 2
    lines = [
        f"{'Metric'.ljust(name_w)}{'PMU event'.ljust(event_w)}Description",
        "-" * (name_w + event_w + 40),
    ]
    for event in EVENT_TABLE:
        lines.append(
            f"{event.name.ljust(name_w)}{event.pmu_event.ljust(event_w)}"
            f"{event.description}"
        )
    lines.append("")
    lines.append(
        f"Fixed counters: {', '.join(e.pmu_event for e in FIXED_EVENTS)}"
    )
    lines.append(
        f"Programmable events multiplexed 2 at a time: "
        f"{len(PREDICTOR_EVENTS)} events -> "
        f"{(len(PREDICTOR_EVENTS) + 1) // 2} rotation groups, duty cycle "
        f"{2 / len(PREDICTOR_EVENTS):.2f} per interval"
    )
    return ExperimentResult(
        experiment_id="E1",
        title="Table I: CPU performance metrics used in this study",
        text="\n".join(lines),
        data={
            "n_predictors": len(PREDICTOR_EVENTS),
            "predictor_names": [e.name for e in PREDICTOR_EVENTS],
            "fixed_events": [e.pmu_event for e in FIXED_EVENTS],
        },
    )
