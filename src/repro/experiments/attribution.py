"""E13 — CPI attribution: "how much performance change can be
attributed to each" event (the paper's third motivating question).

For each suite, decompose every sample's (unsmoothed) predicted CPI
into per-event contributions of its leaf model, and report the
suite-average cycles-per-instruction attributed to each event.  This
is the quantitative summary behind statements like "the sample's
execution time increases by 4.73 cycles for every L1 miss event."
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.result import ExperimentResult
from repro.mtree.importance import cpi_attribution, split_importance

__all__ = ["run"]


def _suite_attribution(ctx: ExperimentContext, which: str) -> Dict[str, float]:
    tree = ctx.tree(which)
    data = ctx.data(which)
    contributions = cpi_attribution(tree, data.X)
    return {
        name: float(values.mean())
        for name, values in contributions.items()
    }


def run(ctx: ExperimentContext) -> ExperimentResult:
    lines = []
    data = {}
    for which in (ctx.CPU, ctx.OMP):
        label = ctx.suite_label(which)
        attribution = _suite_attribution(ctx, which)
        importance = split_importance(ctx.tree(which))
        mean_cpi = float(ctx.data(which).y.mean())
        total = sum(attribution.values())
        ranked = sorted(
            ((name, cycles) for name, cycles in attribution.items()
             if name != "Base"),
            key=lambda item: -abs(item[1]),
        )
        lines.append(f"{label} (average CPI {mean_cpi:.3f}):")
        lines.append(
            f"  base cost: {attribution['Base']:.3f} cycles/instruction "
            f"({100 * attribution['Base'] / total:.0f}% of CPI)"
        )
        lines.append("  top event attributions (cycles/instruction):")
        for name, cycles in ranked[:8]:
            if cycles == 0.0:
                break
            lines.append(f"    {name:14s} {cycles:+8.4f}")
        lines.append(
            "  split importance (deviation controlled): "
            + ", ".join(f"{k} {v:.0%}" for k, v in list(importance.items())[:4])
        )
        lines.append("")
        data[which] = {
            "attribution": attribution,
            "split_importance": importance,
            "mean_cpi": mean_cpi,
        }
    # The cross-suite contrast the paper draws.
    cpu_rank = [
        k for k, v in sorted(
            data[ctx.CPU]["attribution"].items(), key=lambda i: -abs(i[1])
        ) if k != "Base"
    ]
    omp_rank = [
        k for k, v in sorted(
            data[ctx.OMP]["attribution"].items(), key=lambda i: -abs(i[1])
        ) if k != "Base"
    ]
    lines.append(f"top CPU2006 cost events: {cpu_rank[:5]}")
    lines.append(f"top OMP2001 cost events: {omp_rank[:5]}")
    data["cpu_top_events"] = cpu_rank[:5]
    data["omp_top_events"] = omp_rank[:5]
    return ExperimentResult(
        experiment_id="E13",
        title="Extension: per-event CPI attribution",
        text="\n".join(lines),
        data=data,
    )
