"""E12 — M5' parameter tuning: the size/accuracy frontier.

Section III: "We varied M5' algorithm parameters to achieve a balance
between tractable model size and good prediction accuracy."  This
experiment reruns that tuning: sweep the pruning penalty and the
minimum leaf size, and report the (number of leaves, held-out MAE)
frontier that justifies the library's defaults.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.context import ExperimentContext
from repro.experiments.result import ExperimentResult
from repro.mtree.tree import ModelTree, ModelTreeConfig
from repro.transfer.metrics import prediction_metrics

__all__ = ["run"]

PENALTIES = (1.0, 2.0, 4.0, 8.0)
MIN_LEAVES = (20, 40, 80)


def run(ctx: ExperimentContext) -> ExperimentResult:
    train = ctx.train_set(ctx.CPU)
    test = ctx.test_set(ctx.CPU)
    lines = [
        "M5' tuning frontier on SPEC CPU2006 "
        f"(train n={len(train)}, test n={len(test)})",
        "",
        f"{'penalty':>8s} {'min_leaf':>9s} {'leaves':>7s} {'depth':>6s} "
        f"{'C':>8s} {'MAE':>8s}",
        "-" * 52,
    ]
    frontier: Dict[Tuple[float, int], Dict[str, float]] = {}
    for penalty in PENALTIES:
        for min_leaf in MIN_LEAVES:
            config = ModelTreeConfig(min_leaf=min_leaf, penalty=penalty)
            tree = ModelTree(config).fit_sample_set(train)
            metrics = prediction_metrics(tree.predict(test.X), test.y)
            frontier[(penalty, min_leaf)] = {
                "n_leaves": tree.n_leaves,
                "depth": tree.depth(),
                "C": metrics.correlation,
                "MAE": metrics.mae,
            }
            lines.append(
                f"{penalty:8.1f} {min_leaf:9d} {tree.n_leaves:7d} "
                f"{tree.depth():6d} {metrics.correlation:8.4f} "
                f"{metrics.mae:8.4f}"
            )
    default = ctx.config.tree
    lines += [
        "",
        f"library default: penalty={default.penalty}, "
        f"min_leaf={default.min_leaf} — chosen where accuracy has "
        f"plateaued but the tree stays tractable and stable across seeds",
    ]
    return ExperimentResult(
        experiment_id="E12",
        title="Extension: M5' parameter tuning (Section III's balance)",
        text="\n".join(lines),
        data={"frontier": frontier},
    )
