"""E17 — phase-detection quality on ground-truth traces (extension).

The workload generator produces intervals with known phase structure
(geometric dwell times); the phase detector must recover the change
points from the *observed* (multiplex-noisy) stream.  This experiment
scores detector precision/recall per benchmark against the generator's
ground truth — the related-work direction ([12]) made quantitative.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.result import ExperimentResult
from repro.phases.detect import PhaseDetector, PhaseDetectorConfig
from repro.phases.segments import segmentation_score
from repro.pmu.collector import PmuCollector

__all__ = ["run"]

TRACE_LENGTH = 1200
TOLERANCE = 6

#: Benchmarks with well-separated phases (detectable by construction)
#: versus single-phase benchmarks (nothing to detect: precision test).
MULTI_PHASE = ("403.gcc", "429.mcf", "482.sphinx3", "470.lbm", "473.astar")
SINGLE_PHASE = ("456.hmmer", "444.namd")


def run(ctx: ExperimentContext) -> ExperimentResult:
    suite = ctx.suite(ctx.CPU)
    rng = np.random.default_rng(ctx.config.seed + 500)
    collector = PmuCollector(ctx.config.collector)
    detector = PhaseDetector(
        PhaseDetectorConfig(window=8, threshold=7.0, min_gap=10)
    )
    lines = [
        f"Phase-change detection on {TRACE_LENGTH}-interval observed "
        f"traces (tolerance {TOLERANCE} intervals)",
        "",
        f"{'benchmark':18s} {'true':>5s} {'found':>6s} {'prec':>6s} "
        f"{'recall':>7s} {'f1':>6s}",
        "-" * 54,
    ]
    data: Dict[str, Dict[str, float]] = {}
    for name in MULTI_PHASE + SINGLE_PHASE:
        spec = suite.benchmark(name)
        densities, phase_idx = spec.sample_trace(TRACE_LENGTH, rng)
        observed = collector.observe_densities(densities, rng)
        truth = (np.nonzero(np.diff(phase_idx) != 0)[0] + 1).tolist()
        detected = detector.detect(observed)
        score = segmentation_score(
            detected, truth, n=TRACE_LENGTH, tolerance=TOLERANCE
        )
        lines.append(
            f"{name:18s} {len(truth):5d} {len(detected):6d} "
            f"{score['precision']:6.2f} {score['recall']:7.2f} "
            f"{score['f1']:6.2f}"
        )
        data[name] = {
            "n_true": len(truth),
            "n_detected": len(detected),
            **score,
        }
    multi_f1 = float(np.mean([data[n]["f1"] for n in MULTI_PHASE]))
    single_false = sum(data[n]["n_detected"] for n in SINGLE_PHASE)
    lines += [
        "",
        f"mean F1 over multi-phase benchmarks: {multi_f1:.2f}",
        f"false boundaries on single-phase benchmarks: {single_false}",
    ]
    data["multi_phase_mean_f1"] = multi_f1
    data["single_phase_false_positives"] = single_false
    return ExperimentResult(
        experiment_id="E17",
        title="Extension: phase-detection quality on observed traces",
        text="\n".join(lines),
        data=data,
    )
