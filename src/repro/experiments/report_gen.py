"""Full reproduction report generation.

``generate_report`` runs every registered experiment against one shared
context and assembles a single self-contained text/markdown report —
the machine-written companion to EXPERIMENTS.md.  Exposed on the CLI as
``repro report``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from repro.characterization.profile import profile_sample_set
from repro.characterization.salience import (
    find_salient_features,
    render_salience,
)
from repro.experiments.context import ExperimentContext
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["generate_report"]


def generate_report(
    ctx: Optional[ExperimentContext] = None,
    experiments: Sequence[str] = (),
    path: Optional[Union[str, Path]] = None,
) -> str:
    """Run experiments and return (and optionally write) the report.

    ``experiments`` defaults to every registered id in numeric order.
    """
    ctx = ctx or ExperimentContext()
    ids = list(experiments) or sorted(EXPERIMENTS, key=lambda k: int(k[1:]))
    unknown = [e for e in ids if e.upper() not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments {unknown}")

    cfg = ctx.config
    sections = [
        "# Reproduction report",
        "",
        "Characterization of SPEC CPU2006 and SPEC OMP2001: Regression "
        "Models and their Transferability (ISPASS 2008)",
        "",
        f"- CPU2006 intervals: {cfg.cpu_samples}",
        f"- OMP2001 intervals: {cfg.omp_samples}",
        f"- train/test fractions: {cfg.train_fraction:.0%} / "
        f"{cfg.test_fraction:.0%}",
        f"- master seed: {cfg.seed}",
        f"- tree config: min_leaf={cfg.tree.min_leaf}, "
        f"penalty={cfg.tree.penalty}, smoothing="
        f"{'on' if cfg.tree.smooth else 'off'}",
        "",
    ]
    for experiment_id in ids:
        result = run_experiment(experiment_id, ctx)
        sections.append(f"## {result.experiment_id}: {result.title}")
        sections.append("")
        sections.append("```")
        sections.append(result.text)
        sections.append("```")
        sections.append("")

    # Close with the Section IV.B-style narratives for both suites.
    for which in (ctx.CPU, ctx.OMP):
        profile = profile_sample_set(ctx.tree(which), ctx.data(which))
        salience = render_salience(find_salient_features(profile))
        sections.append(f"## Salient profiles: {ctx.suite_label(which)}")
        sections.append("")
        sections.append("```")
        sections.append(salience)
        sections.append("```")
        sections.append("")

    # Figure-like views: CPI distributions and the transfer scatter.
    from repro.viz.ascii_plots import histogram, scatter

    sections.append("## CPI distributions")
    sections.append("")
    for which in (ctx.CPU, ctx.OMP):
        sections.append("```")
        sections.append(
            histogram(
                ctx.data(which).y,
                bins=16,
                title=f"{ctx.suite_label(which)} CPI distribution",
            )
        )
        sections.append("```")
        sections.append("")

    # Marginal correlations: the zeroth-order view the tree improves on.
    from repro.characterization.correlations import format_cpi_correlations

    sections.append("## Marginal event-CPI correlations")
    sections.append("")
    for which in (ctx.CPU, ctx.OMP):
        sections.append(f"{ctx.suite_label(which)}:")
        sections.append("```")
        sections.append(format_cpi_correlations(ctx.data(which)))
        sections.append("```")
        sections.append("")

    # Counter-data quality: which event densities the modeling can trust.
    from repro.pmu.collector import PmuCollector
    from repro.pmu.diagnostics import data_quality_report, format_quality_table

    collector = PmuCollector(ctx.config.collector)
    sections.append("## Counter-data quality (CPU2006, multiplexed)")
    sections.append("")
    sections.append("```")
    sections.append(
        format_quality_table(data_quality_report(ctx.data(ctx.CPU), collector))
    )
    sections.append("```")
    sections.append("")

    sections.append("## Predicted vs. actual (CPU2006 model)")
    sections.append("")
    cpu_model = ctx.tree(ctx.CPU)
    for target, label in (
        (ctx.test_set(ctx.CPU), "on held-out CPU2006 (transfers)"),
        (ctx.train_set(ctx.OMP), "on OMP2001 (does not transfer)"),
    ):
        sections.append("```")
        sections.append(
            scatter(
                target.y,
                cpu_model.predict(target.X),
                title=f"{label}; x = actual CPI, y = predicted CPI, "
                f"/ = perfect prediction",
                diagonal=True,
            )
        )
        sections.append("```")
        sections.append("")

    report = "\n".join(sections)
    if path is not None:
        Path(path).write_text(report)
    return report
