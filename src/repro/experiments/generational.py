"""E15 — generational transferability (extension).

The paper shows a model transfers within a suite but not across the
CPU2006/OMP2001 divide.  What about across *generations* of the same
suite family?  SPEC CPU2000 exercises the same serial CPU/memory
behaviours as CPU2006 with systematically milder cache/TLB pressure, so
a CPU2006 model should land *between* the paper's two extremes:
clearly more transferable than to OMP2001, clearly less than to held-out
CPU2006 data.  This experiment measures exactly that ordering.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.result import ExperimentResult
from repro.transfer.assess import assess_transferability
from repro.uarch.core2 import build_core2_cost_model
from repro.uarch.execution import ExecutionEngine
from repro.workloads.spec_cpu2000 import spec_cpu2000
from repro.workloads.suite import SuiteGenerationConfig

__all__ = ["run"]


def run(ctx: ExperimentContext) -> ExperimentResult:
    cfg = ctx.config
    engine = ExecutionEngine(build_core2_cost_model(), cfg.noise)
    cpu2000 = ctx.generate(
        spec_cpu2000(),
        SuiteGenerationConfig(
            total_samples=max(cfg.cpu_samples // 2, 2000),
            seed=cfg.seed + 2,
            collector=cfg.collector,
            noise=cfg.noise,
        ),
        engine=engine,
    )
    model = ctx.tree(ctx.CPU)
    source = ctx.train_set(ctx.CPU)

    within = assess_transferability(
        model, source, ctx.test_set(ctx.CPU),
        source_name="SPEC CPU2006", target_name="SPEC CPU2006 (test)",
    )
    generational = assess_transferability(
        model, source, cpu2000,
        source_name="SPEC CPU2006", target_name="SPEC CPU2000",
    )
    cross = assess_transferability(
        model, source, ctx.train_set(ctx.OMP),
        source_name="SPEC CPU2006", target_name="SPEC OMP2001",
    )

    lines = [
        "Generational transferability of the SPEC CPU2006 model "
        "(extension beyond the paper)",
        "",
        f"CPU2000 suite: {len(spec_cpu2000())} benchmarks, "
        f"{len(cpu2000)} intervals, average CPI {cpu2000.y.mean():.3f} "
        f"(CPU2006: {np.mean(ctx.data(ctx.CPU).y):.3f})",
        "",
    ]
    rows = {}
    for label, report in (
        ("within (2006 -> 2006 test)", within),
        ("generational (2006 -> 2000)", generational),
        ("cross-family (2006 -> OMP2001)", cross),
    ):
        lines.append(f"{label}:")
        lines.append(f"  {report.metrics}")
        lines.append(
            f"  metric verdict: "
            f"{'transferable' if report.metrics_transferable else 'not transferable'}"
        )
        lines.append("")
        rows[label] = {
            "C": report.metrics.correlation,
            "MAE": report.metrics.mae,
            "transferable": report.metrics_transferable,
        }
    ordering = (
        rows["within (2006 -> 2006 test)"]["MAE"]
        <= rows["generational (2006 -> 2000)"]["MAE"]
        <= rows["cross-family (2006 -> OMP2001)"]["MAE"]
    )
    lines.append(
        "MAE ordering within <= generational <= cross-family: "
        + ("holds" if ordering else "VIOLATED")
    )
    rows["ordering_holds"] = ordering
    return ExperimentResult(
        experiment_id="E15",
        title="Extension: generational transferability (CPU2006 -> CPU2000)",
        text="\n".join(lines),
        data=rows,
    )
