"""E3 / E6 — Tables II and IV: per-benchmark leaf distributions."""

from __future__ import annotations

from repro.characterization.profile import profile_sample_set
from repro.characterization.report import format_profile_table
from repro.experiments.context import ExperimentContext
from repro.experiments.result import ExperimentResult

__all__ = ["run_cpu2006", "run_omp2001"]


def _run(ctx: ExperimentContext, which: str, experiment_id: str, table: str) -> ExperimentResult:
    tree = ctx.tree(which)
    data = ctx.data(which)
    profile = profile_sample_set(tree, data)
    # The observations Section IV.B leads with.
    largest_lm = max(profile.suite_row, key=profile.suite_row.get)
    over_half = [
        p.benchmark for p in profile.benchmarks if p.share(largest_lm) > 50.0
    ]
    over_ninety = [
        p.benchmark for p in profile.benchmarks if p.share(largest_lm) > 90.0
    ]
    lines = [
        f"{table}: sample distribution across linear models by benchmark "
        f"(shares >= 20% marked with *)",
        "",
        format_profile_table(profile),
        "",
        f"most populated model: {largest_lm} "
        f"({profile.suite_row[largest_lm]:.1f}% of suite samples)",
        f"benchmarks with > 50% of samples in {largest_lm}: "
        f"{len(over_half)} ({', '.join(over_half)})",
        f"benchmarks with > 90% of samples in {largest_lm}: "
        f"{len(over_ninety)} ({', '.join(over_ninety)})",
    ]
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"{table}: {ctx.suite_label(which)} profiles",
        text="\n".join(lines),
        data={
            "profile": profile,
            "largest_lm": largest_lm,
            "largest_lm_suite_share": profile.suite_row[largest_lm],
            "benchmarks_over_50pct": over_half,
            "benchmarks_over_90pct": over_ninety,
        },
    )


def run_cpu2006(ctx: ExperimentContext) -> ExperimentResult:
    """E3 — Table II: SPEC CPU2006 distribution across linear models."""
    return _run(ctx, ctx.CPU, "E3", "Table II")


def run_omp2001(ctx: ExperimentContext) -> ExperimentResult:
    """E6 — Table IV: SPEC OMP2001 distribution across linear models."""
    return _run(ctx, ctx.OMP, "E6", "Table IV")
