"""E14 — seed robustness of the transferability verdicts.

A reproduction's headline claim should not hinge on one random draw.
This experiment reruns the complete Section VI battery across several
independent seeds (fresh suite data, fresh splits, fresh trees) and
reports how often each of the four verdicts lands where the paper says
it should — together with the spread of C and MAE.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.context import ExperimentContext
from repro.experiments.result import ExperimentResult
from repro.experiments.transferability import transfer_reports

__all__ = ["run"]

N_SEEDS = 5


def run(ctx: ExperimentContext) -> ExperimentResult:
    base = ctx.config
    directions: Dict[str, Dict[str, List[float]]] = {}
    matches = 0
    total = 0
    for offset in range(N_SEEDS):
        seed_cfg = ExperimentConfig(
            cpu_samples=base.cpu_samples,
            omp_samples=base.omp_samples,
            seed=base.seed + 1000 * (offset + 1),
            train_fraction=base.train_fraction,
            test_fraction=base.test_fraction,
            tree=base.tree,
            collector=base.collector,
            noise=base.noise,
        )
        seed_ctx = ExperimentContext(seed_cfg)
        for report, expected in transfer_reports(seed_ctx):
            key = f"{report.source_name} -> {report.target_name}"
            entry = directions.setdefault(
                key,
                {
                    "C": [],
                    "MAE": [],
                    "match": [],
                    "hypothesis_reject": [],
                    "expected": [expected],
                },
            )
            entry["C"].append(report.metrics.correlation)
            entry["MAE"].append(report.metrics.mae)
            # Score robustness on the Section VI.B metric verdict: the
            # point-null t-tests falsely reject ~5% of the time at 95%
            # confidence *by construction*, so they are reported as
            # rates rather than folded into the pass criterion.
            verdict = report.metrics_transferable
            entry["match"].append(float(verdict == expected))
            entry["hypothesis_reject"].append(
                float(not report.hypothesis_transferable)
            )
            matches += int(verdict == expected)
            total += 1

    lines = [
        f"Transferability verdicts across {N_SEEDS} independent seeds "
        f"(fresh data, splits and trees each time)",
        "",
        "Scored on the Section VI.B metric thresholds; two-sample-test "
        "rejection rates are reported separately (at 95% confidence a "
        "true-null test rejects ~5% of the time by design).",
        "",
    ]
    for key, entry in directions.items():
        c = np.array(entry["C"])
        mae = np.array(entry["MAE"])
        match_rate = float(np.mean(entry["match"]))
        reject_rate = float(np.mean(entry["hypothesis_reject"]))
        lines.append(key)
        lines.append(
            f"  C   = {c.mean():.4f} +/- {c.std():.4f}  "
            f"(range {c.min():.4f}..{c.max():.4f})"
        )
        lines.append(
            f"  MAE = {mae.mean():.4f} +/- {mae.std():.4f}  "
            f"(range {mae.min():.4f}..{mae.max():.4f})"
        )
        lines.append(
            f"  metric verdict matches paper: {match_rate * 100:.0f}% of seeds"
            f"  (hypothesis tests rejected on {reject_rate * 100:.0f}%)"
        )
        lines.append("")
    lines.append(
        f"overall: {matches}/{total} seed-direction metric verdicts "
        f"match the paper"
    )
    return ExperimentResult(
        experiment_id="E14",
        title="Extension: seed robustness of the transferability result",
        text="\n".join(lines),
        data={
            "directions": directions,
            "match_fraction": matches / total if total else 0.0,
            "n_seeds": N_SEEDS,
        },
    )
