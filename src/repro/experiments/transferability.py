"""E7 / E8 — Section VI: model transferability.

Runs the paper's four transfer directions:

* CPU2006 model -> independent CPU2006 test set  (expected: transferable)
* CPU2006 model -> OMP2001 set                   (expected: not)
* OMP2001 model -> independent OMP2001 test set  (expected: transferable)
* OMP2001 model -> CPU2006 set                   (expected: not)

E7 reports the two-sample t statistics against the 1.96 critical value
(Section VI.A); E8 reports C and MAE against the 0.85 / 0.15 thresholds
(Section VI.B).  Both are produced from the same
:func:`repro.transfer.assess.assess_transferability` reports.

The Eqs. 8-13 arithmetic underneath lives in :mod:`repro.stats.transfer`
and is shared with the streaming drift detectors (:mod:`repro.drift`),
so ``repro monitor`` renders the same battery these experiments print —
continuously, over served traffic.  A bit-identity regression test
(``tests/experiments/test_transfer_regression.py``) pins these outputs
to the raw formulas.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.experiments.context import ExperimentContext
from repro.experiments.result import ExperimentResult
from repro.stats.descriptive import summarize
from repro.transfer.assess import TransferabilityReport, assess_transferability

__all__ = ["transfer_reports", "run_ttests", "run_metrics", "DIRECTIONS"]

#: (source suite, target suite, expected transferable) per the paper.
DIRECTIONS: Tuple[Tuple[str, str, bool], ...] = (
    ("cpu2006", "cpu2006", True),
    ("cpu2006", "omp2001", False),
    ("omp2001", "omp2001", True),
    ("omp2001", "cpu2006", False),
)


def transfer_reports(
    ctx: ExperimentContext,
) -> List[Tuple[TransferabilityReport, bool]]:
    """All four direction reports, each with the paper's expectation."""
    reports = []
    for source, target, expected in DIRECTIONS:
        model = ctx.tree(source)
        source_set = ctx.train_set(source)
        # Within-suite: the *independent* test split; cross-suite: the
        # other suite's training split (what the paper's Section VI uses).
        target_set = (
            ctx.test_set(target) if source == target else ctx.train_set(target)
        )
        report = assess_transferability(
            model,
            source_set,
            target_set,
            source_name=ctx.suite_label(source),
            target_name=ctx.suite_label(target)
            + (" (independent test set)" if source == target else ""),
        )
        reports.append((report, expected))
    return reports


def run_ttests(ctx: ExperimentContext) -> ExperimentResult:
    """E7 — Section VI.A: two-sample hypothesis tests."""
    lines = []
    data: Dict[str, object] = {}
    all_match = True
    for report, expected in transfer_reports(ctx):
        key = f"{report.source_name} -> {report.target_name}"
        lines.append(key)
        source_summary = summarize(
            ctx.train_set(_which(report.source_name)).y
        )
        lines.append(f"  source CPI: {source_summary}")
        lines.append(f"  {report.dependent_test}")
        lines.append(f"  {report.prediction_test}")
        verdict = report.hypothesis_transferable
        match = verdict == expected
        all_match = all_match and match
        lines.append(
            f"  hypothesis-test verdict: "
            f"{'transferable' if verdict else 'not transferable'} "
            f"(paper: {'transferable' if expected else 'not transferable'}) "
            f"{'[MATCH]' if match else '[MISMATCH]'}"
        )
        lines.append("")
        data[key] = {
            "dependent_t": report.dependent_test.statistic,
            "prediction_t": report.prediction_test.statistic,
            "critical": report.dependent_test.critical_value,
            "transferable": verdict,
            "expected": expected,
        }
    data["all_match_paper"] = all_match
    return ExperimentResult(
        experiment_id="E7",
        title="Section VI.A: two-sample t-tests for transferability",
        text="\n".join(lines),
        data=data,
    )


def run_metrics(ctx: ExperimentContext) -> ExperimentResult:
    """E8 — Section VI.B: prediction accuracy metrics.

    Extends the paper's point estimates with percentile-bootstrap 95%
    intervals, so each verdict is checked against a whole interval
    rather than a single draw.
    """
    from repro.transfer.bootstrap import bootstrap_metric_intervals

    lines = [
        "Acceptance thresholds (paper): C > 0.85 and MAE < 0.15",
        "Paper values: CPU->CPU C=0.9214 MAE=0.0988; "
        "CPU->OMP C=0.4337 MAE=0.3721",
        "",
    ]
    data: Dict[str, object] = {}
    all_match = True
    for report, expected in transfer_reports(ctx):
        key = f"{report.source_name} -> {report.target_name}"
        verdict = report.metrics_transferable
        match = verdict == expected
        all_match = all_match and match
        source = ctx.tree(_which(report.source_name))
        target_set = (
            ctx.test_set(_which(report.target_name))
            if report.source_name.split(" (")[0]
            == report.target_name.split(" (")[0]
            else ctx.train_set(_which(report.target_name))
        )
        intervals = bootstrap_metric_intervals(
            source.predict(target_set.X),
            target_set.y,
            n_resamples=400,
            seed=ctx.config.seed,
        )
        lines.append(key)
        lines.append(f"  {report.metrics}")
        lines.append(f"  C   bootstrap 95%: {intervals.correlation}")
        lines.append(f"  MAE bootstrap 95%: {intervals.mae}")
        lines.append(
            f"  metric verdict: "
            f"{'transferable' if verdict else 'not transferable'} "
            f"(paper: {'transferable' if expected else 'not transferable'}) "
            f"{'[MATCH]' if match else '[MISMATCH]'}"
        )
        lines.append("")
        data[key] = {
            "C": report.metrics.correlation,
            "MAE": report.metrics.mae,
            "C_interval": intervals.correlation,
            "MAE_interval": intervals.mae,
            "transferable": verdict,
            "expected": expected,
        }
    data["all_match_paper"] = all_match
    return ExperimentResult(
        experiment_id="E8",
        title="Section VI.B: prediction accuracy metrics for transferability",
        text="\n".join(lines),
        data=data,
    )


def _which(label: str) -> str:
    return "cpu2006" if "CPU2006" in label else "omp2001"
