"""E18 — per-benchmark error decomposition of the cross-suite failure.

Section VI reports one aggregate MAE for CPU2006 -> OMP2001.  Breaking
that error down by target benchmark shows *where* the transfer breaks:
the OMP2001 members living in regimes the CPU2006 model never trained
on (heavy store-blocked code, data-starved SIMD) carry almost all of
the error, while OMP members that happen to live in shared regimes
(330.art_m's quiet scalar code) predict fine.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.result import ExperimentResult
from repro.transfer.metrics import prediction_metrics

__all__ = ["run"]


def run(ctx: ExperimentContext) -> ExperimentResult:
    model = ctx.tree(ctx.CPU)
    target = ctx.data(ctx.OMP)
    overall = prediction_metrics(model.predict(target.X), target.y)

    rows: Dict[str, Dict[str, float]] = {}
    for name in target.benchmark_names():
        subset = target.for_benchmark(name)
        predicted = model.predict(subset.X)
        mae = float(np.mean(np.abs(predicted - subset.y)))
        bias = float(np.mean(predicted - subset.y))
        rows[name] = {
            "mae": mae,
            "bias": bias,
            "actual_cpi": float(subset.y.mean()),
            "predicted_cpi": float(predicted.mean()),
            "n": len(subset),
        }

    ranked = sorted(rows.items(), key=lambda item: -item[1]["mae"])
    lines = [
        "Per-benchmark breakdown of the CPU2006 -> OMP2001 transfer error",
        f"overall: {overall}",
        "",
        f"{'benchmark':16s} {'actual':>7s} {'pred':>7s} {'bias':>8s} "
        f"{'MAE':>7s}",
        "-" * 50,
    ]
    for name, row in ranked:
        lines.append(
            f"{name:16s} {row['actual_cpi']:7.2f} {row['predicted_cpi']:7.2f} "
            f"{row['bias']:+8.3f} {row['mae']:7.3f}"
        )
    worst = ranked[0][0]
    best = ranked[-1][0]
    spread = ranked[0][1]["mae"] / max(ranked[-1][1]["mae"], 1e-9)
    lines += [
        "",
        f"worst-predicted: {worst} (MAE {ranked[0][1]['mae']:.3f}); "
        f"best-predicted: {best} (MAE {ranked[-1][1]['mae']:.3f}); "
        f"spread {spread:.1f}x",
        "the error concentrates in the benchmarks whose regimes "
        "(store-blocked, starved-SIMD) the CPU2006 model never saw",
    ]
    return ExperimentResult(
        experiment_id="E18",
        title="Extension: per-benchmark cross-suite error decomposition",
        text="\n".join(lines),
        data={
            "rows": rows,
            "overall_mae": overall.mae,
            "worst": worst,
            "best": best,
            "spread": spread,
        },
    )
