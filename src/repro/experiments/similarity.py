"""E4 — Table III: pairwise benchmark differences (Equation 4).

The paper tabulates a subset of the 29 CPU2006 benchmarks and calls
out the notable pairs: the five LM1-dominated benchmarks
(456.hmmer, 444.namd, 435.gromacs, 454.calculix, 447.dealII) are
mutually similar within a few percent, while 429.mcf, 444.namd and
459.GemsFDTD are mutually dissimilar above 90%.
"""

from __future__ import annotations

from repro.characterization.profile import profile_sample_set
from repro.characterization.report import format_similarity_table
from repro.characterization.similarity import similarity_matrix
from repro.experiments.context import ExperimentContext
from repro.experiments.result import ExperimentResult

__all__ = ["run", "TABLE3_BENCHMARKS", "SIMILAR_GROUP", "DISSIMILAR_GROUP"]

#: The subset shown in the paper's Table III (plus the suite row).
TABLE3_BENCHMARKS = (
    "456.hmmer",
    "444.namd",
    "435.gromacs",
    "454.calculix",
    "447.dealII",
    "429.mcf",
    "459.GemsFDTD",
    "473.astar",
    "464.h264ref",
    "436.cactusADM",
    "470.lbm",
    "471.omnetpp",
    "482.sphinx3",
)

#: The five benchmarks the paper finds nearly indistinguishable.
SIMILAR_GROUP = (
    "456.hmmer",
    "444.namd",
    "435.gromacs",
    "454.calculix",
    "447.dealII",
)

#: The mutually-dissimilar trio (all pairwise distances > 90%).
DISSIMILAR_GROUP = ("429.mcf", "444.namd", "459.GemsFDTD")


def run(ctx: ExperimentContext) -> ExperimentResult:
    profile = profile_sample_set(ctx.tree(ctx.CPU), ctx.data(ctx.CPU))
    matrix = similarity_matrix(profile, TABLE3_BENCHMARKS)

    similar_pairs = []
    for i, a in enumerate(SIMILAR_GROUP):
        for b in SIMILAR_GROUP[i + 1 :]:
            similar_pairs.append((a, b, matrix.distance(a, b)))
    dissimilar_pairs = []
    for i, a in enumerate(DISSIMILAR_GROUP):
        for b in DISSIMILAR_GROUP[i + 1 :]:
            dissimilar_pairs.append((a, b, matrix.distance(a, b)))

    lines = [
        "Table III: pairwise benchmark differences, Equation 4 "
        "(0 = identical profiles, 100 = disjoint)",
        "",
        format_similarity_table(matrix),
        "",
        "similar HPC group (paper: all pairs within ~8%):",
    ]
    for a, b, d in similar_pairs:
        lines.append(f"  {a} vs {b}: {d:.1f}%")
    lines.append("dissimilar trio (paper: all pairs > 90%):")
    for a, b, d in dissimilar_pairs:
        lines.append(f"  {a} vs {b}: {d:.1f}%")
    return ExperimentResult(
        experiment_id="E4",
        title="Table III: SPEC CPU2006 benchmark similarity",
        text="\n".join(lines),
        data={
            "matrix": matrix,
            "similar_pairs": similar_pairs,
            "dissimilar_pairs": dissimilar_pairs,
            "max_similar_distance": max(d for *_, d in similar_pairs),
            "min_dissimilar_distance": min(d for *_, d in dissimilar_pairs),
        },
    )
