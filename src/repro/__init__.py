"""repro — reproduction of "Characterization of SPEC CPU2006 and SPEC
OMP2001: Regression Models and their Transferability" (ISPASS 2008).

The package is organized bottom-up:

* :mod:`repro.pmu` — simulated performance-counter collection (Table I
  events, round-robin multiplexing).
* :mod:`repro.uarch` — the Core-2-like ground-truth cost model standing
  in for the paper's hardware.
* :mod:`repro.workloads` — synthetic SPEC CPU2006 / SPEC OMP2001 suites.
* :mod:`repro.datasets` — sample containers, splits, CSV I/O.
* :mod:`repro.mtree` — the M5' model tree (the paper's core method).
* :mod:`repro.baselines` — comparison regressors (OLS, CART, kNN, MLP).
* :mod:`repro.characterization` — leaf profiles and benchmark
  similarity (Tables II-IV).
* :mod:`repro.stats` / :mod:`repro.transfer` — hypothesis tests and
  prediction metrics for transferability (Section VI).
* :mod:`repro.experiments` — one runner per paper table/figure.

Quickstart::

    from repro import (ModelTree, ModelTreeConfig, spec_cpu2006,
                       SuiteGenerationConfig)
    data = spec_cpu2006().generate(SuiteGenerationConfig(total_samples=10_000))
    tree = ModelTree(ModelTreeConfig(min_leaf=40)).fit_sample_set(data)
    print(tree.root_split_feature(), tree.n_leaves)
"""

from repro.datasets import SampleSet, load_csv, save_csv, train_test_split
from repro.characterization import (
    l1_difference,
    profile_sample_set,
    similarity_matrix,
)
from repro.experiments import (
    ExperimentConfig,
    ExperimentContext,
    run_experiment,
)
from repro.mtree import (
    ModelTree,
    ModelTreeConfig,
    render_ascii,
    render_dot,
    render_equations,
    tree_from_dict,
    tree_to_dict,
)
from repro.transfer import (
    TransferabilityCriteria,
    assess_transferability,
    prediction_metrics,
    two_sample_t_test,
)
from repro.workloads import (
    Suite,
    SuiteGenerationConfig,
    spec_cpu2006,
    spec_omp2001,
)

__version__ = "1.0.0"

__all__ = [
    "ExperimentConfig",
    "ExperimentContext",
    "ModelTree",
    "ModelTreeConfig",
    "SampleSet",
    "Suite",
    "SuiteGenerationConfig",
    "TransferabilityCriteria",
    "__version__",
    "assess_transferability",
    "l1_difference",
    "load_csv",
    "prediction_metrics",
    "profile_sample_set",
    "render_ascii",
    "render_dot",
    "render_equations",
    "run_experiment",
    "save_csv",
    "similarity_matrix",
    "spec_cpu2006",
    "spec_omp2001",
    "train_test_split",
    "tree_from_dict",
    "tree_to_dict",
    "two_sample_t_test",
]
