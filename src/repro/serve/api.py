"""Threaded HTTP/JSON API over the registry and prediction engine.

Stdlib only (:mod:`http.server`): each connection is handled on its own
thread by ``ThreadingHTTPServer`` while all predictions funnel through
the engine's single batching worker — many slow clients, one fast
vectorized compute path.

Routes (see ``docs/SERVING.md`` for the full reference)::

    GET  /healthz                          liveness + model count
    GET  /metrics                          Prometheus text exposition
    GET  /v1/models                        list published records
    GET  /v1/models/{ref}                  one record (id or alias)
    GET  /v1/models/{ref}/profile          leaf models, equations, shares
    GET  /v1/models/{ref}/compare/{ref2}   structural tree comparison
    GET  /v1/models/{ref}/drift            online transferability verdict
    POST /v1/models/{ref}/predict          micro-batched CPI prediction

A predict body may carry ``"actuals"`` — observed CPI values (one per
instance, ``null`` = unlabelled) that feed the drift monitor without
affecting the returned predictions.

Errors are structured JSON — ``{"error": {"code", "message"}}`` — with
conventional status codes: 400 malformed body/shape, 404 unknown model
or route, 405 wrong method, 413 oversized body, 500 integrity or
internal failures.  Bodies above ``max_body_bytes`` are rejected
before being read into memory.

Shutdown is graceful: :meth:`ModelServer.shutdown` stops accepting
connections, then drains the engine queue so every accepted predict
request is answered before the process exits (the CLI wires this to
SIGTERM/SIGINT).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.obs.metrics import counter, histogram
from repro.obs.summary import render_prometheus
from repro.obs.trace import span as obs_span
from repro.serve.engine import BatchConfig, PredictionEngine
from repro.serve.registry import (
    CorruptArtifact,
    ModelNotFound,
    ModelRegistry,
    RegistryError,
)

__all__ = ["ApiError", "ModelServer", "DEFAULT_MAX_BODY_BYTES"]

DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

_HTTP_REQUESTS = counter("serve.http.requests")
_HTTP_2XX = counter("serve.http.responses_2xx")
_HTTP_4XX = counter("serve.http.responses_4xx")
_HTTP_5XX = counter("serve.http.responses_5xx")
_HTTP_LATENCY = histogram("serve.http.latency_s")
_PREDICTIONS = counter("serve.http.predictions")


class ApiError(Exception):
    """A structured, client-visible failure."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


def _instances_to_matrix(
    body: Dict[str, Any], feature_names: Tuple[str, ...]
) -> np.ndarray:
    """Decode the ``instances`` field into a (n, n_features) matrix.

    Rows may be arrays (schema order) or objects keyed by event name;
    object rows must cover the schema exactly — a misspelled event is a
    400, not a silently-zeroed column.
    """
    instances = body.get("instances")
    if not isinstance(instances, list) or not instances:
        raise ApiError(
            400, "invalid_instances", "'instances' must be a non-empty list"
        )
    rows = []
    index = {name: i for i, name in enumerate(feature_names)}
    for row_number, row in enumerate(instances):
        if isinstance(row, dict):
            unknown = sorted(set(row) - set(index))
            missing = sorted(set(index) - set(row))
            if unknown or missing:
                raise ApiError(
                    400,
                    "invalid_instances",
                    f"instances[{row_number}]: unknown events {unknown}, "
                    f"missing events {missing}",
                )
            rows.append([row[name] for name in feature_names])
        elif isinstance(row, list):
            if len(row) != len(feature_names):
                raise ApiError(
                    400,
                    "invalid_instances",
                    f"instances[{row_number}] has {len(row)} value(s); "
                    f"the model expects {len(feature_names)}",
                )
            rows.append(row)
        else:
            raise ApiError(
                400,
                "invalid_instances",
                f"instances[{row_number}] must be an array or an object",
            )
    try:
        return np.asarray(rows, dtype=float)
    except (TypeError, ValueError) as error:
        raise ApiError(
            400, "invalid_instances", f"non-numeric instance value: {error}"
        ) from None


def _decode_actuals(
    body: Dict[str, Any], n_rows: int
) -> Optional[np.ndarray]:
    """Decode the optional ``actuals`` field (null = unlabelled row)."""
    actuals = body.get("actuals")
    if actuals is None:
        return None
    if not isinstance(actuals, list) or len(actuals) != n_rows:
        raise ApiError(
            400,
            "invalid_actuals",
            f"'actuals' must be a list of {n_rows} value(s) "
            "(null for unlabelled rows)",
        )
    decoded = np.empty(n_rows, dtype=float)
    for i, value in enumerate(actuals):
        if value is None:
            decoded[i] = np.nan
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            decoded[i] = float(value)
        else:
            raise ApiError(
                400,
                "invalid_actuals",
                f"actuals[{i}] must be a number or null, got {value!r}",
            )
    return decoded


class _Handler(BaseHTTPRequestHandler):
    """Dispatches one request; all state lives on ``self.server``."""

    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        # Access logging is the metrics registry's job; stderr stays
        # quiet so the CLI and tests are readable.
        pass

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, Any]:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise ApiError(
                411, "length_required", "Content-Length header is required"
            )
        try:
            length = int(length_header)
        except ValueError:
            raise ApiError(
                400, "invalid_length", "Content-Length is not an integer"
            ) from None
        if length > self.server.max_body_bytes:
            raise ApiError(
                413,
                "body_too_large",
                f"request body of {length} bytes exceeds the "
                f"{self.server.max_body_bytes}-byte limit",
            )
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ApiError(
                400, "invalid_json", f"request body is not valid JSON: {error}"
            ) from None
        if not isinstance(body, dict):
            raise ApiError(
                400, "invalid_json", "request body must be a JSON object"
            )
        return body

    # -- dispatch --------------------------------------------------------

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        start = time.perf_counter()
        with self.server.stats_lock:
            _HTTP_REQUESTS.inc()
        status = 500
        try:
            with obs_span("serve.http", method=method, path=self.path):
                status = self._route(method)
        except ApiError as error:
            status = error.status
            self._send_json(
                error.status,
                {"error": {"code": error.code, "message": error.message}},
            )
        except ModelNotFound as error:
            status = 404
            self._send_json(
                404, {"error": {"code": "model_not_found", "message": str(error)}}
            )
        except CorruptArtifact as error:
            status = 500
            self._send_json(
                500,
                {"error": {"code": "corrupt_artifact", "message": str(error)}},
            )
        except ValueError as error:
            # The hardened ModelTree.predict boundary surfaces here.
            status = 400
            self._send_json(
                400, {"error": {"code": "invalid_input", "message": str(error)}}
            )
        except (BrokenPipeError, ConnectionResetError):
            status = 499  # client went away; nothing to send
        except Exception as error:  # pragma: no cover - defensive
            status = 500
            self._send_json(
                500, {"error": {"code": "internal", "message": str(error)}}
            )
        finally:
            with self.server.stats_lock:
                _HTTP_LATENCY.observe(time.perf_counter() - start)
                if 200 <= status < 300:
                    _HTTP_2XX.inc()
                elif 400 <= status < 500:
                    _HTTP_4XX.inc()
                else:
                    _HTTP_5XX.inc()

    def _route(self, method: str) -> int:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]

        if path == "/healthz" and method == "GET":
            self._send_json(
                200,
                {
                    "status": "ok",
                    "models": len(self.server.registry),
                    "engine_running": self.server.engine.running,
                },
            )
            return 200
        if path == "/metrics" and method == "GET":
            from repro.obs.metrics import get_registry

            self._send_text(
                200,
                render_prometheus(get_registry().as_records()),
                "text/plain; version=0.0.4",
            )
            return 200
        if parts[:2] == ["v1", "models"]:
            return self._route_models(method, parts[2:])
        raise ApiError(404, "not_found", f"no route for {method} {path}")

    def _route_models(self, method: str, rest: list) -> int:
        registry = self.server.registry
        engine = self.server.engine
        if not rest:
            if method != "GET":
                raise ApiError(405, "method_not_allowed", "use GET")
            self._send_json(
                200,
                {
                    "models": [r.as_dict() for r in registry.list_records()],
                    "aliases": registry.aliases(),
                },
            )
            return 200
        ref = rest[0]
        if len(rest) == 1:
            if method != "GET":
                raise ApiError(405, "method_not_allowed", "use GET")
            self._send_json(200, registry.record(ref).as_dict())
            return 200
        action = rest[1]
        if action == "predict" and len(rest) == 2:
            if method != "POST":
                raise ApiError(405, "method_not_allowed", "use POST")
            return self._predict(ref)
        if action == "profile" and len(rest) == 2:
            if method == "GET":
                self._send_json(200, engine.profile(ref))
                return 200
            if method == "POST":
                # Profile *submitted* rows through the model (Eq. 4).
                body = self._read_body()
                record, tree = registry.load(ref)
                X = _instances_to_matrix(body, record.feature_names)
                self._send_json(200, engine.profile_inputs(ref, X))
                return 200
            raise ApiError(405, "method_not_allowed", "use GET or POST")
        if action == "compare" and len(rest) == 3:
            if method != "GET":
                raise ApiError(405, "method_not_allowed", "use GET")
            self._send_json(200, engine.compare(ref, rest[2]))
            return 200
        if action == "drift" and len(rest) == 2:
            if method != "GET":
                raise ApiError(405, "method_not_allowed", "use GET")
            drift = self.server.drift
            if drift is None:
                self._send_json(
                    200,
                    {
                        "monitoring": False,
                        "model_id": registry.resolve(ref),
                    },
                )
                return 200
            payload = drift.report(ref)
            payload["monitoring"] = True
            self._send_json(200, payload)
            return 200
        raise ApiError(
            404, "not_found", f"no route for {method} {self.path}"
        )

    def _predict(self, ref: str) -> int:
        body = self._read_body()
        record = self.server.registry.record(ref)
        X = _instances_to_matrix(body, record.feature_names)
        smooth = body.get("smooth")
        if smooth is not None and not isinstance(smooth, bool):
            raise ApiError(400, "invalid_smooth", "'smooth' must be a boolean")
        actuals = _decode_actuals(body, X.shape[0])
        predictions = self.server.engine.predict(
            ref, X, smooth=smooth, actuals=actuals
        )
        with self.server.stats_lock:
            _PREDICTIONS.inc(X.shape[0])
        self._send_json(
            200,
            {
                "model_id": record.model_id,
                "n": int(X.shape[0]),
                "predictions": predictions.tolist(),
            },
        )
        return 200


class ModelServer:
    """The serving process: registry + engine + threaded HTTP front end.

    ``port=0`` binds an ephemeral port (read :attr:`address` after
    construction) — the self-test and the test suite rely on this.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        host: str = "127.0.0.1",
        port: int = 8080,
        batch: Optional[BatchConfig] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        monitor: bool = True,
        shadow: Optional[str] = None,
        shadow_champion: str = "latest",
        audit_path: Optional[str] = None,
        drift: Optional[Any] = None,
    ) -> None:
        """Drift monitoring is on by default (``monitor=False`` turns it
        off); ``shadow`` names a challenger model evaluated against the
        ``shadow_champion`` ref on the champion's live traffic, and
        ``audit_path`` appends every drift evaluation as JSONL.  Pass a
        pre-built hub via ``drift`` to control everything else.
        """
        self.registry = registry
        if drift is None and monitor:
            from repro.drift.hub import DriftHub
            from repro.drift.monitor import JsonlAudit, LogSink

            actions = [LogSink()]
            if audit_path is not None:
                actions.append(JsonlAudit(audit_path))
            drift = DriftHub(
                registry,
                actions=actions,
                shadow=(
                    (shadow_champion, shadow) if shadow is not None else None
                ),
            )
        self.drift = drift
        self.engine = PredictionEngine(registry, batch=batch, drift=drift)
        self.max_body_bytes = max_body_bytes
        self.stats_lock = threading.Lock()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        # Handlers reach everything through self.server.<attr>.
        self._httpd.registry = self.registry  # type: ignore[attr-defined]
        self._httpd.engine = self.engine  # type: ignore[attr-defined]
        self._httpd.drift = drift  # type: ignore[attr-defined]
        self._httpd.max_body_bytes = max_body_bytes  # type: ignore[attr-defined]
        self._httpd.stats_lock = self.stats_lock  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) actually bound — port is resolved for port=0."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ModelServer":
        """Serve on a background thread (tests, benchmarks)."""
        self.engine.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (the CLI)."""
        self.engine.start()
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop accepting, drain queued predictions, release the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        self.engine.stop()
        if self._thread is not None:
            self._thread.join(10.0)
            self._thread = None

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
