"""Threaded HTTP/JSON API over the registry and prediction engine.

Stdlib only (:mod:`http.server`): each connection is handled on its own
thread by ``ThreadingHTTPServer`` while all predictions funnel through
the engine's single batching worker — many slow clients, one fast
vectorized compute path.

Routes (see ``docs/SERVING.md`` for the full reference)::

    GET  /healthz                          liveness + model count + build
    GET  /metrics                          Prometheus text exposition
    GET  /v1/status                        one-document serving status
    GET  /v1/pipeline                      MLOps loop state + promotion trail
    GET  /v1/profile/cpu                   on-demand sampling CPU profile
    GET  /dashboard                        self-refreshing HTML status page
    GET  /v1/models                        list published records
    GET  /v1/models/{ref}                  one record (id or alias)
    GET  /v1/models/{ref}/profile          leaf models, equations, shares
    GET  /v1/models/{ref}/compare/{ref2}   structural tree comparison
    GET  /v1/models/{ref}/drift            online transferability verdict
    POST /v1/models/{ref}/predict          micro-batched CPI prediction

A predict body may carry ``"actuals"`` — observed CPI values (one per
instance, ``null`` = unlabelled) that feed the drift monitor without
affecting the returned predictions.

Every response echoes a trace ID in the ``X-Repro-Trace`` header: a
well-formed client-supplied ID verbatim, otherwise a server-generated
one.  When the server is constructed with ``events_path``, each
request additionally records a stage timeline (decode, validate,
queue_wait, batch_assembly, kernel, respond, drift_observe) into the
rotating JSONL event log, reconstructable per trace ID with
``repro.obs.load_trace``; without an event log the only telemetry
cost is the header echo.

Errors are structured JSON — ``{"error": {"code", "message"}}`` — with
conventional status codes: 400 malformed body/shape, 404 unknown model
or route, 405 wrong method, 413 oversized body, 500 integrity or
internal failures.  Bodies above ``max_body_bytes`` are rejected
before being read into memory (and counted on
``serve.http.rejected_oversized``).

Shutdown is graceful: :meth:`ModelServer.shutdown` stops accepting
connections, then drains the engine queue so every accepted predict
request is answered before the process exits (the CLI wires this to
SIGTERM/SIGINT).
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from collections import deque
from contextlib import nullcontext
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.obs.events import EventLog
from repro.obs.manifest import build_info
from repro.obs.metrics import counter, histogram, summary
from repro.obs.prof import (
    DEFAULT_HZ,
    MAX_HZ,
    Profile,
    SamplingProfiler,
    render_flamegraph_html,
)
from repro.obs.slo import SloConfig, SloTracker
from repro.obs.summary import render_prometheus
from repro.obs.telemetry import TRACE_HEADER, RequestTrace, normalize_trace_id
from repro.obs.trace import span as obs_span
from repro.serve.engine import BatchConfig, PredictionEngine
from repro.serve.registry import (
    CorruptArtifact,
    ModelNotFound,
    ModelRegistry,
    RegistryError,
)
from repro.serve.status import build_status_document, render_dashboard_html

__all__ = [
    "ApiError",
    "ModelServer",
    "DEFAULT_MAX_BODY_BYTES",
    "REPLICA_HEADER",
]

DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

#: Which cluster replica answered — absent on single-process servers.
REPLICA_HEADER = "X-Repro-Replica"

_HTTP_REQUESTS = counter("serve.http.requests")
_HTTP_2XX = counter("serve.http.responses_2xx")
_HTTP_4XX = counter("serve.http.responses_4xx")
_HTTP_5XX = counter("serve.http.responses_5xx")
_HTTP_LATENCY = histogram("serve.http.latency_s")
_PREDICTIONS = counter("serve.http.predictions")
_REJECTED_OVERSIZED = counter("serve.http.rejected_oversized")

#: How many recent request latencies the dashboard sparkline shows.
_RECENT_LATENCY_WINDOW = 120


def _endpoint_label(path: str) -> str:
    """Collapse a request path to a bounded-cardinality endpoint label.

    Model refs are folded into ``{ref}`` so the per-endpoint latency
    summaries cannot grow one instrument per model alias; unknown
    paths share a single ``other`` label.
    """
    path = path.split("?", 1)[0].rstrip("/") or "/"
    if path in (
        "/healthz",
        "/metrics",
        "/dashboard",
        "/v1/status",
        "/v1/pipeline",
        "/v1/profile/cpu",
    ):
        return path
    parts = [p for p in path.split("/") if p]
    if parts[:2] == ["v1", "models"]:
        rest = parts[2:]
        if not rest:
            return "/v1/models"
        if len(rest) == 1:
            return "/v1/models/{ref}"
        if len(rest) == 2 and rest[1] in ("predict", "profile", "drift"):
            return f"/v1/models/{{ref}}/{rest[1]}"
        if len(rest) == 3 and rest[1] == "compare":
            return "/v1/models/{ref}/compare/{ref}"
    return "other"


class ApiError(Exception):
    """A structured, client-visible failure."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


#: Default and ceiling for one on-demand profile capture.
_PROFILE_DEFAULT_SECONDS = 2.0
_PROFILE_MAX_SECONDS = 60.0
#: How many distinct stacks of the last profile the status document
#: retains (the dashboard flame graph reads them; unbounded stacks
#: would bloat every /v1/status response).
_PROFILE_STATUS_STACKS = 60

_PROFILE_CAPTURES = counter("serve.http.profile_captures")
_PROFILE_BUSY = counter("serve.http.profile_busy")


class _ProfilerState:
    """Serializes on-demand CPU captures; keeps the latest profile.

    One capture at a time process-wide: two overlapping samplers would
    each halve the other's throughput measurement and both profiles
    would include the other's sampling cost.  The loser gets a 409,
    not a queue — a profile request is interactive diagnostics, and a
    stale queued capture is worse than an immediate "busy, retry".
    """

    def __init__(self) -> None:
        self._gate = threading.Lock()  # held for the whole capture
        self._mutex = threading.Lock()  # guards the fields below
        self._busy = False
        self._captures = 0
        self._last: Optional[Dict[str, Any]] = None

    def capture(self, seconds: float, hz: int) -> Profile:
        if not self._gate.acquire(blocking=False):
            _PROFILE_BUSY.inc()
            raise ApiError(
                409,
                "profile_in_progress",
                "another CPU profile capture is running; retry shortly",
            )
        try:
            with self._mutex:
                self._busy = True
            profiler = SamplingProfiler(hz=hz)
            profiler.start()
            # Event.wait, not time.sleep: sleep is a C builtin, so the
            # sampler would see this thread as busy in `capture`;
            # Event.wait parks in threading:wait, a known waitpoint.
            threading.Event().wait(seconds)
            profile = profiler.stop()
            with self._mutex:
                self._busy = False
                self._captures += 1
                self._last = self._capped(profile.as_dict())
            _PROFILE_CAPTURES.inc()
            return profile
        finally:
            with self._mutex:
                self._busy = False
            self._gate.release()

    @staticmethod
    def _capped(payload: Dict[str, Any]) -> Dict[str, Any]:
        stacks = sorted(
            payload.get("stacks", []),
            key=lambda record: -int(record.get("count", 0)),
        )[:_PROFILE_STATUS_STACKS]
        return {**payload, "stacks": stacks, "idle": []}

    def report(self) -> Dict[str, Any]:
        """The ``profiler`` section of the status document."""
        with self._mutex:
            return {
                "available": True,
                "busy": self._busy,
                "captures": self._captures,
                "last": self._last,
            }


def _instances_to_matrix(
    body: Dict[str, Any], feature_names: Tuple[str, ...]
) -> np.ndarray:
    """Decode the ``instances`` field into a (n, n_features) matrix.

    Rows may be arrays (schema order) or objects keyed by event name;
    object rows must cover the schema exactly — a misspelled event is a
    400, not a silently-zeroed column.
    """
    instances = body.get("instances")
    if not isinstance(instances, list) or not instances:
        raise ApiError(
            400, "invalid_instances", "'instances' must be a non-empty list"
        )
    rows = []
    index = {name: i for i, name in enumerate(feature_names)}
    for row_number, row in enumerate(instances):
        if isinstance(row, dict):
            unknown = sorted(set(row) - set(index))
            missing = sorted(set(index) - set(row))
            if unknown or missing:
                raise ApiError(
                    400,
                    "invalid_instances",
                    f"instances[{row_number}]: unknown events {unknown}, "
                    f"missing events {missing}",
                )
            rows.append([row[name] for name in feature_names])
        elif isinstance(row, list):
            if len(row) != len(feature_names):
                raise ApiError(
                    400,
                    "invalid_instances",
                    f"instances[{row_number}] has {len(row)} value(s); "
                    f"the model expects {len(feature_names)}",
                )
            rows.append(row)
        else:
            raise ApiError(
                400,
                "invalid_instances",
                f"instances[{row_number}] must be an array or an object",
            )
    try:
        return np.asarray(rows, dtype=float)
    except (TypeError, ValueError) as error:
        raise ApiError(
            400, "invalid_instances", f"non-numeric instance value: {error}"
        ) from None


def _decode_actuals(
    body: Dict[str, Any], n_rows: int
) -> Optional[np.ndarray]:
    """Decode the optional ``actuals`` field (null = unlabelled row)."""
    actuals = body.get("actuals")
    if actuals is None:
        return None
    if not isinstance(actuals, list) or len(actuals) != n_rows:
        raise ApiError(
            400,
            "invalid_actuals",
            f"'actuals' must be a list of {n_rows} value(s) "
            "(null for unlabelled rows)",
        )
    decoded = np.empty(n_rows, dtype=float)
    for i, value in enumerate(actuals):
        if value is None:
            decoded[i] = np.nan
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            decoded[i] = float(value)
        else:
            raise ApiError(
                400,
                "invalid_actuals",
                f"actuals[{i}] must be a number or null, got {value!r}",
            )
    return decoded


class _Handler(BaseHTTPRequestHandler):
    """Dispatches one request; all state lives on ``self.server``."""

    protocol_version = "HTTP/1.1"

    #: Per-request telemetry state, reset by :meth:`_dispatch`.
    _trace_id: Optional[str] = None
    _trace: Optional[RequestTrace] = None

    # -- plumbing --------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        # Access logging is the metrics registry's job; stderr stays
        # quiet so the CLI and tests are readable.
        pass

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self._trace_id is not None:
            self.send_header(TRACE_HEADER, self._trace_id)
        if self.server.replica is not None:
            self.send_header(REPLICA_HEADER, str(self.server.replica["index"]))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._trace_id is not None:
            self.send_header(TRACE_HEADER, self._trace_id)
        if self.server.replica is not None:
            self.send_header(REPLICA_HEADER, str(self.server.replica["index"]))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, Any]:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise ApiError(
                411, "length_required", "Content-Length header is required"
            )
        try:
            length = int(length_header)
        except ValueError:
            raise ApiError(
                400, "invalid_length", "Content-Length is not an integer"
            ) from None
        if length > self.server.max_body_bytes:
            _REJECTED_OVERSIZED.inc()
            raise ApiError(
                413,
                "body_too_large",
                f"request body of {length} bytes exceeds the "
                f"{self.server.max_body_bytes}-byte limit",
            )
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ApiError(
                400, "invalid_json", f"request body is not valid JSON: {error}"
            ) from None
        if not isinstance(body, dict):
            raise ApiError(
                400, "invalid_json", "request body must be a JSON object"
            )
        return body

    # -- dispatch --------------------------------------------------------

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        start = time.perf_counter()
        self._trace_id = normalize_trace_id(self.headers.get(TRACE_HEADER))
        self._trace = (
            RequestTrace(
                self._trace_id, sink=self.server.telemetry, t0=start
            )
            if self.server.telemetry is not None
            else None
        )
        endpoint = _endpoint_label(self.path)
        with self.server.stats_lock:
            _HTTP_REQUESTS.inc()
        status = 500
        try:
            with obs_span("serve.http", method=method, path=self.path):
                status = self._route(method)
        except ApiError as error:
            status = error.status
            self._send_json(
                error.status,
                {
                    "error": {"code": error.code, "message": error.message},
                    "trace": self._trace_id,
                },
            )
        except ModelNotFound as error:
            status = 404
            self._send_json(
                404,
                {
                    "error": {
                        "code": "model_not_found",
                        "message": str(error),
                    },
                    "trace": self._trace_id,
                },
            )
        except CorruptArtifact as error:
            status = 500
            self._send_json(
                500,
                {
                    "error": {
                        "code": "corrupt_artifact",
                        "message": str(error),
                    },
                    "trace": self._trace_id,
                },
            )
        except ValueError as error:
            # The hardened ModelTree.predict boundary surfaces here.
            status = 400
            self._send_json(
                400,
                {
                    "error": {"code": "invalid_input", "message": str(error)},
                    "trace": self._trace_id,
                },
            )
        except (BrokenPipeError, ConnectionResetError):
            status = 499  # client went away; nothing to send
        except Exception as error:  # pragma: no cover - defensive
            status = 500
            self._send_json(
                500,
                {
                    "error": {"code": "internal", "message": str(error)},
                    "trace": self._trace_id,
                },
            )
        finally:
            duration = time.perf_counter() - start
            with self.server.stats_lock:
                _HTTP_LATENCY.observe(duration)
                if 200 <= status < 300:
                    _HTTP_2XX.inc()
                elif 400 <= status < 500:
                    _HTTP_4XX.inc()
                else:
                    _HTTP_5XX.inc()
                summary(
                    "serve.http.request_latency_s",
                    labels={"endpoint": endpoint},
                ).observe(duration)
                self.server.recent_latency.append(duration)
            self.server.slo.record(duration, status)
            if self._trace is not None:
                self._trace.emit(
                    "http",
                    method=method,
                    path=self.path,
                    endpoint=endpoint,
                    status=status,
                    duration_s=duration,
                )

    def _route(self, method: str) -> int:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]

        if path == "/healthz" and method == "GET":
            payload = {
                "status": "ok",
                "models": len(self.server.registry),
                "engine_running": self.server.engine.running,
                "build": build_info(),
            }
            if self.server.replica is not None:
                payload["replica"] = self.server.replica
            self._send_json(200, payload)
            return 200
        if path == "/metrics" and method == "GET":
            from repro.obs.metrics import get_registry

            self._send_text(
                200,
                render_prometheus(get_registry().as_records()),
                "text/plain; version=0.0.4",
            )
            return 200
        if path == "/v1/status" and method == "GET":
            self._send_json(200, self._status_document())
            return 200
        if path == "/v1/pipeline" and method == "GET":
            pipeline = self.server.pipeline
            if pipeline is None:
                self._send_json(200, {"armed": False})
                return 200
            self._send_json(200, pipeline.report())
            return 200
        if path == "/v1/profile/cpu":
            if method != "GET":
                raise ApiError(405, "method_not_allowed", "use GET")
            return self._profile_cpu()
        if path == "/dashboard" and method == "GET":
            self._send_text(
                200,
                render_dashboard_html(self._status_document()),
                "text/html; charset=utf-8",
            )
            return 200
        if parts[:2] == ["v1", "models"]:
            return self._route_models(method, parts[2:])
        raise ApiError(404, "not_found", f"no route for {method} {path}")

    def _status_document(self) -> Dict[str, Any]:
        with self.server.stats_lock:
            recent = list(self.server.recent_latency)
        return build_status_document(
            self.server.registry,
            self.server.engine,
            drift=self.server.drift,
            slo=self.server.slo,
            events=self.server.telemetry,
            recent_latency_s=recent,
            started_unix=self.server.started_unix,
            pipeline=self.server.pipeline,
            profiler=self.server.profiler,
            replica=self.server.replica,
        )

    def _profile_cpu(self) -> int:
        """``GET /v1/profile/cpu?seconds=N&hz=M&format=F``.

        The handler thread sleeps for the capture window while the
        sampler (its own daemon thread) observes the whole process —
        other requests proceed normally and are what the profile sees.
        """
        query = parse_qs(urlsplit(self.path).query)

        def _param(name: str, default: float, cast) -> Any:
            raw = query.get(name, [None])[-1]
            if raw is None:
                return default
            try:
                return cast(raw)
            except (TypeError, ValueError):
                raise ApiError(
                    400,
                    "invalid_parameter",
                    f"'{name}' must be a number, got {raw!r}",
                ) from None

        seconds = _param("seconds", _PROFILE_DEFAULT_SECONDS, float)
        hz = _param("hz", float(DEFAULT_HZ), float)
        if not 0.0 < seconds <= _PROFILE_MAX_SECONDS:
            raise ApiError(
                400,
                "invalid_parameter",
                f"'seconds' must be in (0, {_PROFILE_MAX_SECONDS:g}], "
                f"got {seconds:g}",
            )
        if not 1 <= hz <= MAX_HZ:
            raise ApiError(
                400,
                "invalid_parameter",
                f"'hz' must be in [1, {MAX_HZ}], got {hz:g}",
            )
        fmt = query.get("format", ["json"])[-1]
        if fmt not in ("json", "collapsed", "html"):
            raise ApiError(
                400,
                "invalid_parameter",
                f"'format' must be json, collapsed or html, got {fmt!r}",
            )
        profile = self.server.profiler.capture(seconds, int(hz))
        if fmt == "collapsed":
            self._send_text(
                200, profile.folded(), "text/plain; charset=utf-8"
            )
        elif fmt == "html":
            self._send_text(
                200,
                render_flamegraph_html(profile, title="serving CPU profile"),
                "text/html; charset=utf-8",
            )
        else:
            self._send_json(200, profile.as_dict())
        return 200

    def _route_models(self, method: str, rest: list) -> int:
        registry = self.server.registry
        engine = self.server.engine
        if not rest:
            if method != "GET":
                raise ApiError(405, "method_not_allowed", "use GET")
            self._send_json(
                200,
                {
                    "models": [r.as_dict() for r in registry.list_records()],
                    "aliases": registry.aliases(),
                },
            )
            return 200
        ref = rest[0]
        if len(rest) == 1:
            if method != "GET":
                raise ApiError(405, "method_not_allowed", "use GET")
            self._send_json(200, registry.record(ref).as_dict())
            return 200
        action = rest[1]
        if action == "predict" and len(rest) == 2:
            if method != "POST":
                raise ApiError(405, "method_not_allowed", "use POST")
            return self._predict(ref)
        if action == "profile" and len(rest) == 2:
            if method == "GET":
                self._send_json(200, engine.profile(ref))
                return 200
            if method == "POST":
                # Profile *submitted* rows through the model (Eq. 4).
                body = self._read_body()
                record, tree = registry.load(ref)
                X = _instances_to_matrix(body, record.feature_names)
                self._send_json(200, engine.profile_inputs(ref, X))
                return 200
            raise ApiError(405, "method_not_allowed", "use GET or POST")
        if action == "compare" and len(rest) == 3:
            if method != "GET":
                raise ApiError(405, "method_not_allowed", "use GET")
            self._send_json(200, engine.compare(ref, rest[2]))
            return 200
        if action == "drift" and len(rest) == 2:
            if method != "GET":
                raise ApiError(405, "method_not_allowed", "use GET")
            drift = self.server.drift
            if drift is None:
                self._send_json(
                    200,
                    {
                        "monitoring": False,
                        "model_id": registry.resolve(ref),
                    },
                )
                return 200
            payload = drift.report(ref)
            payload["monitoring"] = True
            self._send_json(200, payload)
            return 200
        raise ApiError(
            404, "not_found", f"no route for {method} {self.path}"
        )

    def _predict(self, ref: str) -> int:
        trace = self._trace
        with trace.stage("decode") if trace else nullcontext():
            body = self._read_body()
            record = self.server.registry.record(ref)
            X = _instances_to_matrix(body, record.feature_names)
            smooth = body.get("smooth")
            if smooth is not None and not isinstance(smooth, bool):
                raise ApiError(
                    400, "invalid_smooth", "'smooth' must be a boolean"
                )
            actuals = _decode_actuals(body, X.shape[0])
        t_predict = time.perf_counter()
        predictions = self.server.engine.predict(
            ref, X, smooth=smooth, actuals=actuals, trace=trace
        )
        predict_s = time.perf_counter() - t_predict
        with self.server.stats_lock:
            _PREDICTIONS.inc(X.shape[0])
            summary(
                "serve.predict.latency_s",
                labels={"model": record.model_id},
            ).observe(predict_s)
        with trace.stage("respond") if trace else nullcontext():
            self._send_json(
                200,
                {
                    "model_id": record.model_id,
                    "n": int(X.shape[0]),
                    "predictions": predictions.tolist(),
                    "trace": self._trace_id,
                },
            )
        return 200


class ModelServer:
    """The serving process: registry + engine + threaded HTTP front end.

    ``port=0`` binds an ephemeral port (read :attr:`address` after
    construction) — the self-test and the test suite rely on this.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        host: str = "127.0.0.1",
        port: int = 8080,
        batch: Optional[BatchConfig] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        monitor: bool = True,
        shadow: Optional[str] = None,
        shadow_champion: str = "latest",
        audit_path: Optional[str] = None,
        drift: Optional[Any] = None,
        events_path: Optional[str] = None,
        events_per_pid: bool = False,
        slo: Optional[SloConfig] = None,
        pipeline: Any = False,
        reuse_port: bool = False,
        listen_socket: Optional[socket.socket] = None,
        replica: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Drift monitoring is on by default (``monitor=False`` turns it
        off); ``shadow`` names a challenger model evaluated against the
        ``shadow_champion`` ref on the champion's live traffic, and
        ``audit_path`` appends every drift evaluation as JSONL.  Pass a
        pre-built hub via ``drift`` to control everything else.

        ``events_path`` enables request telemetry: every request's
        stage timeline is appended to that rotating JSONL event log
        (omit it and requests carry only the trace-ID header).  ``slo``
        overrides the default :class:`~repro.obs.slo.SloConfig`
        targets; SLO tracking itself is always on.

        ``pipeline=True`` arms the MLOps loop: a
        :class:`~repro.pipeline.orchestrator.PipelineOrchestrator` is
        attached to the drift hub (monitoring must be on) so a
        ``transfer_failed`` verdict automatically retrains, shadows
        and promotes.  Pass a pre-built orchestrator instead to
        control its configuration.

        The last four parameters exist for :mod:`repro.cluster`:
        ``reuse_port`` sets ``SO_REUSEPORT`` before binding so N
        sibling processes can share one host:port (the kernel
        load-balances accepts); ``listen_socket`` skips bind/listen
        entirely and serves on an already-listening socket the
        supervisor created before forking (the ``SO_REUSEPORT``-less
        fallback — the server takes ownership and closes it on
        shutdown); ``replica`` (``{"index", "pid", "leader"}``) tags
        every response with an ``X-Repro-Replica`` header and shows up
        in ``/healthz`` and ``/v1/status``; ``events_per_pid`` gives
        the event log a per-PID filename so sibling workers sharing
        ``events_path`` never interleave writes.
        """
        self.registry = registry
        if drift is None and monitor:
            from repro.drift.hub import DriftHub
            from repro.drift.monitor import JsonlAudit, LogSink

            actions = [LogSink()]
            if audit_path is not None:
                actions.append(JsonlAudit(audit_path))
            drift = DriftHub(
                registry,
                actions=actions,
                shadow=(
                    (shadow_champion, shadow) if shadow is not None else None
                ),
            )
        self.drift = drift
        self.engine = PredictionEngine(registry, batch=batch, drift=drift)
        self.max_body_bytes = max_body_bytes
        self.stats_lock = threading.Lock()
        self.telemetry = (
            EventLog(events_path, per_pid=events_per_pid)
            if events_path is not None
            else None
        )
        self.slo = SloTracker(slo or SloConfig())
        self.recent_latency: "deque" = deque(maxlen=_RECENT_LATENCY_WINDOW)
        self.started_unix = time.time()
        if pipeline is True:
            if drift is None:
                raise ValueError(
                    "pipeline=True requires drift monitoring "
                    "(construct with monitor=True or pass a hub)"
                )
            from repro.pipeline.orchestrator import PipelineOrchestrator

            pipeline = PipelineOrchestrator(
                registry, drift, events=self.telemetry
            )
        self.pipeline = pipeline if pipeline is not False else None
        self.profiler = _ProfilerState()
        if replica is not None:
            replica = {**replica, "pid": os.getpid()}
        self.replica = replica
        if listen_socket is not None:
            # Serve on a socket someone else bound (cluster fallback
            # mode: the supervisor listens once, children inherit).
            self._httpd = ThreadingHTTPServer(
                (host, port), _Handler, bind_and_activate=False
            )
            self._httpd.socket.close()  # the unbound one it just made
            self._httpd.socket = listen_socket
            bound_host, bound_port = listen_socket.getsockname()[:2]
            self._httpd.server_address = (bound_host, bound_port)
            self._httpd.server_name = bound_host
            self._httpd.server_port = bound_port
        elif reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover
                raise OSError("SO_REUSEPORT is not available on this platform")
            self._httpd = ThreadingHTTPServer(
                (host, port), _Handler, bind_and_activate=False
            )
            self._httpd.socket.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
            self._httpd.server_bind()
            self._httpd.server_activate()
        else:
            self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        # Handlers reach everything through self.server.<attr>.
        self._httpd.registry = self.registry  # type: ignore[attr-defined]
        self._httpd.engine = self.engine  # type: ignore[attr-defined]
        self._httpd.drift = drift  # type: ignore[attr-defined]
        self._httpd.max_body_bytes = max_body_bytes  # type: ignore[attr-defined]
        self._httpd.stats_lock = self.stats_lock  # type: ignore[attr-defined]
        self._httpd.telemetry = self.telemetry  # type: ignore[attr-defined]
        self._httpd.slo = self.slo  # type: ignore[attr-defined]
        self._httpd.recent_latency = self.recent_latency  # type: ignore[attr-defined]
        self._httpd.started_unix = self.started_unix  # type: ignore[attr-defined]
        self._httpd.pipeline = self.pipeline  # type: ignore[attr-defined]
        self._httpd.profiler = self.profiler  # type: ignore[attr-defined]
        self._httpd.replica = self.replica  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) actually bound — port is resolved for port=0."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ModelServer":
        """Serve on a background thread (tests, benchmarks)."""
        self.engine.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (the CLI)."""
        self.engine.start()
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop accepting, drain queued predictions, release the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        self.engine.stop()
        if self.telemetry is not None:
            # After the engine drain: the last batch's records are in.
            self.telemetry.close()
        if self._thread is not None:
            self._thread.join(10.0)
            self._thread = None

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
