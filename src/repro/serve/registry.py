"""Versioned, content-addressed on-disk store of trained model trees.

A *published* model is the pair (artifact, metadata): the artifact is
the canonical JSON encoding of :func:`repro.mtree.serialize.tree_to_dict`
and the model id is a prefix of its SHA-256 — publishing the same tree
twice (from any process) lands on the same id with byte-identical
files, so concurrent publishes race benignly the same way
:class:`repro.datasets.cache.SampleSetCache` entries do.  Metadata
records provenance (suite, seed, training configuration, the run
manifest) plus the artifact hash, which :meth:`ModelRegistry.load`
re-verifies on every read from disk: a flipped bit fails loudly as
:class:`CorruptArtifact` instead of silently mispredicting.

Layout under the registry root::

    models/<model_id>/artifact.json   # canonical tree payload (hashed)
    models/<model_id>/meta.json       # ModelRecord incl. artifact_sha256
    aliases/<name>                    # text file holding a model id
    alias_history/<name>.jsonl        # one record per move_alias/drop_alias

All writes go through a temp file and ``os.replace`` (atomic on POSIX),
and ``meta.json`` is written *after* the artifact, so a record is
visible only once its artifact is complete.  Mutable names ("latest")
live in ``aliases/`` and are re-pointed atomically the same way.

Alias *moves* — the operation the promotion pipeline builds on — go
through :meth:`ModelRegistry.move_alias`, which serializes racing
movers on one per-registry lock so the (read prior, re-point, record
history) triple is atomic: two concurrent flips land in some order,
exactly one wins the final pointer, each history entry's ``from``
equals the previous entry's ``to``, and a reader can never observe a
dangling or empty alias because the pointer itself is still one
``os.replace``.

Deserialized trees are kept in a bounded in-process LRU so a serving
process pays JSON parsing once per model, not once per request.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.mtree.serialize import tree_from_dict, tree_to_dict
from repro.mtree.tree import ModelTree
from repro.obs.metrics import counter

__all__ = [
    "RegistryError",
    "ModelNotFound",
    "CorruptArtifact",
    "ModelRecord",
    "ModelRegistry",
    "ALIAS_HISTORY_SCHEMA",
]

#: Process-wide registry traffic (summed over every ModelRegistry).
_PUBLISHES = counter("serve.registry.publishes")
_LOADS = counter("serve.registry.loads")
_CACHE_HITS = counter("serve.registry.cache_hits")
_CACHE_MISSES = counter("serve.registry.cache_misses")

#: Hex digits of the artifact SHA-256 used as the model id.
_ID_LENGTH = 16

RECORD_SCHEMA = "repro-model-record-v1"

ALIAS_HISTORY_SCHEMA = "repro-alias-move-v1"


class RegistryError(Exception):
    """Base class for registry failures."""


class ModelNotFound(RegistryError, KeyError):
    """No model or alias with the requested reference."""

    def __str__(self) -> str:  # KeyError quotes its args; keep prose.
        return Exception.__str__(self)


class CorruptArtifact(RegistryError):
    """On-disk artifact bytes do not match their recorded hash."""


@dataclass(frozen=True)
class ModelRecord:
    """Provenance and integrity data for one published model."""

    model_id: str
    artifact_sha256: str
    created_unix: float
    n_leaves: int
    n_features: int
    feature_names: Tuple[str, ...]
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": RECORD_SCHEMA,
            "model_id": self.model_id,
            "artifact_sha256": self.artifact_sha256,
            "created_unix": self.created_unix,
            "n_leaves": self.n_leaves,
            "n_features": self.n_features,
            "feature_names": list(self.feature_names),
            "metadata": dict(self.metadata),
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "ModelRecord":
        if payload.get("schema") != RECORD_SCHEMA:
            raise RegistryError(
                f"unsupported model record schema {payload.get('schema')!r}"
            )
        return ModelRecord(
            model_id=str(payload["model_id"]),
            artifact_sha256=str(payload["artifact_sha256"]),
            created_unix=float(payload["created_unix"]),
            n_leaves=int(payload["n_leaves"]),
            n_features=int(payload["n_features"]),
            feature_names=tuple(payload["feature_names"]),
            metadata=dict(payload.get("metadata", {})),
        )


def _canonical_artifact(tree: ModelTree) -> bytes:
    """The canonical bytes a model id and integrity hash are taken over."""
    return json.dumps(
        tree_to_dict(tree), sort_keys=True, separators=(",", ":")
    ).encode()


def _atomic_write(path: Path, data: bytes) -> None:
    """Write-then-rename, mirroring the sample-set cache's discipline."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        Path(tmp).unlink(missing_ok=True)
        raise


class ModelRegistry:
    """Content-addressed model store with aliases and an LRU of trees.

    Thread-safe: the serving engine and HTTP handler threads share one
    registry.  Disk-level concurrency across *processes* is handled by
    content addressing plus atomic renames — two publishers of the same
    tree write identical bytes, and alias re-points are single renames.
    """

    def __init__(
        self,
        root: Union[str, Path],
        max_cached_trees: int = 8,
    ) -> None:
        if max_cached_trees < 1:
            raise ValueError(
                f"max_cached_trees must be >= 1, got {max_cached_trees}"
            )
        self.root = Path(root)
        self.max_cached_trees = max_cached_trees
        self._lock = threading.Lock()
        # Serializes move_alias/drop_alias so (read prior, re-point,
        # record history) is atomic within this process; the pointer
        # write itself stays a single os.replace for cross-process
        # readers.
        self._alias_lock = threading.Lock()
        self._trees: "OrderedDict[str, ModelTree]" = OrderedDict()

    # -- paths -----------------------------------------------------------

    def _model_dir(self, model_id: str) -> Path:
        return self.root / "models" / model_id

    def _alias_path(self, name: str) -> Path:
        if not name or any(ch in name for ch in "/\\\0") or name.startswith("."):
            raise RegistryError(f"invalid alias name {name!r}")
        return self.root / "aliases" / name

    def _alias_history_path(self, name: str) -> Path:
        self._alias_path(name)  # reuse the name validation
        return self.root / "alias_history" / f"{name}.jsonl"

    # -- publishing ------------------------------------------------------

    def publish(
        self,
        tree: ModelTree,
        metadata: Optional[Mapping[str, Any]] = None,
        aliases: Sequence[str] = ("latest",),
    ) -> ModelRecord:
        """Store a fitted tree; returns its (content-addressed) record.

        Re-publishing an identical tree is idempotent apart from the
        record's ``created_unix`` and metadata, which are overwritten —
        the artifact bytes cannot change because the id pins them.
        """
        artifact = _canonical_artifact(tree)
        digest = hashlib.sha256(artifact).hexdigest()
        model_id = digest[:_ID_LENGTH]
        record = ModelRecord(
            model_id=model_id,
            artifact_sha256=digest,
            created_unix=time.time(),
            n_leaves=tree.n_leaves,
            n_features=len(tree.feature_names),
            feature_names=tuple(tree.feature_names),
            metadata=dict(metadata or {}),
        )
        model_dir = self._model_dir(model_id)
        # Artifact first, meta second: meta.json marks a complete publish.
        _atomic_write(model_dir / "artifact.json", artifact)
        _atomic_write(
            model_dir / "meta.json",
            json.dumps(record.as_dict(), indent=2).encode(),
        )
        for alias in aliases:
            self.set_alias(alias, model_id)
        with self._lock:
            self._remember(model_id, tree)
        _PUBLISHES.inc()
        return record

    # -- aliases ---------------------------------------------------------

    def set_alias(self, name: str, model_id: str) -> None:
        """Atomically (re-)point ``name`` at an existing model id."""
        if not (self._model_dir(model_id) / "meta.json").exists():
            raise ModelNotFound(
                f"cannot alias {name!r}: no model {model_id!r} in {self.root}"
            )
        _atomic_write(self._alias_path(name), model_id.encode())

    def aliases(self) -> Dict[str, str]:
        """All alias -> model id mappings."""
        alias_dir = self.root / "aliases"
        if not alias_dir.is_dir():
            return {}
        return {
            path.name: path.read_text().strip()
            for path in sorted(alias_dir.iterdir())
            if path.is_file()
        }

    def move_alias(
        self,
        name: str,
        model_id: str,
        reason: Optional[str] = None,
        actor: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Atomically re-point ``name``, recording the prior target.

        Returns the appended history entry.  Racing movers serialize on
        the registry's alias lock: exactly one ends up as the final
        pointer, every entry's ``from`` is the target it actually
        displaced, and the alias file is never absent or empty
        mid-flip.
        """
        with self._alias_lock:
            alias_path = self._alias_path(name)
            prior: Optional[str] = None
            if alias_path.is_file():
                prior = alias_path.read_text().strip() or None
            self.set_alias(name, model_id)  # validates target, atomic
            entry = {
                "schema": ALIAS_HISTORY_SCHEMA,
                "alias": name,
                "from": prior,
                "to": model_id,
                "reason": reason,
                "actor": actor,
                "unix_time": time.time(),
            }
            self._append_alias_history(name, entry)
        return entry

    def drop_alias(
        self,
        name: str,
        reason: Optional[str] = None,
        actor: Optional[str] = None,
    ) -> Optional[Dict[str, Any]]:
        """Remove an alias, recording what it pointed at.

        Returns the history entry, or None if the alias did not exist.
        """
        with self._alias_lock:
            alias_path = self._alias_path(name)
            if not alias_path.is_file():
                return None
            prior = alias_path.read_text().strip() or None
            alias_path.unlink()
            entry = {
                "schema": ALIAS_HISTORY_SCHEMA,
                "alias": name,
                "from": prior,
                "to": None,
                "reason": reason,
                "actor": actor,
                "unix_time": time.time(),
            }
            self._append_alias_history(name, entry)
        return entry

    def alias_history(self, name: str) -> List[Dict[str, Any]]:
        """Recorded moves for one alias, oldest first.

        Only :meth:`move_alias` / :meth:`drop_alias` record history;
        plain :meth:`set_alias` (e.g. from publish) does not.
        """
        history_path = self._alias_history_path(name)
        if not history_path.is_file():
            return []
        entries: List[Dict[str, Any]] = []
        for line in history_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue  # tolerate a torn tail from a crashed writer
            if isinstance(payload, dict):
                entries.append(payload)
        return entries

    def _append_alias_history(self, name: str, entry: Mapping[str, Any]) -> None:
        # Caller holds self._alias_lock.
        history_path = self._alias_history_path(name)
        history_path.parent.mkdir(parents=True, exist_ok=True)
        with open(history_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()

    def evict(self, model_id: str) -> None:
        """Drop a model's tree from the in-process LRU (used by gc)."""
        with self._lock:
            self._trees.pop(model_id, None)

    def resolve(self, ref: str) -> str:
        """Map a model id or alias to a model id (id wins on collision)."""
        if (self._model_dir(ref) / "meta.json").exists():
            return ref
        try:
            alias_path = self._alias_path(ref)
        except RegistryError:
            raise ModelNotFound(f"no model or alias {ref!r} in {self.root}")
        if alias_path.is_file():
            target = alias_path.read_text().strip()
            if (self._model_dir(target) / "meta.json").exists():
                return target
            raise ModelNotFound(
                f"alias {ref!r} points at missing model {target!r}"
            )
        known = ", ".join(sorted(self.aliases())) or "none"
        raise ModelNotFound(
            f"no model or alias {ref!r} in {self.root} (aliases: {known})"
        )

    # -- reading ---------------------------------------------------------

    def record(self, ref: str) -> ModelRecord:
        """The metadata record for a model id or alias."""
        model_id = self.resolve(ref)
        meta_path = self._model_dir(model_id) / "meta.json"
        try:
            payload = json.loads(meta_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise CorruptArtifact(
                f"unreadable metadata for model {model_id!r}: {error}"
            ) from None
        return ModelRecord.from_dict(payload)

    def load(self, ref: str) -> Tuple[ModelRecord, ModelTree]:
        """Record plus deserialized tree, integrity-checked and LRU-cached."""
        record = self.record(ref)
        _LOADS.inc()
        with self._lock:
            cached = self._trees.get(record.model_id)
            if cached is not None:
                self._trees.move_to_end(record.model_id)
                _CACHE_HITS.inc()
                return record, cached
        _CACHE_MISSES.inc()
        artifact_path = self._model_dir(record.model_id) / "artifact.json"
        try:
            raw = artifact_path.read_bytes()
        except OSError as error:
            raise CorruptArtifact(
                f"missing artifact for model {record.model_id!r}: {error}"
            ) from None
        digest = hashlib.sha256(raw).hexdigest()
        if digest != record.artifact_sha256:
            raise CorruptArtifact(
                f"artifact hash mismatch for model {record.model_id!r}: "
                f"expected {record.artifact_sha256[:12]}..., "
                f"got {digest[:12]}..."
            )
        tree = tree_from_dict(json.loads(raw))
        with self._lock:
            self._remember(record.model_id, tree)
        return record, tree

    def _remember(self, model_id: str, tree: ModelTree) -> None:
        # Caller holds self._lock.
        self._trees[model_id] = tree
        self._trees.move_to_end(model_id)
        while len(self._trees) > self.max_cached_trees:
            self._trees.popitem(last=False)

    def list_records(self) -> List[ModelRecord]:
        """Every published model, oldest first."""
        models_dir = self.root / "models"
        if not models_dir.is_dir():
            return []
        records = []
        for model_dir in sorted(models_dir.iterdir()):
            meta_path = model_dir / "meta.json"
            if meta_path.is_file():
                records.append(self.record(model_dir.name))
        return sorted(records, key=lambda r: (r.created_unix, r.model_id))

    def __len__(self) -> int:
        models_dir = self.root / "models"
        if not models_dir.is_dir():
            return 0
        return sum(
            1 for d in models_dir.iterdir() if (d / "meta.json").is_file()
        )

    def __repr__(self) -> str:
        return (
            f"ModelRegistry(root={str(self.root)!r}, models={len(self)}, "
            f"cached={len(self._trees)})"
        )
