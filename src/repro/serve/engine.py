"""Micro-batching prediction engine over a model registry.

Individual predict calls (one per HTTP request) are cheap for the
caller but expensive to run one-by-one: :meth:`ModelTree.predict` is
vectorized, so 64 single-row traversals cost ~64x what one 64-row
traversal does.  The engine closes that gap with request coalescing: a
single worker thread drains a queue, groups consecutive requests by
(model, smoothing) and flushes a group when it reaches ``max_batch``
rows or the oldest request has waited ``max_wait_s`` — the standard
latency/throughput knob pair of model servers.

Because one worker executes all predictions, results are deterministic
and bit-identical to calling ``tree.predict`` directly on the same
rows: batching concatenates inputs and splits outputs, and every
flushed batch evaluates through the compiled kernel
(:mod:`repro.mtree.compiled`, the default ``tree.predict`` backend),
whose per-row arithmetic — one routing pass plus one batch-invariant
row dot against the leaf coefficient matrix — is independent of batch
composition by construction.

The engine also answers the characterization queries a model server
needs beyond raw CPI: leaf profiles (which linear models exist, their
equations and training shares), Eq. 4 workload profiling (classify
submitted rows and measure their L1 distance from the training
distribution), and structural model-vs-model comparison via
:mod:`repro.mtree.compare`.

The engine is a pure in-process component: it owns no socket, no
signal handler and no process, only a queue and one worker thread, so
any front end can embed it — the threaded HTTP server
(:mod:`repro.serve.api`), a forked cluster replica
(:mod:`repro.cluster`), or an asyncio loop wrapping
:meth:`PredictionEngine.submit`'s :class:`PredictionFuture` in an
executor.  Blocking front ends call :meth:`~PredictionEngine.predict`
(submit + wait); non-blocking ones call
:meth:`~PredictionEngine.submit` and wait on the returned future
however they like.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.characterization.similarity import l1_difference
from repro.mtree.compare import compare_trees
from repro.obs.metrics import counter, gauge, histogram
from repro.obs.telemetry import RequestTrace
from repro.obs.trace import span as obs_span
from repro.serve.registry import ModelRegistry

__all__ = ["BatchConfig", "PredictionEngine", "PredictionFuture"]

_REQUESTS = counter("serve.engine.requests")
_ROWS = counter("serve.engine.rows")
_BATCHES = counter("serve.engine.batches")
_ERRORS = counter("serve.engine.errors")
_BATCH_ROWS = histogram("serve.engine.batch_rows")
_BATCH_REQUESTS = histogram("serve.engine.batch_requests")
_WAIT_S = histogram("serve.engine.queue_wait_s")
_QUEUE_DEPTH = gauge("serve.engine.queue_depth")
_MONITOR_ERRORS = counter("serve.engine.monitor_errors")
#: Failure-path accounting, one counter per distinct path: requests
#: that failed validation before ever occupying queue capacity, and
#: requests answered by the shutdown drain rather than a live worker.
_VALIDATION_FAILURES = counter("serve.engine.validation_failures")
_DRAINED = counter("serve.engine.drained_requests")


@dataclass(frozen=True)
class BatchConfig:
    """Micro-batching knobs.

    ``max_batch`` bounds the rows coalesced into one tree traversal;
    ``max_wait_s`` bounds how long the first request of a batch may sit
    in the queue waiting for company.  ``max_wait_s=0`` disables
    coalescing-by-time: each flush takes whatever is already queued.
    """

    max_batch: int = 256
    max_wait_s: float = 0.002

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_s < 0:
            raise ValueError(
                f"max_wait_s must be non-negative, got {self.max_wait_s}"
            )


class PredictionFuture:
    """Handle to one in-flight prediction.

    Returned by :meth:`PredictionEngine.submit`; the batching worker
    fulfils it (result or error) and sets its event.  Front ends that
    block call :meth:`result`; front ends that multiplex (asyncio,
    pipe shims) hold the future, poll :attr:`done` or park a thread on
    :meth:`wait`, and collect the result later.  A future is fulfilled
    exactly once and never re-enqueued.
    """

    __slots__ = (
        "model_id",
        "smooth",
        "X",
        "actuals",
        "event",
        "result_array",
        "error",
        "trace",
        "t_submit",
        "t_dequeue",
        "t_flush",
        "t_kernel_end",
        "batch_rows",
        "batch_requests",
        "_spans_built",
    )

    def __init__(
        self,
        model_id: str,
        smooth: Optional[bool],
        X: np.ndarray,
        actuals: Optional[np.ndarray] = None,
        trace: Optional[RequestTrace] = None,
    ):
        self.model_id = model_id
        self.smooth = smooth
        self.X = X
        self.actuals = actuals
        self.event = threading.Event()
        self.result_array: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None
        # Telemetry: the caller's trace, plus raw perf_counter marks the
        # worker sets before answering.  The worker does NO record
        # building or I/O per request — it is the serial throughput
        # bottleneck, so every microsecond it spends per request costs
        # the whole server; the caller's (parallel) thread turns these
        # marks into spans after :meth:`PredictionEngine.predict` wakes.
        self.trace = trace
        self.t_submit: Optional[float] = None
        self.t_dequeue: Optional[float] = None
        self.t_flush: Optional[float] = None
        self.t_kernel_end: Optional[float] = None
        self.batch_rows: int = 0
        self.batch_requests: int = 0
        self._spans_built = False

    @property
    def done(self) -> bool:
        """True once the worker has fulfilled this future."""
        return self.event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until fulfilled (or ``timeout``); returns :attr:`done`."""
        return self.event.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """The predictions, blocking up to ``timeout`` seconds.

        Raises :class:`TimeoutError` if the worker has not answered in
        time, or re-raises whatever error failed the batch.  Safe to
        call more than once; trace spans are built exactly once, on
        the first post-fulfilment call (in the caller's thread, never
        the worker's).
        """
        if not self.event.wait(timeout):
            raise TimeoutError(
                f"prediction for model {self.model_id!r} timed out after "
                f"{timeout}s"
            )
        if self.trace is not None and not self._spans_built:
            self._spans_built = True
            self._marks_to_spans()
        if self.error is not None:
            raise self.error
        assert self.result_array is not None
        return self.result_array

    def _marks_to_spans(self) -> None:
        """Convert the worker's perf_counter marks into trace spans.

        Runs on the waiting front end's thread after the event fired;
        the marks were all written before ``event.set()``, so they are
        visible here.  Missing marks (a request that errored before
        the kernel ran) simply yield fewer spans.
        """
        trace = self.trace
        assert trace is not None
        if self.t_submit is not None and self.t_dequeue is not None:
            trace.add_stage("queue_wait", self.t_submit, self.t_dequeue)
        if self.t_dequeue is not None and self.t_flush is not None:
            trace.add_stage("batch_assembly", self.t_dequeue, self.t_flush)
        if self.t_flush is not None and self.t_kernel_end is not None:
            trace.add_stage(
                "kernel",
                self.t_flush,
                self.t_kernel_end,
                batch_rows=self.batch_rows,
                batch_requests=self.batch_requests,
            )


_SHUTDOWN = object()


class PredictionEngine:
    """Serializes predictions through one batching worker thread.

    Use as a context manager (or call :meth:`start`/:meth:`stop`)::

        engine = PredictionEngine(registry)
        with engine:
            cpi = engine.predict("latest", X)

    :meth:`stop` drains: requests already queued are answered before
    the worker exits, and new submissions are refused.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        batch: Optional[BatchConfig] = None,
        drift=None,
    ) -> None:
        """``drift``, when given, is a :class:`repro.drift.hub.DriftHub`
        (duck-typed: anything with ``observe(model_id, X, predictions,
        actuals)``).  The batching worker feeds it each flushed batch
        *after* answering the callers, so monitoring never sits on the
        client latency path; monitor failures are counted, never
        propagated, and every batch flushed before :meth:`stop`
        returns has been observed.
        """
        self.registry = registry
        self.batch = batch or BatchConfig()
        self.drift = drift
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._worker: Optional[threading.Thread] = None
        self._closed = True
        # Serializes the closed-check+enqueue pair against stop(): once
        # the shutdown sentinel is queued, nothing can enqueue behind it,
        # so the drain provably answers every accepted request.
        self._submit_lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._worker is not None and self._worker.is_alive()

    def start(self) -> "PredictionEngine":
        if self.running:
            return self
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )
        self._worker.start()
        return self

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Refuse new work, answer everything queued, join the worker."""
        if self._worker is None:
            return
        with self._submit_lock:
            self._closed = True
            self._queue.put(_SHUTDOWN)
        self._worker.join(timeout)
        self._worker = None

    def __enter__(self) -> "PredictionEngine":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- prediction ------------------------------------------------------

    def submit(
        self,
        ref: str,
        X: Any,
        smooth: Optional[bool] = None,
        actuals: Any = None,
        trace: Optional[RequestTrace] = None,
    ) -> PredictionFuture:
        """Validate and enqueue one prediction; returns its future.

        Validation (model existence, shape, finiteness) happens before
        enqueueing, so malformed requests fail fast in the caller's
        thread and never occupy batch capacity.  The returned
        :class:`PredictionFuture` is fulfilled by the batching worker;
        collect it with :meth:`PredictionFuture.result`.

        ``actuals`` optionally carries observed CPI values (one per
        row; NaN = unlabelled) for the drift monitor.  They do not
        affect the predictions returned.

        ``trace`` optionally carries the caller's
        :class:`repro.obs.telemetry.RequestTrace`: validation happens
        here, and queue_wait, batch_assembly and kernel stages land on
        it *in the collecting thread* — the worker only stamps raw
        perf_counter marks on the future, and
        :meth:`PredictionFuture.result` converts them to spans after
        waking, so traced requests add no work to the serial batching
        loop.  The exception is ``drift_observe``, which happens after
        callers are answered: when a drift hub is attached the worker
        emits it as a small supplementary ``engine`` record sharing the
        trace ID.
        """
        if self._closed or not self.running:
            raise RuntimeError("prediction engine is not running")
        t_validate = time.perf_counter()
        try:
            model_id = self.registry.resolve(ref)
            _, tree = self.registry.load(model_id)
            X = tree._check_X(X)
            if actuals is not None:
                actuals = np.asarray(actuals, dtype=float).ravel()
                if actuals.shape[0] != X.shape[0]:
                    raise ValueError(
                        f"actuals must have one value per row: got "
                        f"{actuals.shape[0]} for {X.shape[0]} rows"
                    )
        except Exception:
            _VALIDATION_FAILURES.inc()
            raise
        if trace is not None:
            trace.add_stage(
                "validate", t_validate, time.perf_counter(), model=model_id
            )
        future = PredictionFuture(model_id, smooth, X, actuals, trace=trace)
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("prediction engine is not running")
            _REQUESTS.inc()
            _ROWS.inc(X.shape[0])
            future.t_submit = time.perf_counter()
            self._queue.put(future)
            _QUEUE_DEPTH.set(self._queue.qsize())
        return future

    def predict(
        self,
        ref: str,
        X: Any,
        smooth: Optional[bool] = None,
        timeout: Optional[float] = 30.0,
        actuals: Any = None,
        trace: Optional[RequestTrace] = None,
    ) -> np.ndarray:
        """CPI predictions for ``X`` through the micro-batching worker.

        Blocking convenience over :meth:`submit` — exactly
        ``submit(...).result(timeout)``.
        """
        return self.submit(
            ref, X, smooth=smooth, actuals=actuals, trace=trace
        ).result(timeout)

    # -- characterization queries ---------------------------------------

    def profile(self, ref: str) -> Dict[str, Any]:
        """The model's linear-model profile (Tables II/IV row schema)."""
        record, tree = self.registry.load(ref)
        return {
            "model_id": record.model_id,
            "n_leaves": tree.n_leaves,
            "depth": tree.depth(),
            "n_train": tree.n_train,
            "root_split": tree.root_split_feature(),
            "split_features": tree.split_features(),
            "leaves": [
                {
                    "name": leaf.name,
                    "share_pct": 100.0 * leaf.share,
                    "n_samples": leaf.n_samples,
                    "mean_cpi": leaf.mean_y,
                    "equation": leaf.model.equation(),
                }
                for leaf in tree.leaves()
            ],
        }

    def profile_inputs(self, ref: str, X: Any) -> Dict[str, Any]:
        """Classify rows into leaves and compare against training shares.

        The returned ``l1_vs_training_pct`` is Eq. 4 applied to (input
        distribution, training distribution): 0 means the submitted
        workload exercises the model's regimes exactly like its
        training suite; 100 means completely disjoint regimes — the
        serving-time transferability warning light.
        """
        record, tree = self.registry.load(ref)
        X = tree._check_X(X)
        assignments = tree.assign_leaves(X)
        n = X.shape[0]
        shares = {
            leaf.name: 100.0 * float(np.sum(assignments == leaf.name)) / n
            for leaf in tree.leaves()
        }
        training = {
            leaf.name: 100.0 * leaf.share for leaf in tree.leaves()
        }
        return {
            "model_id": record.model_id,
            "n": n,
            "shares_pct": shares,
            "training_shares_pct": training,
            "l1_vs_training_pct": l1_difference(shares, training),
        }

    def compare(self, ref_a: str, ref_b: str) -> Dict[str, Any]:
        """Structural similarity of two published models (Section VI)."""
        record_a, tree_a = self.registry.load(ref_a)
        record_b, tree_b = self.registry.load(ref_b)
        comparison = compare_trees(
            tree_a, tree_b, name_a=record_a.model_id, name_b=record_b.model_id
        )
        return comparison.as_dict()

    # -- the worker ------------------------------------------------------

    def _run(self) -> None:
        cfg = self.batch
        while True:
            head = self._queue.get()
            if head is _SHUTDOWN:
                # Drain whatever arrived before the close flag was seen.
                pending: List[PredictionFuture] = []
                t_drain = time.perf_counter()
                while True:
                    try:
                        item = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if item is not _SHUTDOWN:
                        item.t_dequeue = t_drain
                        pending.append(item)
                if pending:
                    _DRAINED.inc(len(pending))
                for group in self._group(pending):
                    self._flush(group)
                return
            head.t_dequeue = time.perf_counter()
            group = [head]
            rows = head.X.shape[0]
            deadline = time.monotonic() + cfg.max_wait_s
            t_enqueue = time.monotonic()
            while rows < cfg.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is _SHUTDOWN:
                    self._queue.put(_SHUTDOWN)  # re-deliver for the drain
                    break
                item.t_dequeue = time.perf_counter()
                if (item.model_id, item.smooth) != (
                    head.model_id,
                    head.smooth,
                ):
                    # Different model/mode: flush what we have, then put
                    # the newcomer at the head of its own batch.
                    self._flush(group)
                    group, head = [item], item
                    rows = item.X.shape[0]
                    deadline = time.monotonic() + cfg.max_wait_s
                    continue
                group.append(item)
                rows += item.X.shape[0]
            _WAIT_S.observe(time.monotonic() - t_enqueue)
            self._flush(group)

    @staticmethod
    def _group(requests: List[PredictionFuture]) -> List[List[PredictionFuture]]:
        """Partition drained requests into same-(model, smooth) runs."""
        groups: List[List[PredictionFuture]] = []
        for request in requests:
            if groups and (
                groups[-1][0].model_id,
                groups[-1][0].smooth,
            ) == (request.model_id, request.smooth):
                groups[-1].append(request)
            else:
                groups.append([request])
        return groups

    def _flush(self, group: List[PredictionFuture]) -> None:
        if not group:
            return
        head = group[0]
        rows = sum(r.X.shape[0] for r in group)
        _QUEUE_DEPTH.set(self._queue.qsize())
        t_flush = time.perf_counter()
        try:
            with obs_span(
                "serve.batch",
                model=head.model_id,
                requests=len(group),
                rows=rows,
            ):
                _, tree = self.registry.load(head.model_id)
                if len(group) == 1:
                    predictions = tree.predict(head.X, smooth=head.smooth)
                else:
                    stacked = np.vstack([r.X for r in group])
                    predictions = tree.predict(stacked, smooth=head.smooth)
            t_kernel_end = time.perf_counter()
            _BATCHES.inc()
            _BATCH_ROWS.observe(rows)
            _BATCH_REQUESTS.observe(len(group))
            offset = 0
            for request in group:
                n = request.X.shape[0]
                request.result_array = predictions[offset : offset + n]
                offset += n
                if request.trace is not None:
                    # Marks only — the caller's thread builds the spans.
                    request.t_flush = t_flush
                    request.t_kernel_end = t_kernel_end
                    request.batch_rows = rows
                    request.batch_requests = len(group)
                request.event.set()
            t_drift_start = time.perf_counter()
            self._notify_drift(group, predictions)
            t_drift_end = time.perf_counter()
            self._emit_drift_traces(group, t_drift_start, t_drift_end)
        except BaseException as error:  # answer callers, keep serving
            _ERRORS.inc()
            for request in group:
                if request.error is None and request.result_array is None:
                    request.error = error
                request.event.set()

    def _emit_drift_traces(
        self,
        group: List[PredictionFuture],
        t_drift_start: float,
        t_drift_end: float,
    ) -> None:
        """Emit the ``drift_observe`` span for each traced request.

        Drift observation runs after callers are answered, so its span
        cannot ride in the caller's own record — by the time the hub
        has seen the batch, the response is already on the wire.  Each
        traced request instead gets a small supplementary ``engine``
        record on a child trace sharing its ID and clock;
        :func:`repro.obs.telemetry.reconstruct_traces` merges the two
        at read time.  Without a drift hub this is a no-op, keeping
        the worker's per-request telemetry cost at zero.
        """
        if self.drift is None:
            return
        for request in group:
            rt = request.trace
            if rt is None:
                continue
            child = rt.child()
            child.add_stage("drift_observe", t_drift_start, t_drift_end)
            child.emit(
                "engine",
                model=request.model_id,
                rows=request.X.shape[0],
            )

    def _notify_drift(
        self, group: List[PredictionFuture], predictions: np.ndarray
    ) -> None:
        """Feed a flushed batch to the drift hub (callers answered).

        Runs on the batching worker *after* every caller's event is
        set, so it adds nothing to request latency — only pipeline
        cost, which ``benchmarks/run_driftbench.py`` keeps honest.
        """
        if self.drift is None:
            return
        try:
            head = group[0]
            if len(group) == 1:
                X = head.X
            else:
                X = np.vstack([r.X for r in group])
            if any(r.actuals is not None for r in group):
                actuals = np.concatenate(
                    [
                        r.actuals
                        if r.actuals is not None
                        else np.full(r.X.shape[0], np.nan)
                        for r in group
                    ]
                )
            else:
                actuals = None
            self.drift.observe(head.model_id, X, predictions, actuals)
        except Exception:
            # Monitoring must never take serving down with it.
            _MONITOR_ERRORS.inc()
