"""Train-and-register: from experiment config to published model.

``repro publish`` is this module: it reuses
:class:`~repro.experiments.context.ExperimentContext` — the same cached
generation, split and fit path every experiment uses — so the published
model is bit-identical to the tree Figure 1/2 experiments would build
from the same configuration, and the registry metadata embeds the full
run manifest (:mod:`repro.obs.manifest`), answering "what produced this
model?" long after the training process is gone.
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.context import ExperimentContext
from repro.obs.manifest import build_manifest
from repro.obs.trace import span as obs_span
from repro.serve.registry import ModelRecord, ModelRegistry

__all__ = ["publish_from_config"]


def publish_from_config(
    registry: ModelRegistry,
    which: str,
    config: Optional[ExperimentConfig] = None,
    cache_dir: Optional[str] = None,
    aliases: Sequence[str] = ("latest",),
    argv: Optional[Sequence[str]] = None,
) -> ModelRecord:
    """Train the suite's M5' tree and publish it with full provenance.

    ``which`` is ``"cpu2006"`` or ``"omp2001"``; ``aliases`` are
    (re-)pointed at the new model, so a serving process resolving
    ``latest`` picks it up on its next load.
    """
    config = config or ExperimentConfig()
    ctx = ExperimentContext(config, cache_dir=cache_dir)
    with obs_span("serve.publish", suite=which):
        tree = ctx.tree(which)
        train = ctx.train_set(which)
        manifest = build_manifest(
            config,
            experiments=[f"publish:{which}"],
            argv=list(argv) if argv is not None else sys.argv,
            cache_dir=cache_dir,
        )
        record = registry.publish(
            tree,
            metadata={
                "suite": which,
                "suite_label": ctx.suite_label(which),
                "seed": config.seed,
                "n_train": len(train),
                "train_fraction": config.train_fraction,
                # Training CPI moments: what the drift monitor's
                # dependent-variable t-test (Eqs. 8-11) compares live
                # traffic against.
                "train_y": {
                    "n": len(train),
                    "mean": float(train.y.mean()),
                    "var": float(train.y.var(ddof=1)),
                },
                "manifest": manifest,
            },
            aliases=aliases,
        )
    return record
