"""repro.serve — model serving: registry, batching engine, HTTP API.

The paper's end product is a reusable artifact: a trained M5' tree
that predicts CPI and answers profile/similarity queries.  This
package keeps such trees alive beyond the training process:

* :mod:`repro.serve.registry` — a versioned, content-addressed on-disk
  store of serialized trees with integrity hashes, aliases
  (``latest``) and an in-process LRU of deserialized models.
* :mod:`repro.serve.engine` — a micro-batching prediction engine:
  requests coalesce in a queue and flush through the vectorized
  ``ModelTree.predict`` (max-batch / max-wait knobs).
* :mod:`repro.serve.api` — a threaded stdlib HTTP/JSON API with
  structured errors, request-size limits, graceful drain,
  ``X-Repro-Trace`` propagation, SLO tracking and opt-in per-request
  telemetry.
* :mod:`repro.serve.status` — the single ``/v1/status`` document and
  its ``/dashboard`` HTML / ``repro status`` terminal renderings.
* :mod:`repro.serve.publish` — train-and-register from an experiment
  configuration, embedding the run manifest as provenance.

CLI entry points: ``repro publish``, ``repro serve`` and
``repro status`` (see ``docs/SERVING.md``).
"""

from repro.serve.engine import BatchConfig, PredictionEngine
from repro.serve.api import ApiError, ModelServer
from repro.serve.publish import publish_from_config
from repro.serve.registry import (
    CorruptArtifact,
    ModelNotFound,
    ModelRecord,
    ModelRegistry,
    RegistryError,
)
from repro.serve.status import (
    build_status_document,
    render_dashboard_html,
    render_status_text,
)

__all__ = [
    "ApiError",
    "BatchConfig",
    "CorruptArtifact",
    "ModelNotFound",
    "ModelRecord",
    "ModelRegistry",
    "ModelServer",
    "PredictionEngine",
    "RegistryError",
    "build_status_document",
    "publish_from_config",
    "render_dashboard_html",
    "render_status_text",
]
