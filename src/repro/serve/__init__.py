"""repro.serve — model serving: registry, batching engine, HTTP API.

The paper's end product is a reusable artifact: a trained M5' tree
that predicts CPI and answers profile/similarity queries.  This
package keeps such trees alive beyond the training process:

* :mod:`repro.serve.registry` — a versioned, content-addressed on-disk
  store of serialized trees with integrity hashes, aliases
  (``latest``) and an in-process LRU of deserialized models.
* :mod:`repro.serve.engine` — a micro-batching prediction engine:
  requests coalesce in a queue and flush through the vectorized
  ``ModelTree.predict`` (max-batch / max-wait knobs).
* :mod:`repro.serve.api` — a threaded stdlib HTTP/JSON API with
  structured errors, request-size limits and graceful drain.
* :mod:`repro.serve.publish` — train-and-register from an experiment
  configuration, embedding the run manifest as provenance.

CLI entry points: ``repro publish`` and ``repro serve`` (see
``docs/SERVING.md``).
"""

from repro.serve.engine import BatchConfig, PredictionEngine
from repro.serve.api import ApiError, ModelServer
from repro.serve.publish import publish_from_config
from repro.serve.registry import (
    CorruptArtifact,
    ModelNotFound,
    ModelRecord,
    ModelRegistry,
    RegistryError,
)

__all__ = [
    "ApiError",
    "BatchConfig",
    "CorruptArtifact",
    "ModelNotFound",
    "ModelRecord",
    "ModelRegistry",
    "ModelServer",
    "PredictionEngine",
    "RegistryError",
    "publish_from_config",
]
