"""End-to-end serving smoke test: ``repro serve --self-test``.

Boots a :class:`~repro.serve.api.ModelServer` on an ephemeral port,
round-trips one predict request over real HTTP and verifies the
response is bit-identical to calling the tree directly — through both
the compiled kernel (the serving default) and the recursive reference
walk, so the float64 equivalence of the two backends is asserted on
the real serving path, not just in unit tests — then checks
``/healthz``, sends a labelled predict and confirms the drift monitor
saw it (``/v1/models/<ref>/drift``), and finally that ``/metrics``
reflects both the traffic and the drift instruments.  Exits 0 only if
every check passes — cheap enough for CI, honest enough to catch a
broken serving path.

If the registry holds no model yet, a small tree is trained and
published under the ``selftest`` alias first (deterministic seed, a
few thousand synthetic CPU2006 intervals), so the command works on an
empty directory.

With ``workers > 1`` (``repro serve --self-test --workers N``) a
second pass boots a real forked :mod:`repro.cluster` on an ephemeral
port and repeats the probe through it, asserting every replica's HTTP
response bit-identical to direct ``ModelTree.predict`` and that at
least two distinct replicas answered.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.request
from typing import Optional

import numpy as np

from repro.serve.api import ModelServer
from repro.serve.engine import BatchConfig
from repro.serve.registry import ModelRegistry

__all__ = ["run_self_test"]

#: Sample count/seed for the fallback model on an empty registry.
_SELFTEST_SAMPLES = 3000
_SELFTEST_SEED = 20080401


def _ensure_model(registry: ModelRegistry) -> str:
    """Guarantee a resolvable model; returns the reference to probe."""
    try:
        registry.resolve("latest")
        return "latest"
    except KeyError:
        pass
    records = registry.list_records()
    if records:
        return records[-1].model_id
    from repro.mtree.tree import ModelTree, ModelTreeConfig
    from repro.workloads.spec_cpu2006 import spec_cpu2006
    from repro.workloads.suite import SuiteGenerationConfig

    data = spec_cpu2006().generate(
        SuiteGenerationConfig(
            total_samples=_SELFTEST_SAMPLES, seed=_SELFTEST_SEED
        )
    )
    tree = ModelTree(ModelTreeConfig(min_leaf=40)).fit_sample_set(data)
    registry.publish(
        tree,
        metadata={
            "suite": "cpu2006",
            "origin": "serve --self-test",
            "train_y": {
                "n": len(data),
                "mean": float(data.y.mean()),
                "var": float(data.y.var(ddof=1)),
            },
        },
        aliases=("latest", "selftest"),
    )
    return "latest"


def _get_json(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def _cluster_self_test(
    registry_dir: str,
    ref: str,
    record,
    probe: np.ndarray,
    expected: np.ndarray,
    workers: int,
    batch: Optional[BatchConfig],
    out,
) -> int:
    """Smoke the same probe through an N-replica cluster front end.

    Every request carries an ``X-Repro-Replica`` header; the probe is
    repeated until at least two distinct replicas have answered (the
    kernel hashes connections, so coverage is probabilistic per
    request but certain over enough fresh connections), and every
    single response must be bit-identical to the direct
    ``ModelTree.predict`` floats.
    """
    from repro.cluster import ClusterConfig, ClusterSupervisor

    body = json.dumps({"instances": probe.tolist()}).encode()
    with ClusterSupervisor(
        ClusterConfig(
            registry_dir=registry_dir,
            workers=workers,
            port=0,
            batch=batch,
            monitor=False,
        )
    ) as supervisor:
        replicas_seen = set()
        # urllib opens a fresh connection per request — each re-rolls
        # the SO_REUSEPORT hash, so 40 tries cover 2+ replicas with
        # overwhelming probability (shared mode round-robins anyway).
        for attempt in range(40):
            request = urllib.request.Request(
                f"{supervisor.url}/v1/models/{ref}/predict",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                reply = json.loads(response.read())
                replica = response.headers.get("X-Repro-Replica")
            if replica is not None:
                replicas_seen.add(replica)
            got = np.asarray(reply["predictions"], dtype=float)
            if not np.array_equal(got, expected):
                print(
                    f"self-test: replica {replica} predictions differ "
                    "from direct ModelTree.predict (max diff "
                    f"{np.max(np.abs(got - expected)):.3g})",
                    file=out,
                )
                return 1
            if len(replicas_seen) >= min(2, workers) and attempt >= 9:
                break
        if len(replicas_seen) < min(2, workers):
            print(
                f"self-test: only replica(s) {sorted(replicas_seen)} "
                f"answered across 40 requests to a {workers}-worker "
                "cluster",
                file=out,
            )
            return 1
        status = supervisor.status()
        if status.get("responsive") != workers:
            print(
                f"self-test: {status.get('responsive')}/{workers} "
                "replicas answered the control plane",
                file=out,
            )
            return 1
        unclean = 0
    print(
        f"self-test: cluster ok ({workers} workers, "
        f"{supervisor.socket_mode} mode, replicas "
        f"{sorted(replicas_seen)} all bit-identical over HTTP)",
        file=out,
    )
    return unclean


def run_self_test(
    registry_dir: str,
    batch: Optional[BatchConfig] = None,
    out=None,
    workers: int = 1,
) -> int:
    """Run the smoke sequence; returns a process exit code.

    ``workers > 1`` appends a cluster pass: the same probe through a
    real forked N-replica cluster, asserting HTTP bit-equality against
    direct ``ModelTree.predict`` on every response and control-plane
    responsiveness of every replica.
    """
    out = sys.stderr if out is None else out  # resolve late: tests swap stderr
    registry = ModelRegistry(registry_dir)
    ref = _ensure_model(registry)
    record, tree = registry.load(ref)

    # A deterministic probe drawn from the training distribution's
    # scale: the exact values are irrelevant, the equality check isn't.
    rng = np.random.default_rng(7)
    probe = rng.random((5, record.n_features))
    expected = tree.predict(probe)
    recursive = tree.predict(probe, compiled=False)
    if not np.array_equal(expected, recursive):
        print(
            "self-test: compiled and recursive backends disagree "
            f"(max diff {np.max(np.abs(expected - recursive)):.3g})",
            file=out,
        )
        return 1

    with ModelServer(registry, port=0, batch=batch) as server:
        health = _get_json(f"{server.url}/healthz")
        if health.get("status") != "ok" or health.get("models", 0) < 1:
            print(f"self-test: bad /healthz response {health}", file=out)
            return 1

        request = urllib.request.Request(
            f"{server.url}/v1/models/{ref}/predict",
            data=json.dumps({"instances": probe.tolist()}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            reply = json.loads(response.read())
        got = np.asarray(reply["predictions"], dtype=float)
        if reply.get("model_id") != record.model_id:
            print(
                f"self-test: predicted against {reply.get('model_id')!r}, "
                f"expected {record.model_id!r}",
                file=out,
            )
            return 1
        if not np.array_equal(got, expected):
            print(
                "self-test: HTTP predictions differ from direct "
                f"ModelTree.predict (max diff "
                f"{np.max(np.abs(got - expected)):.3g})",
                file=out,
            )
            return 1
        # expected == recursive was asserted above, so HTTP equality
        # transitively covers both backends; state it explicitly.
        if not np.array_equal(got, recursive):
            print(
                "self-test: HTTP predictions differ from the recursive "
                "reference walk",
                file=out,
            )
            return 1

        # Drift: a labelled predict must show up in the monitor.  The
        # engine feeds the hub after answering the caller, so poll
        # briefly instead of assuming the observation already landed.
        request = urllib.request.Request(
            f"{server.url}/v1/models/{ref}/predict",
            data=json.dumps(
                {
                    "instances": probe.tolist(),
                    "actuals": expected.tolist(),
                }
            ).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=10):
            pass
        drift = {}
        for _ in range(50):
            drift = _get_json(f"{server.url}/v1/models/{ref}/drift")
            if drift.get("records_seen", 0) >= 2 * len(probe):
                break
            time.sleep(0.05)
        if not drift.get("monitoring"):
            print(f"self-test: drift monitoring not active: {drift}", file=out)
            return 1
        if drift.get("records_seen", 0) < 2 * len(probe):
            print(
                f"self-test: drift monitor saw {drift.get('records_seen')} "
                f"records, expected >= {2 * len(probe)}",
                file=out,
            )
            return 1

        with urllib.request.urlopen(
            f"{server.url}/metrics", timeout=10
        ) as response:
            metrics_text = response.read().decode()
        if "repro_serve_http_requests" not in metrics_text:
            print("self-test: /metrics missing serve counters", file=out)
            return 1
        if f"repro_drift_{record.model_id}" not in metrics_text:
            print("self-test: /metrics missing drift instruments", file=out)
            return 1

    print(
        f"self-test: ok (model {record.model_id}, {record.n_leaves} "
        f"leaves; {len(probe)} predictions bit-identical over HTTP, "
        f"compiled == recursive; drift verdict {drift.get('verdict')})",
        file=out,
    )
    if workers > 1:
        return _cluster_self_test(
            registry_dir, ref, record, probe, expected, workers, batch, out
        )
    return 0
