"""The serving status document and its renderings.

One function builds the single JSON document behind ``GET /v1/status``
— engine throughput and queue depth, HTTP traffic and exact latency
quantiles, SLO error budgets, per-model drift verdicts with their
transition history, the shadow-evaluation recommendation, registry
contents with aliases, build provenance and telemetry sink stats —
and two renderers turn that same document into the ``/dashboard``
HTML page and the ``repro status`` terminal view.  Everything reads
the document; nothing re-queries live state, so the three surfaces
can never disagree.

The dashboard is deliberately stdlib-only: inline CSS, a
``<meta http-equiv="refresh">`` reload, and ASCII sparklines from
:func:`repro.viz.ascii_plots.sparkline` inside ``<pre>`` blocks — it
must render from a bare ``python -m http.server``-grade environment
with no JavaScript and no external assets.
"""

from __future__ import annotations

import html
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.manifest import build_info
from repro.obs.metrics import get_registry
from repro.obs.prof import Profile, flamegraph_fragment
from repro.viz.ascii_plots import sparkline

__all__ = [
    "STATUS_SCHEMA_VERSION",
    "build_status_document",
    "render_dashboard_html",
    "render_status_text",
]

STATUS_SCHEMA_VERSION = "repro-status-v1"

#: Registry counters surfaced verbatim in the engine section.
_ENGINE_COUNTERS = (
    "requests",
    "rows",
    "batches",
    "errors",
    "validation_failures",
    "drained_requests",
    "monitor_errors",
)


def _metric_values(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """name -> value for label-less counters and gauges."""
    values: Dict[str, Any] = {}
    for record in records:
        if record.get("kind") in ("counter", "gauge") and not record.get(
            "labels"
        ):
            values[record["name"]] = record.get("value")
    return values


def _latency_quantiles(
    records: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Summary records of the serving latency instruments, labels kept."""
    out: List[Dict[str, Any]] = []
    for record in records:
        if record.get("kind") != "summary":
            continue
        if not str(record.get("name", "")).startswith("serve."):
            continue
        out.append(
            {
                "name": record["name"],
                "labels": dict(record.get("labels") or {}),
                "count": record.get("count"),
                "quantiles": dict(record.get("quantiles") or {}),
            }
        )
    return out


def build_status_document(
    registry,
    engine,
    drift=None,
    slo=None,
    events=None,
    recent_latency_s: Optional[Sequence[float]] = None,
    started_unix: Optional[float] = None,
    pipeline=None,
    profiler=None,
    replica: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the ``/v1/status`` document from the serving pieces.

    Every argument beyond the registry/engine pair is optional so the
    document degrades gracefully: no drift hub reports
    ``monitoring: false``, no event log reports ``enabled: false``,
    no pipeline orchestrator reports ``armed: false``.  ``replica``
    (``{"index", "pid", "leader"}``) identifies this process inside a
    :mod:`repro.cluster` group; single-process servers omit it and the
    document carries ``"replica": null``.
    """
    now = time.time()
    records = get_registry().as_records()
    values = _metric_values(records)
    document: Dict[str, Any] = {
        "schema": STATUS_SCHEMA_VERSION,
        "generated_unix": now,
        "uptime_s": (now - started_unix) if started_unix else None,
        "build": build_info(),
        "http": {
            "requests": values.get("serve.http.requests", 0),
            "responses_2xx": values.get("serve.http.responses_2xx", 0),
            "responses_4xx": values.get("serve.http.responses_4xx", 0),
            "responses_5xx": values.get("serve.http.responses_5xx", 0),
            "predictions": values.get("serve.http.predictions", 0),
            "rejected_oversized": values.get(
                "serve.http.rejected_oversized", 0
            ),
            "recent_latency_s": list(recent_latency_s or ()),
        },
        "engine": {
            "running": engine.running,
            "max_batch": engine.batch.max_batch,
            "max_wait_s": engine.batch.max_wait_s,
            "queue_depth": values.get("serve.engine.queue_depth", 0),
            **{
                name: values.get(f"serve.engine.{name}", 0)
                for name in _ENGINE_COUNTERS
            },
        },
        "latency_quantiles": _latency_quantiles(records),
        "models": {
            "count": len(registry),
            "records": [r.as_dict() for r in registry.list_records()],
            "aliases": registry.aliases(),
        },
        "slo": slo.report() if slo is not None else None,
        "drift": (
            drift.status() if drift is not None else {"monitoring": False}
        ),
        "telemetry": (
            {"enabled": True, **events.stats()}
            if events is not None
            else {"enabled": False}
        ),
        "pipeline": (
            pipeline.report() if pipeline is not None else {"armed": False}
        ),
        "profiler": (
            profiler.report()
            if profiler is not None
            else {"available": False}
        ),
        "replica": dict(replica) if replica is not None else None,
    }
    return document


# -- terminal rendering ----------------------------------------------------


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "?"
    if value >= 3600:
        return f"{value / 3600:.1f}h"
    if value >= 60:
        return f"{value / 60:.1f}m"
    return f"{value:.0f}s"


def _fmt_budget(objective: Dict[str, Any]) -> str:
    return (
        f"target {objective['target']:.4g}  "
        f"events {objective['events']}  "
        f"bad {objective['bad_events']}  "
        f"budget {objective['budget_remaining'] * 100:6.1f}%  "
        f"burn {objective['burn_rate']:.2f}x"
    )


def render_status_text(status: Dict[str, Any]) -> str:
    """The ``repro status`` terminal view of one status document."""
    build = status.get("build") or {}
    http = status.get("http") or {}
    engine = status.get("engine") or {}
    lines: List[str] = []
    lines.append(
        f"repro serving status  "
        f"(schema {status.get('schema', '?')}, "
        f"version {build.get('version') or '?'}"
        + (f", git {build['git']}" if build.get("git") else "")
        + f", up {_fmt_seconds(status.get('uptime_s'))})"
    )
    lines.append("")
    lines.append(
        f"http      requests {http.get('requests', 0)}  "
        f"2xx {http.get('responses_2xx', 0)}  "
        f"4xx {http.get('responses_4xx', 0)}  "
        f"5xx {http.get('responses_5xx', 0)}  "
        f"predictions {http.get('predictions', 0)}"
    )
    recent = http.get("recent_latency_s") or []
    if recent:
        lines.append(
            f"latency   last {recent[-1] * 1e3:.2f} ms  "
            f"[{sparkline(recent, width=48)}]"
        )
    lines.append(
        f"engine    running={engine.get('running')}  "
        f"queue {engine.get('queue_depth', 0)}  "
        f"batches {engine.get('batches', 0)}  "
        f"rows {engine.get('rows', 0)}  "
        f"errors {engine.get('errors', 0)}  "
        f"validation_failures {engine.get('validation_failures', 0)}  "
        f"drained {engine.get('drained_requests', 0)}"
    )
    for summary in status.get("latency_quantiles") or []:
        labels = summary.get("labels") or {}
        label_text = ",".join(
            f"{k}={v}" for k, v in sorted(labels.items())
        )
        quantiles = summary.get("quantiles") or {}
        quantile_text = "  ".join(
            f"p{float(q) * 100:g} {value * 1e3:.2f}ms"
            for q, value in sorted(
                quantiles.items(), key=lambda kv: float(kv[0])
            )
        )
        lines.append(
            f"quantiles {summary['name']}"
            + (f"{{{label_text}}}" if label_text else "")
            + f"  n={summary.get('count', 0)}  {quantile_text}"
        )
    slo = status.get("slo")
    if slo:
        lines.append("")
        lines.append(
            f"slo latency ({slo['latency']['threshold_s'] * 1e3:g} ms): "
            + _fmt_budget(slo["latency"])
        )
        lines.append(
            "slo availability:        " + _fmt_budget(slo["availability"])
        )
    models = status.get("models") or {}
    lines.append("")
    lines.append(f"models ({models.get('count', 0)}):")
    aliases = models.get("aliases") or {}
    by_model: Dict[str, List[str]] = {}
    for alias, model_id in aliases.items():
        by_model.setdefault(model_id, []).append(alias)
    for record in models.get("records") or []:
        model_id = record.get("model_id", "?")
        names = ",".join(sorted(by_model.get(model_id, [])))
        lines.append(
            f"  {model_id}  leaves={record.get('n_leaves', '?')}"
            + (f"  aliases={names}" if names else "")
        )
    drift = status.get("drift") or {}
    if drift.get("monitoring"):
        lines.append("")
        lines.append("drift:")
        for model_id, report in (drift.get("models") or {}).items():
            hysteresis = report.get("hysteresis") or {}
            lines.append(
                f"  {model_id}  verdict={report.get('verdict', '?')}  "
                f"evaluations={report.get('evaluations', 0)}  "
                f"records={report.get('records_seen', 0)}  "
                f"breach_streak={hysteresis.get('breach_streak', 0)}  "
                f"clean_streak={hysteresis.get('clean_streak', 0)}"
            )
            for transition in (report.get("transitions") or [])[-3:]:
                lines.append(
                    f"    {transition.get('from')} -> {transition.get('to')}"
                    f"  at record {transition.get('records_seen')}"
                )
        shadow = drift.get("shadow")
        if shadow:
            lines.append(
                f"  shadow: {shadow.get('recommendation', '?')} "
                f"({shadow.get('reason', '')})"
            )
    else:
        lines.append("")
        lines.append("drift: monitoring off")
    pipeline = status.get("pipeline") or {}
    if pipeline.get("armed"):
        buffer = pipeline.get("buffer") or {}
        trigger = pipeline.get("trigger") or {}
        promotions = pipeline.get("promotions") or {}
        lines.append("")
        lines.append(
            f"pipeline  state={pipeline.get('state', '?')}  "
            f"champion={pipeline.get('champion') or '?'}  "
            f"buffer {buffer.get('n', 0)}/{buffer.get('capacity', 0)}  "
            f"trigger fired={trigger.get('fired', 0)} "
            f"suppressed={trigger.get('suppressed', 0)}"
        )
        lines.append(
            f"  promotions: {promotions.get('entries', 0)} "
            f"(chain {'ok' if promotions.get('chain_valid') else 'BROKEN'})"
        )
        for entry in (promotions.get("tail") or [])[-3:]:
            lines.append(
                f"    #{entry.get('seq')} {entry.get('action')}: "
                f"{entry.get('from')} -> {entry.get('to')} "
                f"({entry.get('why')})"
            )
    else:
        lines.append("pipeline: off")
    telemetry = status.get("telemetry") or {}
    if telemetry.get("enabled"):
        lines.append(
            f"telemetry: {telemetry.get('path')}  "
            f"written={telemetry.get('written', 0)}  "
            f"rotations={telemetry.get('rotations', 0)}"
        )
    else:
        lines.append("telemetry: off")
    profiler = status.get("profiler") or {}
    if profiler.get("available"):
        line = (
            f"profiler: captures={profiler.get('captures', 0)}  "
            f"busy={profiler.get('busy', False)}"
        )
        last = profiler.get("last")
        if last:
            top = _top_span(last)
            line += (
                f"  last: {last.get('samples', 0)} passes @"
                f"{last.get('hz', '?')}Hz, "
                f"{float(last.get('attributed_fraction') or 0) * 100:.0f}% "
                "span-attributed"
            )
            if top:
                line += f", top span {top[0]} ({top[1]:.0f}%)"
        lines.append(line)
    else:
        lines.append("profiler: off")
    return "\n".join(lines)


def _top_span(last: Dict[str, Any]) -> Optional[Any]:
    """(span, share_pct) of the busiest span in a capped profile dict."""
    try:
        profile = Profile.from_dict(last)
    except (ValueError, KeyError, TypeError):
        return None
    busy = profile.busy_count
    spans = profile.by_span()
    if not busy or not spans:
        return None
    name, count = next(iter(spans.items()))
    return name, 100.0 * count / busy


# -- the dashboard ---------------------------------------------------------

_CSS = """
body { font-family: monospace; background: #101418; color: #d8dee9;
       margin: 1.5em; }
h1 { font-size: 1.2em; border-bottom: 1px solid #3b4252; }
h2 { font-size: 1.0em; color: #88c0d0; margin-top: 1.2em; }
table { border-collapse: collapse; margin: 0.4em 0; }
td, th { border: 1px solid #3b4252; padding: 0.2em 0.6em;
         text-align: left; font-size: 0.9em; }
th { color: #81a1c1; }
pre { background: #0b0e11; padding: 0.5em; border: 1px solid #3b4252; }
.ok { color: #a3be8c; } .warn { color: #ebcb8b; }
.bad { color: #bf616a; } .muted { color: #616e7f; }
.bar { display: inline-block; height: 0.7em; background: #a3be8c; }
.bar.low { background: #ebcb8b; } .bar.neg { background: #bf616a; }
"""

_VERDICT_CLASSES = {
    "ok": "ok",
    "warn": "warn",
    "transfer_failed": "bad",
    "insufficient_data": "muted",
}

_PIPELINE_CLASSES = {
    "idle": "muted",
    "retraining": "warn",
    "shadowing": "warn",
    "promoting": "warn",
    "promoted": "ok",
    "rejected": "muted",
    "rolled_back": "bad",
}


def _budget_bar(remaining: float) -> str:
    width = max(0.0, min(1.0, remaining)) * 160.0
    css = "bar"
    if remaining < 0.0:
        css, width = "bar neg", 160.0
    elif remaining < 0.25:
        css = "bar low"
    return (
        f'<span class="{css}" style="width:{width:.0f}px"></span>'
        f" {remaining * 100:.1f}%"
    )


def _slo_rows(slo: Dict[str, Any]) -> str:
    rows = []
    for name in ("latency", "availability"):
        objective = slo[name]
        label = name
        if name == "latency":
            label = f"latency &le; {objective['threshold_s'] * 1e3:g} ms"
        rows.append(
            "<tr>"
            f"<td>{label}</td>"
            f"<td>{objective['target']:.4g}</td>"
            f"<td>{objective['events']}</td>"
            f"<td>{objective['bad_events']}</td>"
            f"<td>{_budget_bar(objective['budget_remaining'])}</td>"
            f"<td>{objective['burn_rate']:.2f}x</td>"
            "</tr>"
        )
    return "".join(rows)


def render_dashboard_html(
    status: Dict[str, Any], refresh_s: int = 2
) -> str:
    """The ``/dashboard`` page for one status document.

    Self-refreshing via ``<meta http-equiv="refresh">``; every dynamic
    string is HTML-escaped.  No JavaScript, no external assets.
    """
    build = status.get("build") or {}
    http = status.get("http") or {}
    engine = status.get("engine") or {}
    esc = html.escape
    parts: List[str] = [
        "<!DOCTYPE html><html><head>",
        '<meta charset="utf-8">',
        f'<meta http-equiv="refresh" content="{int(refresh_s)}">',
        "<title>repro serving dashboard</title>",
        f"<style>{_CSS}</style>",
        "</head><body>",
        "<h1>repro serving dashboard</h1>",
        '<p class="muted">'
        f"version {esc(str(build.get('version') or '?'))}"
        + (
            f" &middot; git {esc(str(build['git']))}"
            if build.get("git")
            else ""
        )
        + f" &middot; up {_fmt_seconds(status.get('uptime_s'))}"
        f" &middot; refreshed every {int(refresh_s)}s</p>",
    ]

    parts.append("<h2>traffic</h2><table>")
    parts.append(
        "<tr><th>requests</th><th>2xx</th><th>4xx</th><th>5xx</th>"
        "<th>predictions</th><th>oversized rejected</th></tr>"
    )
    parts.append(
        "<tr>"
        f"<td>{http.get('requests', 0)}</td>"
        f"<td class=\"ok\">{http.get('responses_2xx', 0)}</td>"
        f"<td class=\"warn\">{http.get('responses_4xx', 0)}</td>"
        f"<td class=\"bad\">{http.get('responses_5xx', 0)}</td>"
        f"<td>{http.get('predictions', 0)}</td>"
        f"<td>{http.get('rejected_oversized', 0)}</td>"
        "</tr></table>"
    )
    recent = http.get("recent_latency_s") or []
    if recent:
        parts.append(
            "<pre>recent latency "
            f"(last {recent[-1] * 1e3:.2f} ms)\n"
            f"{esc(sparkline(recent, width=72))}</pre>"
        )

    parts.append("<h2>engine</h2><table>")
    parts.append(
        "<tr><th>running</th><th>queue</th><th>batches</th><th>rows</th>"
        "<th>errors</th><th>validation failures</th><th>drained</th></tr>"
    )
    running = engine.get("running")
    parts.append(
        "<tr>"
        f"<td class=\"{'ok' if running else 'bad'}\">{running}</td>"
        f"<td>{engine.get('queue_depth', 0)}</td>"
        f"<td>{engine.get('batches', 0)}</td>"
        f"<td>{engine.get('rows', 0)}</td>"
        f"<td>{engine.get('errors', 0)}</td>"
        f"<td>{engine.get('validation_failures', 0)}</td>"
        f"<td>{engine.get('drained_requests', 0)}</td>"
        "</tr></table>"
    )

    quantiles = status.get("latency_quantiles") or []
    if quantiles:
        parts.append("<h2>latency quantiles</h2><table>")
        parts.append(
            "<tr><th>instrument</th><th>n</th><th>p50</th>"
            "<th>p95</th><th>p99</th></tr>"
        )
        for summary in quantiles:
            labels = summary.get("labels") or {}
            label_text = ",".join(
                f"{k}={v}" for k, v in sorted(labels.items())
            )
            name = summary["name"] + (
                f"{{{label_text}}}" if label_text else ""
            )
            q = summary.get("quantiles") or {}

            def _cell(key: str) -> str:
                value = q.get(key)
                return (
                    f"{value * 1e3:.2f} ms" if value is not None else "-"
                )

            parts.append(
                "<tr>"
                f"<td>{esc(name)}</td>"
                f"<td>{summary.get('count', 0)}</td>"
                f"<td>{_cell('0.5')}</td>"
                f"<td>{_cell('0.95')}</td>"
                f"<td>{_cell('0.99')}</td>"
                "</tr>"
            )
        parts.append("</table>")

    slo = status.get("slo")
    if slo:
        parts.append("<h2>SLO error budgets</h2><table>")
        parts.append(
            "<tr><th>objective</th><th>target</th><th>events</th>"
            "<th>bad</th><th>budget remaining</th><th>burn rate</th></tr>"
        )
        parts.append(_slo_rows(slo))
        parts.append("</table>")

    models = status.get("models") or {}
    aliases = models.get("aliases") or {}
    by_model: Dict[str, List[str]] = {}
    for alias, model_id in aliases.items():
        by_model.setdefault(model_id, []).append(alias)
    parts.append(f"<h2>models ({models.get('count', 0)})</h2><table>")
    parts.append(
        "<tr><th>model</th><th>aliases</th><th>leaves</th>"
        "<th>features</th></tr>"
    )
    for record in models.get("records") or []:
        model_id = str(record.get("model_id", "?"))
        parts.append(
            "<tr>"
            f"<td>{esc(model_id)}</td>"
            f"<td>{esc(','.join(sorted(by_model.get(model_id, []))) or '-')}"
            "</td>"
            f"<td>{record.get('n_leaves', '?')}</td>"
            f"<td>{esc(','.join(record.get('feature_names') or ()))}</td>"
            "</tr>"
        )
    parts.append("</table>")

    drift = status.get("drift") or {}
    parts.append("<h2>drift</h2>")
    if drift.get("monitoring"):
        parts.append("<table>")
        parts.append(
            "<tr><th>model</th><th>verdict</th><th>evaluations</th>"
            "<th>records</th><th>breach streak</th><th>clean streak</th>"
            "<th>last transitions</th></tr>"
        )
        for model_id, report in (drift.get("models") or {}).items():
            verdict = str(report.get("verdict", "?"))
            css = _VERDICT_CLASSES.get(verdict, "")
            hysteresis = report.get("hysteresis") or {}
            transitions = " ; ".join(
                f"{t.get('from')}&rarr;{t.get('to')}@{t.get('records_seen')}"
                for t in (report.get("transitions") or [])[-3:]
            )
            parts.append(
                "<tr>"
                f"<td>{esc(model_id)}</td>"
                f"<td class=\"{css}\">{esc(verdict)}</td>"
                f"<td>{report.get('evaluations', 0)}</td>"
                f"<td>{report.get('records_seen', 0)}</td>"
                f"<td>{hysteresis.get('breach_streak', 0)}</td>"
                f"<td>{hysteresis.get('clean_streak', 0)}</td>"
                f"<td>{transitions or '-'}</td>"
                "</tr>"
            )
        parts.append("</table>")
        shadow = drift.get("shadow")
        if shadow:
            parts.append(
                '<p>shadow: <span class="'
                + (
                    "ok"
                    if shadow.get("recommendation") == "promote_challenger"
                    else "muted"
                )
                + f'">{esc(str(shadow.get("recommendation", "?")))}</span>'
                f" &mdash; {esc(str(shadow.get('reason', '')))}</p>"
            )
    else:
        parts.append('<p class="muted">monitoring off</p>')

    pipeline = status.get("pipeline") or {}
    parts.append("<h2>pipeline</h2>")
    if pipeline.get("armed"):
        state = str(pipeline.get("state", "?"))
        css = _PIPELINE_CLASSES.get(state, "")
        buffer = pipeline.get("buffer") or {}
        trigger = pipeline.get("trigger") or {}
        promotions = pipeline.get("promotions") or {}
        chain_ok = bool(promotions.get("chain_valid"))
        parts.append(
            f'<p>state <span class="{css}">{esc(state)}</span>'
            f" &middot; champion {esc(str(pipeline.get('champion') or '?'))}"
            f" &middot; buffer {buffer.get('n', 0)}/"
            f"{buffer.get('capacity', 0)} rows"
            f" &middot; trigger fired={trigger.get('fired', 0)}"
            f" suppressed={trigger.get('suppressed', 0)}"
            f" &middot; chain <span class=\"{'ok' if chain_ok else 'bad'}\">"
            f"{'verified' if chain_ok else 'BROKEN'}</span></p>"
        )
        tail = promotions.get("tail") or []
        if tail:
            parts.append("<table>")
            parts.append(
                "<tr><th>#</th><th>action</th><th>from</th><th>to</th>"
                "<th>why</th></tr>"
            )
            for entry in tail[-5:]:
                parts.append(
                    "<tr>"
                    f"<td>{entry.get('seq')}</td>"
                    f"<td>{esc(str(entry.get('action')))}</td>"
                    f"<td>{esc(str(entry.get('from')))}</td>"
                    f"<td>{esc(str(entry.get('to')))}</td>"
                    f"<td>{esc(str(entry.get('why')))}</td>"
                    "</tr>"
                )
            parts.append("</table>")
    else:
        parts.append('<p class="muted">pipeline off</p>')

    profiler = status.get("profiler") or {}
    parts.append("<h2>profiler</h2>")
    if profiler.get("available"):
        last = profiler.get("last")
        if last:
            top = _top_span(last)
            parts.append(
                f"<p>{profiler.get('captures', 0)} capture(s) &middot; "
                f"last: {last.get('samples', 0)} passes at "
                f"{last.get('hz', '?')} Hz over "
                f"{float(last.get('duration_s') or 0):.1f}s &middot; "
                f"{float(last.get('attributed_fraction') or 0) * 100:.0f}% "
                "span-attributed"
                + (f" &middot; top span {esc(str(top[0]))}" if top else "")
                + "</p>"
            )
            try:
                parts.append(flamegraph_fragment(Profile.from_dict(last)))
            except (ValueError, KeyError, TypeError):
                parts.append(
                    '<p class="muted">last profile unrenderable</p>'
                )
        else:
            parts.append(
                '<p class="muted">no captures yet &mdash; '
                "GET /v1/profile/cpu?seconds=2 takes one</p>"
            )
    else:
        parts.append('<p class="muted">profiler off</p>')
    telemetry = status.get("telemetry") or {}
    if telemetry.get("enabled"):
        parts.append(
            '<p class="muted">telemetry: '
            f"{esc(str(telemetry.get('path')))} "
            f"written={telemetry.get('written', 0)} "
            f"rotations={telemetry.get('rotations', 0)}</p>"
        )
    else:
        parts.append('<p class="muted">telemetry: off</p>')
    parts.append("</body></html>")
    return "".join(parts)
