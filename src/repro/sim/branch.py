"""Two-bit bimodal branch predictor."""

from __future__ import annotations

from typing import Dict, Iterable

__all__ = ["BimodalPredictor"]


class BimodalPredictor:
    """A table of saturating two-bit counters indexed by branch PC.

    Counter states 0-1 predict not-taken, 2-3 predict taken; the
    counter moves toward the actual outcome on every resolution —
    Smith's classic scheme, a reasonable stand-in for the Core 2's
    (much fancier) predictor at the fidelity this library needs.
    """

    def __init__(self, table_entries: int = 4096) -> None:
        if table_entries <= 0 or table_entries & (table_entries - 1):
            raise ValueError(
                f"table size must be a positive power of two, got {table_entries}"
            )
        self.table_entries = table_entries
        self._mask = table_entries - 1
        self._counters: Dict[int, int] = {}
        self.branches = 0
        self.mispredicts = 0

    def reset_counters(self) -> None:
        self.branches = 0
        self.mispredicts = 0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    def resolve(self, pc: int, taken: bool) -> bool:
        """Predict and update one branch; returns True if predicted right."""
        index = pc & self._mask
        counter = self._counters.get(index, 2)  # weakly taken initially
        predicted_taken = counter >= 2
        correct = predicted_taken == taken
        self.branches += 1
        if not correct:
            self.mispredicts += 1
        if taken and counter < 3:
            counter += 1
        elif not taken and counter > 0:
            counter -= 1
        self._counters[index] = counter
        return correct

    def resolve_many(self, pcs: Iterable[int], outcomes: Iterable[bool]) -> int:
        """Resolve a stream; returns the number of mispredicts."""
        before = self.mispredicts
        for pc, taken in zip(pcs, outcomes):
            self.resolve(int(pc), bool(taken))
        return self.mispredicts - before
