"""Synthetic address and branch streams.

Each generator returns an integer numpy array of byte addresses with a
characteristic locality structure — the access-pattern vocabulary that
the SPEC codes are commonly described with:

* ``sequential_stream`` — unit-stride streaming over a large array
  (470.lbm-style sweeps): perfect spatial locality, no temporal reuse.
* ``strided_stream`` — fixed-stride accesses (column-major matrix
  walks): spatial locality controlled by the stride/line ratio.
* ``random_working_set_stream`` — uniform accesses within a working
  set (hash tables): hit rate controlled by working-set size vs cache.
* ``pointer_chase_stream`` — a random permutation cycle over a large
  region (429.mcf-style linked structures): no spatial locality and no
  short-term reuse.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sequential_stream",
    "strided_stream",
    "random_working_set_stream",
    "pointer_chase_stream",
    "interleave_streams",
]


def _check(n: int, region_bytes: int) -> None:
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if region_bytes <= 0:
        raise ValueError(f"region_bytes must be positive, got {region_bytes}")


def sequential_stream(
    n: int, region_bytes: int, element_bytes: int = 8, base: int = 0
) -> np.ndarray:
    """Unit-stride sweep over a region, wrapping around."""
    _check(n, region_bytes)
    offsets = (np.arange(n, dtype=np.int64) * element_bytes) % region_bytes
    return base + offsets


def strided_stream(
    n: int, region_bytes: int, stride_bytes: int, base: int = 0
) -> np.ndarray:
    """Fixed-stride walk over a region, wrapping around."""
    _check(n, region_bytes)
    if stride_bytes <= 0:
        raise ValueError(f"stride_bytes must be positive, got {stride_bytes}")
    offsets = (np.arange(n, dtype=np.int64) * stride_bytes) % region_bytes
    return base + offsets


def random_working_set_stream(
    n: int,
    working_set_bytes: int,
    rng: np.random.Generator,
    element_bytes: int = 8,
    base: int = 0,
) -> np.ndarray:
    """Uniform random accesses within a working set."""
    _check(n, working_set_bytes)
    n_elements = max(working_set_bytes // element_bytes, 1)
    indices = rng.integers(0, n_elements, size=n)
    return base + indices * element_bytes


def interleave_streams(*streams: np.ndarray) -> np.ndarray:
    """Round-robin interleave several equal-length streams.

    Models code whose inner loop touches several structures per
    iteration (e.g. a stream of matrix data plus an index array).
    """
    if not streams:
        raise ValueError("at least one stream is required")
    arrays = [np.asarray(s, dtype=np.int64) for s in streams]
    length = arrays[0].size
    if any(a.size != length for a in arrays) or length == 0:
        raise ValueError("streams must be non-empty and of equal length")
    out = np.empty(length * len(arrays), dtype=np.int64)
    for i, a in enumerate(arrays):
        out[i :: len(arrays)] = a
    return out


def pointer_chase_stream(
    n: int,
    region_bytes: int,
    rng: np.random.Generator,
    node_bytes: int = 64,
    base: int = 0,
) -> np.ndarray:
    """Follow a random permutation cycle of nodes (linked-list walk).

    Every node is visited before any repeats: the worst case for both
    caches and TLBs once the region exceeds their reach.
    """
    _check(n, region_bytes)
    n_nodes = max(region_bytes // node_bytes, 2)
    order = rng.permutation(n_nodes)
    # next[order[i]] = order[i+1]: one big cycle.
    next_node = np.empty(n_nodes, dtype=np.int64)
    next_node[order] = np.roll(order, -1)
    addresses = np.empty(n, dtype=np.int64)
    node = int(order[0])
    for i in range(n):
        addresses[i] = base + node * node_bytes
        node = int(next_node[node])
    return addresses
