"""Event-level microarchitecture simulation.

The main pipeline *specifies* per-phase event densities; this package
*derives* them, the way the paper's hardware did: synthetic address
and branch streams run through structural models of the Core 2's
caches, TLB and branch predictor, and the miss/mispredict densities
fall out.  Experiment E20 uses it to validate that the density vectors
the workload specs assert are actually producible by concrete access
patterns on the modeled structures.

* :mod:`repro.sim.streams` — synthetic address/branch stream generators
  (sequential streaming, strided, random-in-working-set, pointer chase).
* :mod:`repro.sim.cache` — set-associative LRU cache model.
* :mod:`repro.sim.tlb` — fully-associative LRU TLB model.
* :mod:`repro.sim.branch` — two-bit bimodal branch predictor.
* :mod:`repro.sim.engine` — runs a stream mix through the hierarchy
  and reports Table I-style densities.
"""

from repro.sim.branch import BimodalPredictor
from repro.sim.cache import SetAssociativeCache
from repro.sim.engine import SimulatedPhase, simulate_phase
from repro.sim.streams import (
    pointer_chase_stream,
    random_working_set_stream,
    sequential_stream,
    strided_stream,
)
from repro.sim.tlb import Tlb

__all__ = [
    "BimodalPredictor",
    "SetAssociativeCache",
    "SimulatedPhase",
    "Tlb",
    "pointer_chase_stream",
    "random_working_set_stream",
    "sequential_stream",
    "simulate_phase",
    "strided_stream",
]
