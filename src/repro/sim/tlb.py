"""Fully-associative LRU translation lookaside buffer."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

__all__ = ["Tlb"]


class Tlb:
    """A fully-associative LRU TLB over fixed-size pages.

    The Core 2's second-level DTLB holds 256 4-KiB entries; a miss
    triggers a page walk (counted one-for-one, matching the PageWalk
    event of Table I).
    """

    def __init__(self, entries: int = 256, page_bytes: int = 4096) -> None:
        if entries <= 0:
            raise ValueError(f"entries must be positive, got {entries}")
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise ValueError(
                f"page size must be a positive power of two, got {page_bytes}"
            )
        self.entries = entries
        self.page_bytes = page_bytes
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.accesses = 0
        self.misses = 0

    def reset_counters(self) -> None:
        self.accesses = 0
        self.misses = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def access(self, address: int) -> bool:
        """Translate one address; returns True on TLB hit."""
        page = address // self.page_bytes
        self.accesses += 1
        if page in self._pages:
            self._pages.move_to_end(page)
            return True
        self.misses += 1
        self._pages[page] = None
        if len(self._pages) > self.entries:
            self._pages.popitem(last=False)
        return False

    def access_many(self, addresses: Iterable[int]) -> int:
        before = self.misses
        for address in addresses:
            self.access(int(address))
        return self.misses - before
