"""Set-associative cache with LRU replacement.

A faithful structural model: addresses are split into line offset, set
index and tag; each set holds ``ways`` tags in recency order.  Accesses
are processed one at a time (LRU state is inherently sequential), with
the bookkeeping kept light enough for the 10^4-10^5-access windows the
validation experiment uses.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

__all__ = ["SetAssociativeCache"]


class SetAssociativeCache:
    """An LRU set-associative cache.

    Parameters
    ----------
    size_bytes:
        Total capacity (must be ``line_bytes * ways * n_sets`` with a
        power-of-two set count).
    line_bytes:
        Cache line size.
    ways:
        Associativity.
    """

    def __init__(self, size_bytes: int, line_bytes: int = 64, ways: int = 8) -> None:
        if size_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("size, line size and ways must be positive")
        if size_bytes % (line_bytes * ways) != 0:
            raise ValueError(
                f"size {size_bytes} is not divisible by line*ways = "
                f"{line_bytes * ways}"
            )
        n_sets = size_bytes // (line_bytes * ways)
        if n_sets & (n_sets - 1):
            raise ValueError(f"set count {n_sets} is not a power of two")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = n_sets
        self._set_mask = n_sets - 1
        self._line_shift = int(np.log2(line_bytes))
        if (1 << self._line_shift) != line_bytes:
            raise ValueError(f"line size {line_bytes} is not a power of two")
        # One recency-ordered tag list per set (most recent last).
        self._sets: List[List[int]] = [[] for _ in range(n_sets)]
        self.accesses = 0
        self.misses = 0

    def reset_counters(self) -> None:
        self.accesses = 0
        self.misses = 0

    @property
    def miss_rate(self) -> float:
        """Misses per access since the last counter reset."""
        return self.misses / self.accesses if self.accesses else 0.0

    def access(self, address: int) -> bool:
        """Access one address; returns True on hit."""
        line = address >> self._line_shift
        set_index = line & self._set_mask
        tag = line >> int(np.log2(self.n_sets)) if self.n_sets > 1 else line
        ways = self._sets[set_index]
        self.accesses += 1
        try:
            ways.remove(tag)
            ways.append(tag)  # promote to most recent
            return True
        except ValueError:
            self.misses += 1
            ways.append(tag)
            if len(ways) > self.ways:
                ways.pop(0)  # evict least recent
            return False

    def access_many(self, addresses: Iterable[int]) -> int:
        """Access a sequence; returns the number of misses."""
        before = self.misses
        for address in addresses:
            self.access(int(address))
        return self.misses - before
