"""Running stream mixes through the modeled hierarchy.

``simulate_phase`` takes a description of a phase's instruction mix
and memory behaviour (load/store/branch fractions, an address stream,
branch taken-probability), pushes the accesses through L1D -> L2 and
the DTLB, resolves the branches against the bimodal predictor, and
returns Table I-style per-instruction densities.  The Core 2-shaped
structure defaults (32 KiB 8-way L1D, 4 MiB 16-way L2, 256-entry
DTLB) match :data:`repro.uarch.machine.CORE2_DUO`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.sim.branch import BimodalPredictor
from repro.sim.cache import SetAssociativeCache
from repro.sim.tlb import Tlb

__all__ = ["SimulatedPhase", "simulate_phase"]


@dataclass(frozen=True)
class SimulatedPhase:
    """Densities measured by simulating one phase window.

    ``densities`` holds per-instruction rates for the events the
    structural models produce (Load, Store, Br, L1DMiss, L2Miss,
    DtlbMiss, PageWalk, MisprBr); all other Table I events are workload
    properties the simulator does not model and are reported as absent.
    """

    n_instructions: int
    n_accesses: int
    densities: Dict[str, float]

    def density(self, event: str) -> float:
        return self.densities.get(event, 0.0)


def simulate_phase(
    addresses: np.ndarray,
    rng: np.random.Generator,
    load_fraction: float = 0.3,
    store_fraction: float = 0.1,
    branch_fraction: float = 0.16,
    branch_taken_probability: float = 0.6,
    n_branch_sites: int = 64,
    l1d: Optional[SetAssociativeCache] = None,
    l2: Optional[SetAssociativeCache] = None,
    dtlb: Optional[Tlb] = None,
    predictor: Optional[BimodalPredictor] = None,
    warmup_fraction: float = 0.25,
) -> SimulatedPhase:
    """Simulate one phase window and return measured densities.

    ``addresses`` is the memory-access stream (loads and stores share
    it, in proportion to their fractions).  The leading
    ``warmup_fraction`` of accesses primes the structures without being
    counted — the same cold-start discard a real sampling run performs
    by ignoring the first intervals.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.ndim != 1 or addresses.size == 0:
        raise ValueError("addresses must be a non-empty 1-D array")
    memory_fraction = load_fraction + store_fraction
    if not 0.0 < memory_fraction <= 1.0:
        raise ValueError(
            f"load+store fraction must be in (0, 1], got {memory_fraction}"
        )
    if not 0.0 <= branch_fraction <= 1.0 - memory_fraction + 1e-9:
        raise ValueError("instruction-mix fractions exceed 1")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
        )

    l1d = l1d or SetAssociativeCache(32 * 1024, line_bytes=64, ways=8)
    l2 = l2 or SetAssociativeCache(4 * 1024 * 1024, line_bytes=64, ways=16)
    dtlb = dtlb or Tlb(entries=256)
    predictor = predictor or BimodalPredictor()

    warmup = int(addresses.size * warmup_fraction)
    for address in addresses[:warmup]:
        if not l1d.access(int(address)):
            l2.access(int(address))
        dtlb.access(int(address))
    l1d.reset_counters()
    l2.reset_counters()
    dtlb.reset_counters()

    measured = addresses[warmup:]
    for address in measured:
        if not l1d.access(int(address)):
            l2.access(int(address))
        dtlb.access(int(address))

    # The instruction window implied by the measured accesses.
    n_instructions = max(int(round(measured.size / memory_fraction)), 1)
    n_branches = int(round(n_instructions * branch_fraction))
    if n_branches:
        pcs = rng.integers(0, n_branch_sites, size=n_branches)
        outcomes = rng.random(n_branches) < branch_taken_probability
        predictor.reset_counters()
        predictor.resolve_many(pcs, outcomes)

    densities = {
        "Load": load_fraction,
        "Store": store_fraction,
        "Br": branch_fraction,
        "L1DMiss": l1d.misses * (load_fraction / memory_fraction) / n_instructions,
        "L2Miss": l2.misses * (load_fraction / memory_fraction) / n_instructions,
        "DtlbMiss": dtlb.misses / n_instructions,
        "PageWalk": dtlb.misses / n_instructions,
        "MisprBr": (predictor.mispredicts / n_instructions) if n_branches else 0.0,
    }
    return SimulatedPhase(
        n_instructions=n_instructions,
        n_accesses=int(measured.size),
        densities=densities,
    )
