"""Command-line interface: ``repro <experiment-id> [...]``.

Examples::

    repro E3                 # regenerate Table II
    repro all                # run the full battery
    repro E7 --scale 0.25    # quarter-size quick run
    repro list               # show the experiment index
    repro E7 --trace trace.jsonl   # run with hierarchical tracing
    repro trace-summary trace.jsonl  # render an exported trace
    repro E7 --profile prof.json   # run under the sampling profiler
    repro profile-summary prof.json  # top functions, spans, self/cumul
    repro profile --url http://127.0.0.1:8080 > live.folded  # live capture
    repro perf record              # ledger entries from BENCH snapshots
    repro perf log                 # the benchmark result time series
    repro perf check               # noise-aware perf-regression gate
    repro publish cpu2006 --registry ./models   # train + register a model
    repro serve --registry ./models --port 8080 # serve it over HTTP
    repro monitor cpu2006            # stream held-out traffic, watch drift
    repro monitor cpu2006 omp2001    # cross-suite traffic -> transfer fails
    repro serve --registry ./models --shadow cand1  # champion/challenger
    repro serve --registry ./models --events events.jsonl  # + telemetry
    repro status --url http://127.0.0.1:8080        # one status snapshot
    repro status --watch                            # live terminal view
    repro serve --registry ./models --pipeline      # arm the MLOps loop
    repro pipeline run cpu2006 omp2001   # replay detect->retrain->promote
    repro promotions --registry ./models            # audit trail + verify
    repro rollback --registry ./models              # undo the last flip
    repro registry gc --registry ./models --dry-run # plan artifact cleanup
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.config import ExperimentConfig
from repro.experiments.context import ExperimentContext
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["main"]

_TITLES = {
    "E1": "Table I (metric catalog)",
    "E2": "Figure 1 (CPU2006 model tree)",
    "E3": "Table II (CPU2006 profiles)",
    "E4": "Table III (CPU2006 similarity)",
    "E5": "Figure 2 (OMP2001 model tree)",
    "E6": "Table IV (OMP2001 profiles)",
    "E7": "Section VI.A (transfer t-tests)",
    "E8": "Section VI.B (transfer metrics)",
    "E9": "Ablation (model families)",
    "E10": "Ablation (tree design / pipeline)",
    "E11": "Extension (benchmark subsetting strategies)",
    "E12": "Extension (M5' parameter tuning frontier)",
    "E13": "Extension (per-event CPI attribution)",
    "E14": "Extension (seed robustness of transferability)",
    "E15": "Extension (generational transfer: CPU2006 -> CPU2000)",
    "E16": "Extension (structural model dissimilarity)",
    "E17": "Extension (phase-detection quality)",
    "E18": "Extension (per-benchmark cross-suite error)",
    "E19": "Extension (cross-machine transferability)",
    "E20": "Extension (event-level simulation validation)",
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the tables and figures of 'Characterization of "
            "SPEC CPU2006 and SPEC OMP2001' (ISPASS 2008)"
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=(
            "experiment ids (E1..E20), 'all', 'list', 'report', "
            "'catalog <suite>', 'describe <benchmark>', 'rules <suite>', "
            "'dot <suite>', 'export <suite> <path>', "
            "'trace-summary <trace.jsonl>', 'publish <suite>', 'serve', "
            "'status', 'monitor <model-suite> [<traffic-suite>]', "
            "'pipeline run <train-suite> <traffic-suite>', 'promotions', "
            "'rollback', 'registry gc', 'profile', "
            "'profile-summary <prof.json>', 'perf record|log|check', "
            "or 'loadbench'"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="scale factor on sample counts (default 1.0)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the master seed"
    )
    parser.add_argument(
        "--output",
        default="repro_report.md",
        help="output path for 'report' (default repro_report.md)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache generated suite data in this directory",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run experiments across N worker processes; stdout is "
            "byte-identical to the serial run, per-experiment timings "
            "go to stderr"
        ),
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "enable hierarchical tracing and write spans, metrics and "
            "the run manifest to PATH as JSONL (stdout is unchanged; "
            "inspect with 'repro trace-summary PATH')"
        ),
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the process metrics registry to stderr after the run",
    )
    profiling = parser.add_argument_group(
        "profiling & perf ledger ('profile', 'profile-summary', 'perf', "
        "and --profile on runs)"
    )
    profiling.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        dest="profile",
        help=(
            "sample the run's CPU at --profile-hz and write the profile "
            "to PATH as JSON (mirrors --trace; works on experiment runs "
            "and 'serve'; inspect with 'repro profile-summary PATH')"
        ),
    )
    profiling.add_argument(
        "--profile-hz",
        type=int,
        default=99,
        metavar="HZ",
        help="sampling rate for --profile and 'profile' (default 99)",
    )
    profiling.add_argument(
        "--seconds",
        type=float,
        default=2.0,
        metavar="S",
        help="profile: remote capture window in seconds (default 2)",
    )
    profiling.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="perf: ledger file (default benchmarks/LEDGER.jsonl)",
    )
    profiling.add_argument(
        "--last",
        type=int,
        default=10,
        metavar="N",
        help="perf log: ledger entries to show (default 10)",
    )
    serving = parser.add_argument_group("serving ('publish' and 'serve')")
    serving.add_argument(
        "--registry",
        default=None,
        metavar="DIR",
        help="model registry directory (required for publish/serve)",
    )
    serving.add_argument(
        "--alias",
        action="append",
        default=None,
        metavar="NAME",
        help="alias(es) to point at a published model (default: latest)",
    )
    serving.add_argument(
        "--host", default="127.0.0.1", help="serve: bind address"
    )
    serving.add_argument(
        "--port",
        type=int,
        default=8080,
        help="serve: TCP port (0 picks an ephemeral port)",
    )
    serving.add_argument(
        "--max-batch",
        type=int,
        default=256,
        metavar="N",
        help="serve: max rows coalesced into one prediction batch",
    )
    serving.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help="serve: max time the head request waits for a batch to fill",
    )
    serving.add_argument(
        "--self-test",
        action="store_true",
        help=(
            "serve: boot on an ephemeral port, round-trip one predict "
            "request, verify bit-identical results, exit (with "
            "--workers N, also self-test through an N-replica cluster)"
        ),
    )
    serving.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "serve: fork N replica processes sharing the host:port "
            "(SO_REUSEPORT where available); replica 0 leads the "
            "pipeline (default 1 = single process)"
        ),
    )
    serving.add_argument(
        "--admin-port",
        type=int,
        default=None,
        metavar="N",
        help=(
            "serve --workers: also serve aggregated cluster /metrics "
            "and /v1/status from the supervisor on this port "
            "(0 picks an ephemeral port)"
        ),
    )
    serving.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help=(
            "serve: append per-request telemetry (stage timelines, "
            "X-Repro-Trace ids) to PATH as rotating JSONL"
        ),
    )
    serving.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        metavar="URL",
        help="status: base URL of a running server (default %(default)s)",
    )
    serving.add_argument(
        "--watch",
        action="store_true",
        help="status: refresh the view continuously until Ctrl-C",
    )
    serving.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="status: seconds between --watch refreshes (default 2)",
    )
    loadbench = parser.add_argument_group("load harness ('loadbench')")
    loadbench.add_argument(
        "--mode",
        choices=("closed", "open"),
        default="closed",
        help=(
            "loadbench: closed loop (K connections + think time, "
            "measures capacity) or open loop (Poisson arrivals at "
            "--rate, measures latency at an offered rate; default "
            "closed)"
        ),
    )
    loadbench.add_argument(
        "--duration",
        type=float,
        default=10.0,
        metavar="S",
        help="loadbench: seconds of load per run (default 10)",
    )
    loadbench.add_argument(
        "--connections",
        type=int,
        default=4,
        metavar="K",
        help=(
            "loadbench: concurrent connections (closed) or sender "
            "pool size (open; default 4)"
        ),
    )
    loadbench.add_argument(
        "--rate",
        type=float,
        default=100.0,
        metavar="R",
        help="loadbench --mode open: offered arrival rate, req/s",
    )
    loadbench.add_argument(
        "--think-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="loadbench --mode closed: think time between requests",
    )
    loadbench.add_argument(
        "--batch-rows",
        type=int,
        default=64,
        metavar="N",
        help="loadbench: rows per predict request (default 64)",
    )
    drift = parser.add_argument_group("drift monitoring ('monitor', 'serve')")
    drift.add_argument(
        "--window",
        type=int,
        default=256,
        metavar="N",
        help="drift window size in records (default 256)",
    )
    drift.add_argument(
        "--stream-batch",
        type=int,
        default=64,
        metavar="N",
        help="monitor: records per replayed traffic batch (default 64)",
    )
    drift.add_argument(
        "--model",
        default=None,
        metavar="REF",
        help=(
            "monitor: watch this registry model (with --registry) instead "
            "of training one from the suite"
        ),
    )
    drift.add_argument(
        "--audit",
        default=None,
        metavar="PATH",
        help="append every drift evaluation to PATH as JSONL",
    )
    drift.add_argument(
        "--no-monitor",
        action="store_true",
        help="serve: disable online drift monitoring",
    )
    drift.add_argument(
        "--shadow",
        default=None,
        metavar="REF",
        help=(
            "serve: evaluate this challenger model on the champion's "
            "live traffic"
        ),
    )
    drift.add_argument(
        "--shadow-champion",
        default="latest",
        metavar="REF",
        help="serve: the champion the challenger shadows (default: latest)",
    )
    pipeline = parser.add_argument_group(
        "MLOps pipeline ('pipeline run', 'rollback', 'promotions', "
        "'registry gc', 'serve')"
    )
    pipeline.add_argument(
        "--pipeline",
        action="store_true",
        help=(
            "serve: arm the retrain/shadow/promote loop on the drift "
            "monitor (requires monitoring)"
        ),
    )
    pipeline.add_argument(
        "--max-records",
        type=int,
        default=8192,
        metavar="N",
        help=(
            "pipeline run: stop the replay after N traffic records "
            "(default 8192)"
        ),
    )
    pipeline.add_argument(
        "--to",
        default=None,
        metavar="MODEL_ID",
        help=(
            "rollback: restore this model id instead of the promotion "
            "trail's prior model"
        ),
    )
    pipeline.add_argument(
        "--why",
        default=None,
        metavar="TEXT",
        help="rollback: reason recorded on the promotion trail",
    )
    pipeline.add_argument(
        "--dry-run",
        action="store_true",
        help="registry gc: report what would be removed without deleting",
    )
    return parser


_SUITES = {"cpu2006": "cpu2006", "omp2001": "omp2001", "cpu2000": "cpu2000"}


def _config_from_args(args) -> ExperimentConfig:
    """The battery configuration implied by --seed/--scale."""
    config = ExperimentConfig()
    if args.seed is not None:
        config = ExperimentConfig(
            cpu_samples=config.cpu_samples,
            omp_samples=config.omp_samples,
            seed=args.seed,
        )
    if args.scale != 1.0:
        config = config.scaled(args.scale)
    return config


def _suite_by_name(name: str):
    from repro.workloads import spec_cpu2000, spec_cpu2006, spec_omp2001

    factories = {
        "cpu2006": spec_cpu2006,
        "omp2001": spec_omp2001,
        "cpu2000": spec_cpu2000,
    }
    key = name.lower()
    if key not in factories:
        raise KeyError(f"unknown suite {name!r}; have {sorted(factories)}")
    return factories[key]()


def _run_subcommand(args) -> Optional[int]:
    """Handle 'catalog', 'dot' and 'export'; None means not handled."""
    words = [w for w in args.experiments]
    command = words[0].lower()
    if command == "catalog":
        if len(words) != 2:
            print("usage: repro catalog <cpu2006|omp2001|cpu2000>",
                  file=sys.stderr)
            return 2
        from repro.workloads.catalog import format_suite_catalog

        try:
            print(format_suite_catalog(_suite_by_name(words[1])))
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2
        return 0
    if command == "dot":
        if len(words) != 2 or words[1].lower() not in ("cpu2006", "omp2001"):
            print("usage: repro dot <cpu2006|omp2001>", file=sys.stderr)
            return 2
        from repro.experiments.context import ExperimentContext
        from repro.mtree.render import render_dot

        ctx = ExperimentContext(ExperimentConfig().scaled(args.scale))
        which = words[1].lower()
        print(render_dot(ctx.tree(which), title=ctx.suite_label(which)))
        return 0
    if command == "rules":
        if len(words) != 2 or words[1].lower() not in ("cpu2006", "omp2001"):
            print("usage: repro rules <cpu2006|omp2001>", file=sys.stderr)
            return 2
        from repro.experiments.context import ExperimentContext
        from repro.mtree.rules import render_rules

        ctx = ExperimentContext(ExperimentConfig().scaled(args.scale))
        print(render_rules(ctx.tree(words[1].lower())))
        return 0
    if command == "quality":
        if len(words) != 2:
            print("usage: repro quality <cpu2006|omp2001|cpu2000>",
                  file=sys.stderr)
            return 2
        from repro.pmu.collector import PmuCollector
        from repro.pmu.diagnostics import (
            data_quality_report,
            format_quality_table,
        )
        from repro.workloads.suite import SuiteGenerationConfig

        config = ExperimentConfig().scaled(args.scale)
        try:
            suite = _suite_by_name(words[1])
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2
        data = suite.generate(
            SuiteGenerationConfig(
                total_samples=config.cpu_samples, seed=config.seed
            )
        )
        print(format_quality_table(data_quality_report(data, PmuCollector())))
        return 0
    if command == "describe":
        if len(words) != 2:
            print("usage: repro describe <benchmark>", file=sys.stderr)
            return 2
        return _describe_benchmark(words[1], args)
    if command == "publish":
        if len(words) != 2 or words[1].lower() not in ("cpu2006", "omp2001"):
            print(
                "usage: repro publish <cpu2006|omp2001> --registry DIR",
                file=sys.stderr,
            )
            return 2
        if args.registry is None:
            print("publish: --registry DIR is required", file=sys.stderr)
            return 2
        from repro.serve.publish import publish_from_config
        from repro.serve.registry import ModelRegistry

        registry = ModelRegistry(args.registry)
        record = publish_from_config(
            registry,
            words[1].lower(),
            config=_config_from_args(args),
            cache_dir=args.cache_dir,
            aliases=tuple(args.alias) if args.alias else ("latest",),
            argv=["repro", *words],
        )
        aliases = ", ".join(args.alias) if args.alias else "latest"
        print(
            f"published {record.model_id} ({record.n_leaves} leaves, "
            f"{record.n_features} features, suite "
            f"{record.metadata.get('suite')}) -> {aliases}"
        )
        return 0
    if command == "serve":
        if len(words) != 1:
            print("usage: repro serve --registry DIR [--port N]",
                  file=sys.stderr)
            return 2
        if args.registry is None:
            print("serve: --registry DIR is required", file=sys.stderr)
            return 2
        return _serve(args)
    if command == "status":
        if len(words) != 1:
            print(
                "usage: repro status [--url URL] [--watch] [--interval S]",
                file=sys.stderr,
            )
            return 2
        return _status(args)
    if command == "loadbench":
        if len(words) != 1:
            print(
                "usage: repro loadbench [--url URL] [--mode closed|open] "
                "[--duration S] [--connections K] [--rate R] "
                "[--think-ms MS] [--batch-rows N] [--model REF]",
                file=sys.stderr,
            )
            return 2
        return _loadbench(args)
    if command == "monitor":
        suites = ("cpu2006", "omp2001", "cpu2000")
        if len(words) not in (2, 3):
            print(
                "usage: repro monitor <model-suite> [<traffic-suite>]  or  "
                "repro monitor <traffic-suite> --registry DIR --model REF",
                file=sys.stderr,
            )
            return 2
        unknown = [w for w in words[1:] if w.lower() not in suites]
        if unknown:
            print(
                f"monitor: unknown suite {unknown[0]!r}; have {list(suites)}",
                file=sys.stderr,
            )
            return 2
        if args.model is not None and args.registry is None:
            print("monitor: --model requires --registry DIR", file=sys.stderr)
            return 2
        if args.model is not None and len(words) != 2:
            print(
                "monitor: with --model, give exactly one traffic suite",
                file=sys.stderr,
            )
            return 2
        return _monitor(args, [w.lower() for w in words[1:]])
    if command == "pipeline":
        suites = ("cpu2006", "omp2001", "cpu2000")
        if (
            len(words) != 4
            or words[1].lower() != "run"
            or words[2].lower() not in suites
            or words[3].lower() not in suites
        ):
            print(
                "usage: repro pipeline run <train-suite> <traffic-suite> "
                "[--registry DIR] [--window N] [--max-records N]",
                file=sys.stderr,
            )
            return 2
        return _pipeline_run(args, words[2].lower(), words[3].lower())
    if command == "promotions":
        if len(words) != 1 or args.registry is None:
            print(
                "usage: repro promotions --registry DIR", file=sys.stderr
            )
            return 2
        return _promotions(args)
    if command == "rollback":
        if len(words) != 1 or args.registry is None:
            print(
                "usage: repro rollback --registry DIR [--to MODEL_ID] "
                "[--why TEXT]",
                file=sys.stderr,
            )
            return 2
        return _rollback(args)
    if command == "registry":
        if len(words) != 2 or words[1].lower() != "gc":
            print(
                "usage: repro registry gc --registry DIR [--dry-run]",
                file=sys.stderr,
            )
            return 2
        if args.registry is None:
            print("registry gc: --registry DIR is required", file=sys.stderr)
            return 2
        return _registry_gc(args)
    if command == "profile":
        if len(words) != 1:
            print(
                "usage: repro profile [--url URL] [--seconds S] "
                "[--profile-hz HZ] [--profile PATH]",
                file=sys.stderr,
            )
            return 2
        return _profile_client(args)
    if command == "profile-summary":
        if len(words) != 2:
            print(
                "usage: repro profile-summary <prof.json>", file=sys.stderr
            )
            return 2
        from repro.obs.prof import load_profile, render_profile_table

        try:
            print(render_profile_table(load_profile(words[1])))
        except (OSError, ValueError, KeyError) as error:
            print(f"profile-summary: {error}", file=sys.stderr)
            return 2
        return 0
    if command == "perf":
        if len(words) != 2 or words[1].lower() not in (
            "record",
            "log",
            "check",
        ):
            print(
                "usage: repro perf record|log|check [--ledger PATH] "
                "[--last N] [--self-test]",
                file=sys.stderr,
            )
            return 2
        return _perf(args, words[1].lower())
    if command == "trace-summary":
        if len(words) != 2:
            print("usage: repro trace-summary <trace.jsonl>", file=sys.stderr)
            return 2
        from repro.obs.summary import render_trace_summary

        try:
            print(render_trace_summary(words[1]))
        except (OSError, ValueError) as error:
            print(f"trace-summary: {error}", file=sys.stderr)
            return 2
        return 0
    if command == "export":
        if len(words) != 3:
            print("usage: repro export <suite> <path.csv|path.arff>",
                  file=sys.stderr)
            return 2
        from repro.datasets import save_arff, save_csv
        from repro.workloads.suite import SuiteGenerationConfig

        config = ExperimentConfig().scaled(args.scale)
        try:
            suite = _suite_by_name(words[1])
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2
        data = suite.generate(
            SuiteGenerationConfig(
                total_samples=config.cpu_samples, seed=config.seed
            )
        )
        path = words[2]
        if path.endswith(".arff"):
            save_arff(data, path)
        else:
            save_csv(data, path)
        print(f"wrote {len(data)} intervals to {path}")
        return 0
    return None


def _profile_client(args) -> int:
    """Capture a live CPU profile from a running server.

    Fetches ``GET /v1/profile/cpu`` (JSON) and prints the folded
    stacks to stdout — pipe them straight into ``flamegraph.pl``.
    With ``--profile PATH`` the full profile JSON is saved there and a
    summary table is printed instead.
    """
    import json as _json
    import urllib.error
    import urllib.request

    from repro.obs.prof import Profile, render_profile_table

    if args.seconds <= 0:
        print(
            f"profile: --seconds must be positive, got {args.seconds}",
            file=sys.stderr,
        )
        return 2
    url = (
        args.url.rstrip("/")
        + f"/v1/profile/cpu?seconds={args.seconds:g}&hz={args.profile_hz}"
    )
    try:
        with urllib.request.urlopen(
            url, timeout=args.seconds + 30.0
        ) as response:
            payload = _json.loads(response.read().decode("utf-8"))
        profile = Profile.from_dict(payload)
    except (urllib.error.URLError, OSError, ValueError, KeyError) as error:
        print(f"profile: {url}: {error}", file=sys.stderr)
        return 2
    if args.profile is not None:
        profile.save(args.profile)
        print(f"profile written to {args.profile}", file=sys.stderr)
        print(render_profile_table(profile))
    else:
        sys.stdout.write(profile.folded())
    return 0


def _perf(args, verb: str) -> int:
    """The performance-ledger verbs: record, log, check."""
    import json as _json
    from pathlib import Path

    from repro.obs.ledger import (
        BENCH_SNAPSHOTS,
        DEFAULT_LEDGER_PATH,
        PerfLedger,
        check_ledger,
        headline_metrics,
        render_findings,
        render_ledger_log,
    )

    ledger_path = (
        Path(args.ledger) if args.ledger is not None else DEFAULT_LEDGER_PATH
    )
    if verb == "record":
        ledger = PerfLedger(ledger_path)
        # Snapshots live next to the committed ledger regardless of
        # where --ledger points: record derives entries from what the
        # benchmark harness actually wrote.
        snapshot_dir = DEFAULT_LEDGER_PATH.parent
        recorded = 0
        for bench, filename in BENCH_SNAPSHOTS.items():
            path = snapshot_dir / filename
            if not path.exists():
                continue
            try:
                metrics = headline_metrics(
                    bench, _json.loads(path.read_text())
                )
            except (ValueError, OSError) as error:
                print(f"perf record: {filename}: {error}", file=sys.stderr)
                continue
            if not metrics:
                continue
            ledger.append(bench, metrics, meta={"source": filename})
            print(
                f"recorded {bench}: {len(metrics)} metric(s) "
                f"from {filename}"
            )
            recorded += 1
        if not recorded:
            print(
                f"perf record: no BENCH_*.json snapshots in {snapshot_dir}",
                file=sys.stderr,
            )
            return 2
        return 0
    if verb == "log":
        if args.last < 1:
            print(
                f"perf log: --last must be >= 1, got {args.last}",
                file=sys.stderr,
            )
            return 2
        print(render_ledger_log(PerfLedger(ledger_path), last=args.last))
        return 0
    # verb == "check"
    if args.self_test:
        return _perf_self_test(ledger_path)
    findings = check_ledger(ledger_path)
    print(render_findings(findings))
    return 1 if any(f.status == "regression" for f in findings) else 0


def _perf_self_test(committed_path) -> int:
    """Prove the regression gate works before trusting it in CI.

    Two assertions: an injected 2x ``tree_fit_s`` regression in a
    throwaway ledger IS flagged, and the committed ledger is NOT
    (no false positive).  Exits 0 only if both hold.
    """
    import tempfile
    from pathlib import Path

    from repro.obs.ledger import PerfLedger, check_ledger, render_findings

    failures = 0

    committed = check_ledger(committed_path)
    committed_clean = not any(f.status == "regression" for f in committed)
    if committed:
        print(
            f"committed ledger ({committed_path}): "
            + ("clean" if committed_clean else "REGRESSION FLAGGED")
        )
        if not committed_clean:
            print(render_findings(committed))
            failures += 1
    else:
        print(f"committed ledger ({committed_path}): empty, skipped")

    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "ledger.jsonl"
        ledger = PerfLedger(path)
        # A realistic baseline history with a few percent of jitter,
        # then a candidate entry at 2x — unambiguous at any noise
        # level the checker is configured for.
        for factor in (1.00, 0.97, 1.03, 0.99):
            ledger.append(
                "microperf",
                {
                    "tree_fit_s": 0.160 * factor,
                    "compiled_speedup_b64": 5.0 / factor,
                },
            )
        ledger.append(
            "microperf",
            {"tree_fit_s": 0.320, "compiled_speedup_b64": 5.0},
        )
        findings = check_ledger(path)
        detected = any(
            f.metric == "tree_fit_s" and f.status == "regression"
            for f in findings
        )
        print(
            "injected 2x tree_fit regression: "
            + ("detected" if detected else "MISSED")
        )
        if not detected:
            print(render_findings(findings))
            failures += 1

    print(
        "perf check --self-test: "
        + ("ok" if not failures else f"{failures} failure(s)")
    )
    return 1 if failures else 0


def _monitor(args, suites: List[str]) -> int:
    """Replay a suite's data as a traffic stream and print the verdict
    timeline — the live version of E7/E8's offline transferability
    battery.  Exits 0 while the model holds, 3 on TRANSFER_FAILED.
    """
    from repro.drift import (
        DriftMonitor,
        DriftMonitorConfig,
        DriftVerdict,
        JsonlAudit,
        ModelProfile,
    )
    from repro.stats.transfer import SampleMoments

    try:
        monitor_config = DriftMonitorConfig(window=args.window)
    except ValueError as error:
        print(f"monitor: {error}", file=sys.stderr)
        return 2
    if args.stream_batch < 1:
        print(
            f"monitor: --stream-batch must be >= 1, got {args.stream_batch}",
            file=sys.stderr,
        )
        return 2

    config = _config_from_args(args)
    ctx = ExperimentContext(config, cache_dir=args.cache_dir)
    if args.model is not None:
        from repro.serve.registry import ModelRegistry, RegistryError

        traffic_suite = suites[0]
        try:
            record, tree = ModelRegistry(args.registry).load(args.model)
        except (RegistryError, KeyError) as error:
            print(f"monitor: {error}", file=sys.stderr)
            return 2
        profile = ModelProfile.from_record(record, tree)
        model_desc = f"registry model {record.model_id}"
        traffic = ctx.test_set(traffic_suite)
    else:
        model_suite = suites[0]
        traffic_suite = suites[-1]
        tree = ctx.tree(model_suite)
        train = ctx.train_set(model_suite)
        profile = ModelProfile.from_tree(
            model_suite, tree, training_y=SampleMoments.from_values(train.y)
        )
        model_desc = f"{ctx.suite_label(model_suite)} model"
        # Same split discipline as E7/E8: held-out data within suite,
        # the other suite's training-sized pool across suites.
        traffic = (
            ctx.test_set(traffic_suite)
            if traffic_suite == model_suite
            else ctx.train_set(traffic_suite)
        )

    actions = []
    if args.audit is not None:
        actions.append(JsonlAudit(args.audit))
    monitor = DriftMonitor(profile, monitor_config, actions)
    print(
        f"streaming {len(traffic)} {ctx.suite_label(traffic_suite)} "
        f"intervals through {model_desc} "
        f"(window={args.window}, batch={args.stream_batch})"
    )
    final_event = None
    batch = args.stream_batch
    # Replay drives every batch through the shared compiled evaluator
    # (predictions and leaf routing from one handle), the same backend
    # the serving engine and drift hub use.
    evaluator = tree.compiled()
    for start in range(0, len(traffic), batch):
        Xb = traffic.X[start : start + batch]
        yb = traffic.y[start : start + batch]
        event = monitor.observe(
            evaluator.predict(Xb), yb, evaluator.assign_names(Xb)
        )
        final_event = event
        if event.changed:
            detail = "; ".join(str(r) for r in event.breaches) or "clean"
            print(
                f"  record {event.records_seen:>7d}: "
                f"{event.previous_verdict.value} -> {event.verdict.value} "
                f"({detail})"
            )
    if final_event is None:
        print("monitor: traffic stream was empty", file=sys.stderr)
        return 2
    print(f"final verdict: {final_event.verdict.value}")
    for reading in final_event.readings:
        print(f"  {reading}")
    if args.audit is not None:
        print(f"audit trail: {args.audit}", file=sys.stderr)
    return 3 if final_event.verdict is DriftVerdict.TRANSFER_FAILED else 0


def _pipeline_run(args, train_suite: str, traffic_suite: str) -> int:
    """Replay the full detect -> retrain -> shadow -> promote loop.

    Exits 0 when the loop completed a promotion (the candidate took
    over the 'latest' alias and its verdict recovered), 3 otherwise —
    the remediation counterpart of ``repro monitor``'s exit 3.
    """
    import tempfile

    from repro.pipeline.replay import run_pipeline_replay
    from repro.serve.registry import ModelRegistry

    if args.window < 2:
        print(f"pipeline: --window must be >= 2, got {args.window}",
              file=sys.stderr)
        return 2
    if args.stream_batch < 1 or args.max_records < 1:
        print("pipeline: --stream-batch and --max-records must be >= 1",
              file=sys.stderr)
        return 2
    with tempfile.TemporaryDirectory() as scratch:
        registry = ModelRegistry(
            args.registry if args.registry is not None else scratch
        )
        result = run_pipeline_replay(
            registry,
            train_suite,
            traffic_suite,
            config=_config_from_args(args),
            cache_dir=args.cache_dir,
            window=args.window,
            stream_batch=args.stream_batch,
            max_records=args.max_records,
        )
    return 0 if result["promoted"] else 3


def _promotions(args) -> int:
    """Print the promotion trail and verify its hash chain."""
    from repro.pipeline.promotions import PromotionChainError, PromotionLog
    from repro.serve.registry import ModelRegistry

    registry = ModelRegistry(args.registry)
    log = PromotionLog(registry.root / "promotions.jsonl")
    entries = log.entries()
    if not entries:
        print(f"no promotions recorded in {log.path}")
        return 0
    for entry in entries:
        import time as _time

        stamp = _time.strftime(
            "%Y-%m-%d %H:%M:%S",
            _time.localtime(float(entry.get("unix_time", 0))),
        )
        print(
            f"#{entry.get('seq')} {stamp} {entry.get('action')}: "
            f"{entry.get('alias')} {entry.get('from')} -> {entry.get('to')} "
            f"[{entry.get('actor')}] {entry.get('why')}"
        )
    try:
        count = log.verify()
    except PromotionChainError as error:
        print(f"hash chain BROKEN: {error}", file=sys.stderr)
        return 1
    print(f"hash chain verified ({count} entries)")
    return 0


def _rollback(args) -> int:
    """Restore the 'latest' alias to a prior model from the trail."""
    from repro.pipeline.promotions import (
        PromotionChainError,
        PromotionLog,
        perform_rollback,
    )
    from repro.serve.registry import ModelNotFound, ModelRegistry

    registry = ModelRegistry(args.registry)
    log = PromotionLog(registry.root / "promotions.jsonl")
    try:
        entry = perform_rollback(
            registry,
            log,
            to=args.to,
            why=args.why,
            actor="cli",
        )
    except (PromotionChainError, ModelNotFound) as error:
        print(f"rollback: {error}", file=sys.stderr)
        return 1
    print(
        f"rolled back 'latest': {entry.get('from')} -> {entry.get('to')} "
        f"(recorded as promotion-trail entry #{entry.get('seq')})"
    )
    return 0


def _registry_gc(args) -> int:
    """Collect registry artifacts unreachable from aliases or the trail."""
    from repro.pipeline.gc import collect_garbage
    from repro.serve.registry import ModelRegistry

    registry = ModelRegistry(args.registry)
    report = collect_garbage(registry, dry_run=args.dry_run)
    verb = "would remove" if report["dry_run"] else "removed"
    for item in report["collected"]:
        print(f"{verb} {item['model_id']} ({item['bytes']} bytes)")
    print(
        f"{verb} {len(report['collected'])} of {report['models_total']} "
        f"model(s), {report['bytes_freed']} bytes"
        + (
            f"; rollback target {report['rollback_target']} kept"
            if report["rollback_target"]
            else ""
        )
    )
    return 0


def _status(args) -> int:
    """Fetch ``/v1/status`` from a running server and render it.

    ``--watch`` redraws the view every ``--interval`` seconds until
    Ctrl-C — a terminal twin of the server's ``/dashboard`` page,
    stdlib-only (urllib + ANSI clear-screen).
    """
    import json as _json
    import time as _time
    import urllib.error
    import urllib.request

    from repro.serve.status import render_status_text

    url = args.url.rstrip("/") + "/v1/status"
    if args.interval <= 0:
        print(
            f"status: --interval must be positive, got {args.interval}",
            file=sys.stderr,
        )
        return 2

    def fetch():
        with urllib.request.urlopen(url, timeout=5.0) as response:
            return _json.loads(response.read().decode("utf-8"))

    if not args.watch:
        try:
            print(render_status_text(fetch()))
        except (urllib.error.URLError, OSError, ValueError) as error:
            print(f"status: {url}: {error}", file=sys.stderr)
            return 2
        return 0
    try:
        while True:
            try:
                text = render_status_text(fetch())
            except (urllib.error.URLError, OSError, ValueError) as error:
                text = f"status: {url}: {error}"
            # ANSI clear + home keeps the view flicker-free without
            # depending on curses.
            sys.stdout.write("\x1b[2J\x1b[H" + text + "\n")
            sys.stdout.flush()
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _loadbench(args) -> int:
    """Drive closed- or open-loop load at a running server's HTTP path."""
    import urllib.error

    from repro.loadbench import LoadConfig, run_load
    from repro.loadbench.report import render_load_text

    try:
        config = LoadConfig(
            url=args.url.rstrip("/"),
            model=args.model or "latest",
            mode=args.mode,
            duration_s=args.duration,
            connections=args.connections,
            think_ms=args.think_ms,
            rate=args.rate,
            batch_rows=args.batch_rows,
        )
    except ValueError as error:
        print(f"loadbench: {error}", file=sys.stderr)
        return 2
    # Fail fast on an unreachable server instead of recording a
    # duration_s-long run of nothing but connection errors, and size
    # the payload rows from the model's actual schema — a guessed
    # width would 400 on every request.
    import json as json_module
    import urllib.request

    from dataclasses import replace

    from repro.loadbench.harness import _default_instances

    try:
        with urllib.request.urlopen(
            f"{config.url}/healthz", timeout=5.0
        ) as response:
            response.read()
        with urllib.request.urlopen(
            f"{config.url}/v1/models/{config.model}", timeout=5.0
        ) as response:
            record = json_module.loads(response.read())
    except urllib.error.HTTPError as error:
        print(
            f"loadbench: no model {config.model!r} at {config.url} "
            f"(HTTP {error.code})",
            file=sys.stderr,
        )
        return 2
    except (urllib.error.URLError, OSError) as error:
        print(f"loadbench: {config.url}: {error}", file=sys.stderr)
        return 2
    config = replace(
        config,
        instances=_default_instances(
            config.batch_rows,
            config.seed,
            len(record.get("feature_names") or ()) or 3,
        ),
    )
    result = run_load(config)
    print(render_load_text(result, config.url))
    if result.requests == 0:
        print("loadbench: no successful requests", file=sys.stderr)
        return 1
    return 0


def _serve_cluster(args, batch) -> int:
    """Run an N-replica cluster until SIGTERM/SIGINT, then drain."""
    import signal
    import threading

    from repro.cluster import ClusterConfig, ClusterSupervisor

    try:
        supervisor = ClusterSupervisor(
            ClusterConfig(
                registry_dir=args.registry,
                workers=args.workers,
                host=args.host,
                port=args.port,
                batch=batch,
                monitor=not args.no_monitor,
                pipeline=args.pipeline,
                events_path=args.events,
                admin_port=args.admin_port,
                extra_server_kwargs={
                    "shadow": args.shadow,
                    "shadow_champion": args.shadow_champion,
                    "audit_path": args.audit,
                },
            )
        ).start()
    except (OSError, ValueError) as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2

    def _drain(signum, frame) -> None:
        supervisor.request_stop()

    previous = {
        sig: signal.signal(sig, _drain)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    admin = (
        f", admin http://{args.host}:{supervisor.admin_port}"
        if supervisor.admin_port is not None
        else ""
    )
    print(
        f"serving on http://{args.host}:{supervisor.port} with "
        f"{args.workers} worker(s) ({supervisor.socket_mode} mode, "
        f"replica 0 leads{admin}; SIGTERM/Ctrl-C drains and exits)",
        file=sys.stderr,
    )
    try:
        supervisor.serve_forever()
        print("draining workers...", file=sys.stderr)
        unclean = supervisor.shutdown()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    restarts = sum(supervisor.restart_counts())
    print(
        f"cluster stopped ({restarts} restart(s), "
        f"{unclean} unclean exit(s)); bye",
        file=sys.stderr,
    )
    return 1 if unclean else 0


def _serve(args) -> int:
    """Run the model server until SIGTERM/SIGINT, then drain and exit."""
    from repro.serve.engine import BatchConfig

    try:
        batch = BatchConfig(
            max_batch=args.max_batch, max_wait_s=args.max_wait_ms / 1000.0
        )
    except ValueError as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2
    if args.workers < 1:
        print(f"serve: --workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 2

    if args.self_test:
        from repro.serve.selftest import run_self_test

        return run_self_test(
            args.registry, batch=batch, workers=args.workers
        )

    if args.workers > 1:
        if args.profile is not None:
            print(
                "serve: --profile samples one process; with --workers "
                "use 'repro profile' against a replica instead",
                file=sys.stderr,
            )
            return 2
        return _serve_cluster(args, batch)

    import signal
    import threading

    from repro.obs.metrics import get_registry
    from repro.serve.api import ModelServer
    from repro.serve.registry import ModelRegistry

    if args.pipeline and args.no_monitor:
        print(
            "serve: --pipeline requires drift monitoring "
            "(drop --no-monitor)",
            file=sys.stderr,
        )
        return 2
    registry = ModelRegistry(args.registry)
    try:
        server = ModelServer(
            registry,
            host=args.host,
            port=args.port,
            batch=batch,
            monitor=not args.no_monitor,
            shadow=args.shadow,
            shadow_champion=args.shadow_champion,
            audit_path=args.audit,
            events_path=args.events,
            pipeline=args.pipeline,
        )
    except KeyError as error:  # e.g. --shadow ref not in the registry
        print(f"serve: {error}", file=sys.stderr)
        return 2
    stop = threading.Event()

    def _drain(signum, frame) -> None:
        stop.set()

    previous = {
        sig: signal.signal(sig, _drain)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    profiler = None
    if args.profile is not None:
        from repro.obs.prof import SamplingProfiler

        try:
            profiler = SamplingProfiler(hz=args.profile_hz).start()
        except ValueError as error:
            print(f"serve: --profile: {error}", file=sys.stderr)
            return 2
    server.start()
    host, port = server.address
    print(
        f"serving {len(registry)} model(s) on http://{host}:{port} "
        f"(max_batch={batch.max_batch}, max_wait="
        f"{batch.max_wait_s * 1e3:g}ms; SIGTERM/Ctrl-C drains and exits)",
        file=sys.stderr,
    )
    try:
        stop.wait()
        print("draining...", file=sys.stderr)
        server.shutdown()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        if profiler is not None:
            server_profile = profiler.stop()
            server_profile.save(args.profile)
            print(
                f"profile written to {args.profile} "
                f"({server_profile.samples} passes at "
                f"{server_profile.hz} Hz)",
                file=sys.stderr,
            )
    served = get_registry().counter("serve.http.requests").value
    print(f"served {served} request(s); bye", file=sys.stderr)
    return 0


def _describe_benchmark(name: str, args) -> int:
    """Full per-benchmark page: metadata, profile, equations, neighbors."""
    from repro.characterization.profile import profile_sample_set
    from repro.characterization.similarity import similarity_matrix
    from repro.experiments.context import ExperimentContext
    from repro.workloads.catalog import format_benchmark_detail

    ctx = ExperimentContext(ExperimentConfig().scaled(args.scale))
    for which in ("cpu2006", "omp2001"):
        suite = ctx.suite(which)
        try:
            suite.benchmark(name)
        except KeyError:
            continue
        print(format_benchmark_detail(suite, name))
        profile = profile_sample_set(ctx.tree(which), ctx.data(which))
        bench = profile.benchmark(name)
        print(f"\naverage CPI: {bench.mean_cpi:.2f} "
              f"(suite: {ctx.data(which).y.mean():.2f})")
        print("dominant linear models:")
        tree = ctx.tree(which)
        for lm, share in bench.dominant(4):
            print(f"  {lm} ({share:.1f}%): {tree.leaf(lm).model.equation()}")
        matrix = similarity_matrix(profile)
        ranked = sorted(
            (
                (other.benchmark, matrix.distance(name, other.benchmark))
                for other in profile.benchmarks
                if other.benchmark != name
            ),
            key=lambda item: item[1],
        )
        print("most similar benchmarks (Eq. 4):")
        for other, distance in ranked[:4]:
            print(f"  {other:20s} {distance:5.1f}%")
        print(f"distance from suite profile: "
              f"{matrix.suite_distance(name):.1f}%")
        return 0
    print(f"unknown benchmark {name!r} (try 'repro catalog cpu2006')",
          file=sys.stderr)
    return 2


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    handled = _run_subcommand(args)
    if handled is not None:
        return handled

    requested = [e.upper() for e in args.experiments]

    if "LIST" in requested:
        for key in sorted(EXPERIMENTS, key=lambda k: int(k[1:])):
            print(f"{key:5s} {_TITLES[key]}")
        return 0

    ran_all = "ALL" in requested
    if ran_all:
        requested = sorted(EXPERIMENTS, key=lambda k: int(k[1:]))

    want_report = "REPORT" in requested
    requested = [e for e in requested if e != "REPORT"]

    unknown = [e for e in requested if e not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s) {unknown}; run 'repro list'",
            file=sys.stderr,
        )
        return 2

    config = _config_from_args(args)
    if args.jobs is not None and args.jobs < 1:
        print(f"--jobs must be at least 1, got {args.jobs}", file=sys.stderr)
        return 2

    tracer = None
    if args.trace is not None:
        from repro.obs.trace import Tracer, set_tracer

        tracer = Tracer()
        set_tracer(tracer)

    profiler = None
    profile = None
    if args.profile is not None:
        from repro.obs.prof import SamplingProfiler

        try:
            profiler = SamplingProfiler(hz=args.profile_hz).start()
        except ValueError as error:
            print(f"--profile: {error}", file=sys.stderr)
            return 2

    ctx: Optional[ExperimentContext] = None
    try:
        if args.jobs is not None and requested:
            from repro.experiments.runner import ParallelRunner

            runner = ParallelRunner(
                config, jobs=args.jobs, cache_dir=args.cache_dir
            )
            battery = runner.run(requested)
            for _, text in battery.texts:
                print(text)
                print()
            print(battery.summary(), file=sys.stderr)
        else:
            ctx = ExperimentContext(config, cache_dir=args.cache_dir)
            for key in requested:
                print(run_experiment(key, ctx))
                print()
            if ran_all and requested:
                from repro.datasets.cache import format_cache_stats

                print("dataset cache:", file=sys.stderr)
                print(format_cache_stats(ctx.cache.stats), file=sys.stderr)
        if want_report:
            from repro.experiments.report_gen import generate_report

            if ctx is None:
                ctx = ExperimentContext(config, cache_dir=args.cache_dir)
            generate_report(ctx, path=args.output)
            print(f"report written to {args.output}")
    finally:
        if tracer is not None:
            from repro.obs.trace import set_tracer

            set_tracer(None)
        if profiler is not None:
            profile = profiler.stop()

    if profile is not None:
        profile.save(args.profile)
        print(
            f"profile written to {args.profile} "
            f"({profile.samples} passes at {profile.hz} Hz, "
            f"{profile.attributed_fraction() * 100:.0f}% span-attributed)",
            file=sys.stderr,
        )
    if tracer is not None:
        from repro.obs.manifest import build_manifest
        from repro.obs.metrics import get_registry

        manifest = build_manifest(
            config,
            experiments=requested,
            argv=["repro", *(argv if argv is not None else sys.argv[1:])],
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            extra={"scale": args.scale, "trace_path": args.trace},
        )
        tracer.write_jsonl(
            args.trace,
            manifest=manifest,
            metrics=get_registry().as_records(),
        )
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.metrics:
        from repro.obs.metrics import get_registry
        from repro.obs.summary import format_metrics_table

        print("metrics:", file=sys.stderr)
        print(
            format_metrics_table(get_registry().as_records()),
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
