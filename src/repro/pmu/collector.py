"""Simulated PMU collection sessions.

The collector turns *true* per-instruction event densities (produced by
the workload generator) into *observed* densities the way real
multiplexed counting would: each programmable event is counted only
during its rotation window (a ``duty_cycle`` fraction of the 2M
instructions of an interval) and the raw count is scaled back up by the
inverse duty cycle.  Counting is Poisson in nature, so the scaled
estimate carries sampling error that shrinks with window size and
event frequency — exactly the noise floor the paper's models were
trained against.

Fixed-counter quantities (cycles, instructions — hence CPI) are
observed over the whole interval and carry only counting noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.pmu.counters import MultiplexSchedule
from repro.pmu.events import PREDICTOR_NAMES

__all__ = ["CollectorConfig", "PmuCollector"]


@dataclass(frozen=True)
class CollectorConfig:
    """Collection parameters.

    ``interval_instructions`` is the paper's sample width (2M
    instructions); ``n_programmable`` the number of multiplexed
    counters.  Setting ``multiplex=False`` models an ideal PMU with one
    dedicated counter per event (used by the multiplexing ablation).
    """

    interval_instructions: int = 2_000_000
    n_programmable: int = 2
    multiplex: bool = True

    def __post_init__(self) -> None:
        if self.interval_instructions <= 0:
            raise ValueError(
                f"interval_instructions must be positive, got {self.interval_instructions}"
            )
        if self.n_programmable < 1:
            raise ValueError(
                f"n_programmable must be >= 1, got {self.n_programmable}"
            )


class PmuCollector:
    """Simulates multiplexed counter observation of event densities.

    With ``constraints`` the rotation is built by the constraint-aware
    scheduler (events restricted to specific counters may lengthen the
    rotation and hence shrink every event's observation window).
    """

    def __init__(
        self,
        config: Optional[CollectorConfig] = None,
        event_names: Sequence[str] = PREDICTOR_NAMES,
        constraints: Optional["CounterConstraints"] = None,
    ) -> None:
        self.config = config or CollectorConfig()
        self.schedule = MultiplexSchedule(
            event_names, n_counters=self.config.n_programmable
        )
        self.constrained_schedule = None
        if constraints is not None:
            from repro.pmu.constraints import build_constrained_schedule

            self.constrained_schedule = build_constrained_schedule(
                event_names, constraints
            )

    @property
    def duty_cycle(self) -> float:
        """Fraction of an interval each programmable event is observed."""
        if not self.config.multiplex:
            return 1.0
        if self.constrained_schedule is not None:
            return self.constrained_schedule.duty_cycle
        return self.schedule.duty_cycle

    def observe_densities(
        self, true_densities: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Observed per-instruction densities for a batch of intervals.

        Parameters
        ----------
        true_densities:
            Array (n_intervals, n_events) of true per-instruction rates.
        rng:
            Random generator driving the Poisson counting noise.

        Returns
        -------
        Array of the same shape holding multiplex-scaled estimates.
        """
        true_densities = np.asarray(true_densities, dtype=float)
        if true_densities.ndim != 2:
            raise ValueError(
                f"true_densities must be 2-D, got shape {true_densities.shape}"
            )
        if true_densities.shape[1] != len(self.schedule.event_names):
            raise ValueError(
                f"expected {len(self.schedule.event_names)} event columns, "
                f"got {true_densities.shape[1]}"
            )
        if np.any(true_densities < 0.0):
            raise ValueError("event densities must be non-negative")
        window = self.duty_cycle * self.config.interval_instructions
        expected_counts = true_densities * window
        counts = rng.poisson(expected_counts).astype(float)
        return counts / window

    def observe_cpi(
        self, true_cpi: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Observed CPI for a batch of intervals.

        Cycles are counted by a fixed counter over the full interval;
        the residual error models cycle-count jitter (interrupts, SMIs,
        read latency) and is tiny relative to the multiplexing noise on
        the programmable events.
        """
        true_cpi = np.asarray(true_cpi, dtype=float)
        if np.any(true_cpi <= 0.0):
            raise ValueError("CPI must be positive")
        n_instructions = self.config.interval_instructions
        cycles = true_cpi * n_instructions
        observed_cycles = rng.normal(cycles, np.sqrt(cycles))
        return np.maximum(observed_cycles, 1.0) / n_instructions
