"""Counter-assignment constraints and a constraint-aware scheduler.

Real PMUs restrict which events each counter can measure: on the Core 2
family several memory and FP events count only on PMC0 or PMC1.  When
those constraints bind, a naive round-robin schedule is infeasible —
two PMC0-only events cannot share a rotation group.  This module
models the restriction and builds a feasible rotation with a greedy
first-fit scheduler, reporting the (possibly longer) rotation length —
i.e. the duty-cycle cost of constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

__all__ = ["CounterConstraints", "ConstrainedSchedule", "build_constrained_schedule"]

#: Core-2-style restrictions: these Table I events can only be counted
#: on the named programmable counter (0 or 1); all others are flexible.
CORE2_EVENT_RESTRICTIONS: Mapping[str, int] = {
    "L1DMiss": 0,   # MEM_LOAD_RETIRED.* -> PMC0 only
    "L2Miss": 0,
    "FpAsst": 1,    # FP_ASSIST -> PMC1 only
    "Mul": 1,
    "Div": 1,
}


@dataclass(frozen=True)
class CounterConstraints:
    """Which programmable counter(s) each event may use.

    ``restrictions`` maps event name -> required counter index; events
    not listed may use any counter.
    """

    n_counters: int = 2
    restrictions: Mapping[str, int] = field(
        default_factory=lambda: dict(CORE2_EVENT_RESTRICTIONS)
    )

    def __post_init__(self) -> None:
        if self.n_counters < 1:
            raise ValueError(f"need at least one counter, got {self.n_counters}")
        for event, counter in self.restrictions.items():
            if not 0 <= counter < self.n_counters:
                raise ValueError(
                    f"event {event!r} restricted to counter {counter}, "
                    f"but only {self.n_counters} counters exist"
                )

    def allowed_counters(self, event: str) -> Tuple[int, ...]:
        if event in self.restrictions:
            return (self.restrictions[event],)
        return tuple(range(self.n_counters))


@dataclass(frozen=True)
class ConstrainedSchedule:
    """A feasible rotation: one (event -> counter) map per time slice."""

    groups: Tuple[Mapping[str, int], ...]

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    @property
    def duty_cycle(self) -> float:
        return 1.0 / self.n_groups

    def counter_of(self, event: str) -> Tuple[int, int]:
        """(group index, counter index) where the event is measured."""
        for group_index, group in enumerate(self.groups):
            if event in group:
                return group_index, group[event]
        raise KeyError(f"event {event!r} is not scheduled")

    def validate(self, constraints: CounterConstraints) -> None:
        """Raise if any slice violates the constraints."""
        for group_index, group in enumerate(self.groups):
            used: Dict[int, str] = {}
            for event, counter in group.items():
                if counter in used:
                    raise ValueError(
                        f"group {group_index}: counter {counter} assigned to "
                        f"both {used[counter]!r} and {event!r}"
                    )
                used[counter] = event
                if counter not in constraints.allowed_counters(event):
                    raise ValueError(
                        f"group {group_index}: event {event!r} not allowed "
                        f"on counter {counter}"
                    )


def build_constrained_schedule(
    event_names: Sequence[str],
    constraints: CounterConstraints,
) -> ConstrainedSchedule:
    """Greedy first-fit rotation construction.

    Restricted events are placed first (they have fewer options); each
    event goes into the earliest group with a free, allowed counter.
    The result is always feasible; with many same-counter restrictions
    it simply uses more groups than the unconstrained ceiling
    ``ceil(n_events / n_counters)``.
    """
    names = list(event_names)
    if not names:
        raise ValueError("at least one event is required")
    if len(set(names)) != len(names):
        raise ValueError("event names must be unique")
    # Most-constrained-first: fewer allowed counters first, stable order.
    order = sorted(
        names, key=lambda e: (len(constraints.allowed_counters(e)))
    )
    groups: List[Dict[str, int]] = []
    for event in order:
        allowed = constraints.allowed_counters(event)
        placed = False
        for group in groups:
            taken = set(group.values())
            for counter in allowed:
                if counter not in taken:
                    group[event] = counter
                    placed = True
                    break
            if placed:
                break
        if not placed:
            groups.append({event: allowed[0]})
    schedule = ConstrainedSchedule(groups=tuple(groups))
    schedule.validate(constraints)
    return schedule
