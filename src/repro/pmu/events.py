"""The event and metric catalog of Table I.

The paper predicts CPI from 20 per-instruction event densities measured
on an Intel Core 2 Duo.  Three events have dedicated (fixed) counters;
the rest share the two programmable counters via round-robin
multiplexing.

Two rows of Table I were lost to OCR in the source text; the equations
and Figure 2 use ``LdBlkOlp`` (LOAD_BLOCK.OVERLAP_STORE) prominently,
and the Core 2 LOAD_BLOCK event family also includes UNTIL_RETIRE,
so those two complete the catalog of 20 predictors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "Event",
    "CPI",
    "FIXED_EVENTS",
    "PREDICTOR_EVENTS",
    "PREDICTOR_NAMES",
    "EVENT_TABLE",
    "event_by_name",
]


@dataclass(frozen=True)
class Event:
    """One PMU-derived per-instruction metric.

    ``name`` is the short metric name used in models and equations;
    ``pmu_event`` is the underlying hardware event (divided by
    INST_RETIRED.ANY to get a per-instruction density); ``fixed`` marks
    events with a dedicated counter (observed for the whole interval,
    never multiplexed).
    """

    name: str
    pmu_event: str
    description: str
    fixed: bool = False


CPI = Event(
    name="CPI",
    pmu_event="CPU_CLK_UNHALTED.CORE",
    description="CPU clock cycles per instruction (the modeled quantity)",
    fixed=True,
)

#: Fixed-counter events besides the two used to form CPI.  These exist in
#: the collection pipeline but are not predictors (REF cycles track CORE
#: cycles up to frequency scaling).
FIXED_EVENTS: Tuple[Event, ...] = (
    CPI,
    Event("Instructions", "INST_RETIRED.ANY", "Instructions retired", fixed=True),
    Event("RefCycles", "CPU_CLK_UNHALTED.REF", "Reference clock cycles", fixed=True),
)

#: The 20 predictor metrics of Table I, in table order.
PREDICTOR_EVENTS: Tuple[Event, ...] = (
    Event("Load", "INST_RETIRED.LOADS", "Loads"),
    Event("Store", "INST_RETIRED.STORES", "Stores"),
    Event("MisprBr", "BR_INST_RETIRED.MISPRED", "Mispredicted branches"),
    Event("Br", "BR_INST_RETIRED.ANY", "Branches"),
    Event("L1DMiss", "MEM_LOAD_RETIRED.L1D_MISSES", "L1 data misses"),
    Event("L1IMiss", "L1I_MISSES", "L1 instruction misses"),
    Event("L2Miss", "MEM_LOAD_RETIRED.L2_MISSES", "L2 misses"),
    Event("DtlbMiss", "DTLB_MISSES.ANY", "Last level DTLB misses"),
    Event("LdBlkStA", "LOAD_BLOCK.STA", "Load blocks due to store-address events"),
    Event("LdBlkStD", "LOAD_BLOCK.STD", "Load blocks due to store-data events"),
    Event("LdBlkOlp", "LOAD_BLOCK.OVERLAP_STORE", "Loads blocked by overlapping stores"),
    Event("LdBlkUntilRet", "LOAD_BLOCK.UNTIL_RETIRE", "Loads blocked until retirement"),
    Event("SplitLoad", "L1D_SPLIT.LOADS", "L1 data splits on loads"),
    Event("SplitStore", "L1D_SPLIT.STORES", "L1 data splits on stores"),
    Event("Misalign", "MISALIGN_MEM_REF", "Misaligned memory references"),
    Event("Div", "DIV", "Divide operations"),
    Event("PageWalk", "PAGE_WALKS.COUNT", "Page walks"),
    Event("Mul", "MUL", "Multiply operations"),
    Event("FpAsst", "FP_ASSIST", "Floating point assists"),
    Event("SIMD", "SIMD_INST_RETIRED.ANY", "Retired streaming SIMD instructions"),
)

#: Predictor metric names in canonical column order.
PREDICTOR_NAMES: Tuple[str, ...] = tuple(e.name for e in PREDICTOR_EVENTS)

#: Full Table I: CPI first, then the 20 predictors.
EVENT_TABLE: Tuple[Event, ...] = (CPI,) + PREDICTOR_EVENTS

_BY_NAME: Dict[str, Event] = {e.name: e for e in EVENT_TABLE + FIXED_EVENTS[1:]}


def event_by_name(name: str) -> Event:
    """Look up an event by its short metric name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown event {name!r}; known events: {sorted(_BY_NAME)}"
        ) from None
