"""Performance-monitoring-unit substrate.

Simulates the paper's data-collection infrastructure: a Core-2-like PMU
with three fixed counters (core cycles, instructions retired, reference
cycles) and two programmable counters that are round-robin multiplexed
over the remaining events of Table I, sampling 2M-instruction intervals.
"""

from repro.pmu.events import (
    CPI,
    EVENT_TABLE,
    FIXED_EVENTS,
    PREDICTOR_EVENTS,
    PREDICTOR_NAMES,
    Event,
    event_by_name,
)
from repro.pmu.counters import MultiplexSchedule
from repro.pmu.collector import CollectorConfig, PmuCollector
from repro.pmu.constraints import (
    CounterConstraints,
    ConstrainedSchedule,
    build_constrained_schedule,
)

__all__ = [
    "ConstrainedSchedule",
    "CounterConstraints",
    "build_constrained_schedule",
    "CPI",
    "CollectorConfig",
    "EVENT_TABLE",
    "Event",
    "FIXED_EVENTS",
    "MultiplexSchedule",
    "PREDICTOR_EVENTS",
    "PREDICTOR_NAMES",
    "PmuCollector",
    "event_by_name",
]
