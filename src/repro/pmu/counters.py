"""Round-robin multiplexing schedule for the programmable counters.

The Core 2 PMU of the paper has five counters: three fixed (core
cycles, instructions retired, reference cycles) and two programmable.
The 20 predictor events of Table I share the two programmable counters,
each event being observed for a contiguous fraction of every
2M-instruction interval and its count scaled up by the inverse of that
fraction.  :class:`MultiplexSchedule` captures that rotation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

__all__ = ["MultiplexSchedule"]


@dataclass(frozen=True)
class MultiplexSchedule:
    """Assignment of events to programmable counters over one interval.

    Parameters
    ----------
    event_names:
        The events to multiplex, in rotation order.
    n_counters:
        Number of programmable counters available simultaneously.
    """

    event_names: Tuple[str, ...]
    n_counters: int = 2

    def __init__(self, event_names: Sequence[str], n_counters: int = 2) -> None:
        if n_counters < 1:
            raise ValueError(f"need at least one counter, got {n_counters}")
        names = tuple(event_names)
        if not names:
            raise ValueError("at least one event is required")
        if len(set(names)) != len(names):
            raise ValueError("event names must be unique")
        object.__setattr__(self, "event_names", names)
        object.__setattr__(self, "n_counters", n_counters)

    @property
    def n_groups(self) -> int:
        """Number of rotation groups (time slices) per interval."""
        n = len(self.event_names)
        return (n + self.n_counters - 1) // self.n_counters

    @property
    def duty_cycle(self) -> float:
        """Fraction of each interval during which any one event is observed.

        With 20 events over 2 counters, each event is live for 1/10 of
        every interval — the source of the multiplexing estimation noise.
        """
        return 1.0 / self.n_groups

    def groups(self) -> List[Tuple[str, ...]]:
        """The rotation groups, each at most ``n_counters`` events."""
        names = self.event_names
        k = self.n_counters
        return [tuple(names[i : i + k]) for i in range(0, len(names), k)]

    def group_of(self, event_name: str) -> int:
        """Index of the rotation group that carries ``event_name``."""
        try:
            position = self.event_names.index(event_name)
        except ValueError:
            raise KeyError(f"event {event_name!r} is not in the schedule") from None
        return position // self.n_counters
