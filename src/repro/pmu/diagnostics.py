"""Counter-data quality diagnostics.

Multiplexed counting is an estimation procedure, and some events are
estimated far worse than others: a rare event observed for a tenth of
each interval yields single-digit raw counts and double-digit relative
error.  These diagnostics quantify that per event — which events'
densities the modeling can trust, and which are noise-dominated — so a
practitioner can justify longer intervals or dedicated counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.datasets.dataset import SampleSet
from repro.pmu.collector import PmuCollector

__all__ = ["EventQuality", "data_quality_report", "format_quality_table"]


@dataclass(frozen=True)
class EventQuality:
    """Observation-quality summary of one event's density column."""

    event: str
    mean_density: float
    mean_raw_count: float
    relative_error: float  # expected Poisson rel. error of one estimate

    @property
    def well_observed(self) -> bool:
        """Rule of thumb: <10% expected relative error per interval."""
        return self.relative_error < 0.10


def data_quality_report(
    data: SampleSet, collector: PmuCollector
) -> Dict[str, EventQuality]:
    """Per-event observation quality for a collected sample set.

    The expected per-interval relative error of a multiplex-scaled
    estimate of a Poisson count N is 1/sqrt(N); N is the density times
    the observation window (interval length x duty cycle).
    """
    if tuple(data.feature_names) != tuple(collector.schedule.event_names):
        raise ValueError(
            "sample set schema does not match the collector's event list"
        )
    window = collector.duty_cycle * collector.config.interval_instructions
    report = {}
    for name in data.feature_names:
        density = float(data.column(name).mean())
        raw = density * window
        report[name] = EventQuality(
            event=name,
            mean_density=density,
            mean_raw_count=raw,
            relative_error=1.0 / np.sqrt(raw) if raw > 0 else float("inf"),
        )
    return report


def format_quality_table(
    report: Dict[str, EventQuality]
) -> str:
    """Render the quality report, worst-observed events first."""
    rows: Tuple[EventQuality, ...] = tuple(
        sorted(report.values(), key=lambda q: -q.relative_error)
    )
    lines = [
        f"{'event':16s} {'density':>12s} {'raw count':>11s} "
        f"{'rel.err':>8s}  quality",
        "-" * 60,
    ]
    for q in rows:
        flag = "ok" if q.well_observed else "NOISY"
        lines.append(
            f"{q.event:16s} {q.mean_density:12.3g} {q.mean_raw_count:11.1f} "
            f"{q.relative_error:8.1%}  {flag}"
        )
    return "\n".join(lines)
