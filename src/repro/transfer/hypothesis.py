"""Two-sample hypothesis tests (Section VI.A).

The paper's transferability tests compare either the dependent
variable of two data sets (H0: the generating distributions agree) or
the predicted values against the actual values on the target set.  It
uses the two-sample t statistic built from the unbiased estimators of
Equations 8-11, judged against the 1.96 critical value at 95%
confidence.  Levene's test (variance equality) and the Mann-Whitney U
test (distribution shift, rank-based) are the non-parametric
alternatives the paper cites; all three are implemented here from
scratch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stats.descriptive import standard_error_of_difference
from repro.stats.distributions import FDistribution, Normal, StudentT
from repro.stats.transfer import SampleMoments, t_statistic_from_moments

__all__ = [
    "TwoSampleTestResult",
    "two_sample_t_test",
    "welch_t_test",
    "levene_test",
    "mann_whitney_u",
]


@dataclass(frozen=True)
class TwoSampleTestResult:
    """Outcome of one two-sample test.

    ``reject`` is the decision at the requested confidence: True means
    the samples differ significantly (the model is *not* transferable
    by this criterion).
    """

    test: str
    statistic: float
    df: float
    p_value: float
    critical_value: float
    confidence: float

    @property
    def reject(self) -> bool:
        return abs(self.statistic) > self.critical_value

    def __str__(self) -> str:
        verdict = "reject H0" if self.reject else "fail to reject H0"
        return (
            f"{self.test}: statistic={self.statistic:.4g} "
            f"(critical {self.critical_value:.4g} at "
            f"{self.confidence * 100:.0f}%), p={self.p_value:.4g} -> {verdict}"
        )


def _as_sample(values: Sequence[float], label: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size < 2:
        raise ValueError(f"{label} must be a 1-D sample with >= 2 values")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{label} contains NaN or infinite values")
    return arr


def two_sample_t_test(
    a: Sequence[float],
    b: Sequence[float],
    confidence: float = 0.95,
) -> TwoSampleTestResult:
    """The paper's two-sample t-test (Eqs. 8-11).

    Uses the unpooled standard error ``sqrt(S_a^2/n + S_b^2/m)`` and
    ``n + m - 2`` degrees of freedom, exactly as in Section VI.A.  The
    paper notes this is robust for large samples of similar size.

    The statistic itself is computed by the shared
    :func:`repro.stats.transfer.t_statistic_from_moments`, the same
    arithmetic the streaming drift detectors evaluate on window
    moments; this batch entry point keeps its historical contract of
    raising :class:`ValueError` on degenerate inputs.
    """
    a = _as_sample(a, "sample a")
    b = _as_sample(b, "sample b")
    summary = t_statistic_from_moments(
        SampleMoments.from_values(a),
        SampleMoments.from_values(b),
        confidence,
    )
    if not summary.sufficient:
        raise ValueError("both samples are constant; t statistic undefined")
    return TwoSampleTestResult(
        test="two-sample t",
        statistic=summary.statistic,
        df=summary.df,
        p_value=summary.p_value,
        critical_value=summary.critical_value,
        confidence=confidence,
    )


def welch_t_test(
    a: Sequence[float],
    b: Sequence[float],
    confidence: float = 0.95,
) -> TwoSampleTestResult:
    """Welch's t-test: same statistic, Satterthwaite degrees of freedom.

    Provided for the unequal-variance case the paper's robustness
    discussion covers.
    """
    a = _as_sample(a, "sample a")
    b = _as_sample(b, "sample b")
    var_a = float(a.var(ddof=1))
    var_b = float(b.var(ddof=1))
    se = standard_error_of_difference(var_a, a.size, var_b, b.size)
    if se == 0.0:
        raise ValueError("both samples are constant; t statistic undefined")
    statistic = (float(a.mean()) - float(b.mean())) / se
    ra = var_a / a.size
    rb = var_b / b.size
    df = (ra + rb) ** 2 / (ra**2 / (a.size - 1) + rb**2 / (b.size - 1))
    dist = StudentT(df)
    return TwoSampleTestResult(
        test="Welch t",
        statistic=statistic,
        df=float(df),
        p_value=dist.two_sided_p(statistic),
        critical_value=dist.critical_value(confidence),
        confidence=confidence,
    )


def levene_test(
    a: Sequence[float],
    b: Sequence[float],
    confidence: float = 0.95,
    center: str = "median",
) -> TwoSampleTestResult:
    """Levene's test of variance equality (Brown-Forsythe variant).

    The statistic is a one-way ANOVA F on the absolute deviations from
    each sample's center (median by default, which is robust).
    """
    a = _as_sample(a, "sample a")
    b = _as_sample(b, "sample b")
    if center == "median":
        za = np.abs(a - np.median(a))
        zb = np.abs(b - np.median(b))
    elif center == "mean":
        za = np.abs(a - a.mean())
        zb = np.abs(b - b.mean())
    else:
        raise ValueError(f"center must be 'median' or 'mean', got {center!r}")
    n, m = a.size, b.size
    total = n + m
    grand = (za.sum() + zb.sum()) / total
    between = n * (za.mean() - grand) ** 2 + m * (zb.mean() - grand) ** 2
    within = ((za - za.mean()) ** 2).sum() + ((zb - zb.mean()) ** 2).sum()
    if within == 0.0:
        raise ValueError("zero within-group deviation; F statistic undefined")
    statistic = (total - 2) * between / within
    dist = FDistribution(1.0, float(total - 2))
    return TwoSampleTestResult(
        test="Levene (Brown-Forsythe)",
        statistic=statistic,
        df=float(total - 2),
        p_value=dist.sf(statistic),
        critical_value=dist.ppf(confidence),
        confidence=confidence,
    )


def mann_whitney_u(
    a: Sequence[float],
    b: Sequence[float],
    confidence: float = 0.95,
) -> TwoSampleTestResult:
    """Mann-Whitney U test with the large-sample normal approximation.

    Rank-based and hence distribution-free; ties receive midranks with
    the standard variance correction.  The reported statistic is the
    standardized z of U.
    """
    a = _as_sample(a, "sample a")
    b = _as_sample(b, "sample b")
    n, m = a.size, b.size
    combined = np.concatenate([a, b])
    order = np.argsort(combined, kind="stable")
    ranks = np.empty(n + m, dtype=float)
    sorted_values = combined[order]
    # Midranks for ties.
    i = 0
    position = 1
    while i < n + m:
        j = i
        while j + 1 < n + m and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        midrank = 0.5 * (position + position + (j - i))
        ranks[order[i : j + 1]] = midrank
        position += j - i + 1
        i = j + 1
    rank_sum_a = ranks[:n].sum()
    u = rank_sum_a - n * (n + 1) / 2.0
    mean_u = n * m / 2.0
    # Tie correction on the variance.
    _, tie_counts = np.unique(sorted_values, return_counts=True)
    tie_term = float(np.sum(tie_counts**3 - tie_counts))
    total = n + m
    var_u = n * m / 12.0 * ((total + 1) - tie_term / (total * (total - 1)))
    if var_u <= 0.0:
        raise ValueError("all values tie; U statistic undefined")
    z = (u - mean_u) / np.sqrt(var_u)
    normal = Normal()
    return TwoSampleTestResult(
        test="Mann-Whitney U",
        statistic=float(z),
        df=float("nan"),
        p_value=normal.two_sided_p(z),
        critical_value=normal.ppf(0.5 + confidence / 2.0),
        confidence=confidence,
    )
