"""Additional distribution-comparison tests.

Section VI.A notes that "several hypothesis testing techniques can be
used" and divides them into parametric and non-parametric families.
Beyond the t/Levene/Mann-Whitney trio, two more tests round out the
toolbox:

* the two-sample Kolmogorov-Smirnov test — sensitive to *any*
  difference between the two CPI distributions, not just location or
  scale; and
* the chi-square homogeneity test on leaf profiles — do two benchmarks
  (or suites) distribute their samples over the tree's linear models
  in the same way?  This puts a significance value behind the Table
  II/IV comparisons.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.stats.distributions import ChiSquare
from repro.transfer.hypothesis import TwoSampleTestResult, _as_sample

__all__ = ["ks_two_sample", "chi_square_profiles"]


def _ks_sf(statistic: float, n: int, m: int) -> float:
    """Asymptotic Kolmogorov survival function with effective size."""
    en = math.sqrt(n * m / (n + m))
    # Stephens' correction improves small-sample accuracy.
    lam = (en + 0.12 + 0.11 / en) * statistic
    if lam < 1e-8:
        return 1.0
    total = 0.0
    for j in range(1, 101):
        term = 2.0 * (-1.0) ** (j - 1) * math.exp(-2.0 * j * j * lam * lam)
        total += term
        if abs(term) < 1e-12:
            break
    return min(max(total, 0.0), 1.0)


def ks_two_sample(
    a: Sequence[float],
    b: Sequence[float],
    confidence: float = 0.95,
) -> TwoSampleTestResult:
    """Two-sample Kolmogorov-Smirnov test (asymptotic p-value).

    The statistic is the maximum vertical distance between the two
    empirical CDFs; H0 is that both samples come from one distribution.
    """
    a = np.sort(_as_sample(a, "sample a"))
    b = np.sort(_as_sample(b, "sample b"))
    n, m = a.size, b.size
    # Evaluate both ECDFs over the pooled sample points.
    pooled = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, pooled, side="right") / n
    cdf_b = np.searchsorted(b, pooled, side="right") / m
    statistic = float(np.max(np.abs(cdf_a - cdf_b)))
    p_value = _ks_sf(statistic, n, m)
    # Critical D at the requested confidence (asymptotic formula).
    alpha = 1.0 - confidence
    c_alpha = math.sqrt(-0.5 * math.log(alpha / 2.0))
    critical = c_alpha * math.sqrt((n + m) / (n * m))
    return TwoSampleTestResult(
        test="Kolmogorov-Smirnov",
        statistic=statistic,
        df=float("nan"),
        p_value=p_value,
        critical_value=critical,
        confidence=confidence,
    )


def chi_square_profiles(
    counts_a: Mapping[str, float],
    counts_b: Mapping[str, float],
    confidence: float = 0.95,
) -> TwoSampleTestResult:
    """Chi-square homogeneity test over two leaf-count profiles.

    ``counts_a``/``counts_b`` map LM name to *sample counts* (not
    percentages).  Cells with zero expected count are dropped; H0 is
    that both profiles draw from the same distribution over models.
    """
    lms = sorted(set(counts_a) | set(counts_b))
    a = np.array([float(counts_a.get(lm, 0.0)) for lm in lms])
    b = np.array([float(counts_b.get(lm, 0.0)) for lm in lms])
    if np.any(a < 0) or np.any(b < 0):
        raise ValueError("counts must be non-negative")
    total_a, total_b = a.sum(), b.sum()
    if total_a == 0 or total_b == 0:
        raise ValueError("both profiles need at least one sample")
    pooled = a + b
    keep = pooled > 0
    a, b, pooled = a[keep], b[keep], pooled[keep]
    if keep.sum() < 2:
        raise ValueError("need at least two populated cells")
    grand = total_a + total_b
    expected_a = pooled * total_a / grand
    expected_b = pooled * total_b / grand
    statistic = float(
        np.sum((a - expected_a) ** 2 / expected_a)
        + np.sum((b - expected_b) ** 2 / expected_b)
    )
    df = float(keep.sum() - 1)
    dist = ChiSquare(df)
    return TwoSampleTestResult(
        test="chi-square homogeneity",
        statistic=statistic,
        df=df,
        p_value=dist.sf(statistic),
        critical_value=dist.ppf(confidence),
        confidence=confidence,
    )
