"""Transfer-or-retrain decision support.

The paper's motivation for transferability is "economy of scale in
modeling and simulation investments": reuse an existing model when it
is good enough, retrain only when it is not.  This module operationalizes
that decision: given an existing model and a small *probe* sample from
the new workload, bootstrap the accuracy metrics on the probe and
decide —

* ``reuse``    — the whole MAE interval is below the threshold and the
  whole C interval above: the model is demonstrably good enough;
* ``retrain``  — the whole MAE interval is above the threshold or the
  whole C interval below: demonstrably not good enough;
* ``collect_more`` — the intervals straddle a threshold: the probe is
  too small to tell.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.dataset import SampleSet
from repro.transfer.assess import Predictor, TransferabilityCriteria
from repro.transfer.bootstrap import MetricIntervals, bootstrap_metric_intervals

__all__ = ["TransferDecision", "decide_transfer"]


@dataclass(frozen=True)
class TransferDecision:
    """Outcome of a probe-based transfer decision."""

    action: str  # 'reuse' | 'retrain' | 'collect_more'
    intervals: MetricIntervals
    criteria: TransferabilityCriteria
    probe_size: int

    def summary(self) -> str:
        return "\n".join(
            [
                f"probe: {self.probe_size} intervals",
                f"  C   {self.intervals.correlation} "
                f"(need > {self.criteria.min_correlation})",
                f"  MAE {self.intervals.mae} "
                f"(need < {self.criteria.max_mae})",
                f"decision: {self.action.upper()}",
            ]
        )


def decide_transfer(
    model: Predictor,
    probe: SampleSet,
    criteria: TransferabilityCriteria = TransferabilityCriteria(),
    n_resamples: int = 1000,
    seed: int = 0,
) -> TransferDecision:
    """Decide whether ``model`` can be reused on the probe's workload."""
    predicted = model.predict(probe.X)
    intervals = bootstrap_metric_intervals(
        predicted, probe.y, n_resamples=n_resamples, seed=seed
    )
    mae_ok = intervals.mae.entirely_below(criteria.max_mae)
    mae_bad = intervals.mae.entirely_above(criteria.max_mae)
    c_ok = intervals.correlation.entirely_above(criteria.min_correlation)
    c_bad = intervals.correlation.entirely_below(criteria.min_correlation)
    if mae_ok and c_ok:
        action = "reuse"
    elif mae_bad or c_bad:
        action = "retrain"
    else:
        action = "collect_more"
    return TransferDecision(
        action=action,
        intervals=intervals,
        criteria=criteria,
        probe_size=len(probe),
    )
