"""Transferability verdicts combining both methodologies.

``assess_transferability(model, source, target)`` runs the complete
Section VI procedure: the two-sample t-test on the dependent variable
of the two data sets, the t-test on predicted-vs-actual values on the
target, and the prediction accuracy metrics, then applies the paper's
acceptance thresholds (C > 0.85, MAE < 0.15 by default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.datasets.dataset import SampleSet
from repro.stats.transfer import TransferCriteria, meets_accuracy_thresholds
from repro.transfer.hypothesis import TwoSampleTestResult, two_sample_t_test
from repro.transfer.metrics import PredictionMetrics, prediction_metrics

__all__ = [
    "Predictor",
    "TransferabilityCriteria",
    "TransferabilityReport",
    "assess_transferability",
]


class Predictor(Protocol):
    """Anything with a ``predict(X) -> y`` method (tree or baseline)."""

    def predict(self, X: np.ndarray) -> np.ndarray: ...


#: The acceptance thresholds now live in :mod:`repro.stats.transfer`
#: (shared with the streaming drift detectors); the historical name
#: stays the public one here.
TransferabilityCriteria = TransferCriteria


@dataclass(frozen=True)
class TransferabilityReport:
    """Everything Section VI reports for one (model, source, target).

    ``dependent_test`` compares source CPI vs. target CPI (H0: same
    generating distribution); ``prediction_test`` compares predicted
    vs. actual CPI on the target.  ``metrics`` holds C/MAE etc.
    """

    source_name: str
    target_name: str
    dependent_test: TwoSampleTestResult
    prediction_test: TwoSampleTestResult
    metrics: PredictionMetrics
    criteria: TransferabilityCriteria

    @property
    def metrics_transferable(self) -> bool:
        """Verdict by prediction accuracy (Section VI.B)."""
        return meets_accuracy_thresholds(
            self.metrics.correlation, self.metrics.mae, self.criteria
        )

    @property
    def hypothesis_transferable(self) -> bool:
        """Verdict by hypothesis testing (Section VI.A).

        Transferable when neither test rejects its null hypothesis.
        """
        return not (self.dependent_test.reject or self.prediction_test.reject)

    @property
    def transferable(self) -> bool:
        """Overall verdict: both methodologies must agree it transfers."""
        return self.metrics_transferable and self.hypothesis_transferable

    def summary(self) -> str:
        verdict = "TRANSFERABLE" if self.transferable else "NOT TRANSFERABLE"
        return "\n".join(
            [
                f"Transferability: {self.source_name} -> {self.target_name}",
                f"  dependent-variable test: {self.dependent_test}",
                f"  predicted-vs-actual test: {self.prediction_test}",
                f"  prediction metrics: {self.metrics}",
                (
                    f"  thresholds: C > {self.criteria.min_correlation}, "
                    f"MAE < {self.criteria.max_mae}"
                ),
                f"  verdict: {verdict}",
            ]
        )


def assess_transferability(
    model: Predictor,
    source: SampleSet,
    target: SampleSet,
    criteria: TransferabilityCriteria = TransferabilityCriteria(),
    source_name: str = "source",
    target_name: str = "target",
) -> TransferabilityReport:
    """Run the full Section VI transferability assessment.

    ``model`` must have been trained on ``source`` (the L1 data set);
    ``target`` is the L2 data set the model is being transferred to.
    """
    # A ModelTree predicts through the compiled batch kernel
    # (repro.mtree.compiled) by default — the E7/E8 battery evaluates
    # every (source, target) cell on full target sets, which is
    # exactly the batched regime the kernel is built for.
    predicted = model.predict(target.X)
    return TransferabilityReport(
        source_name=source_name,
        target_name=target_name,
        dependent_test=two_sample_t_test(
            source.y, target.y, criteria.confidence
        ),
        prediction_test=two_sample_t_test(
            predicted, target.y, criteria.confidence
        ),
        metrics=prediction_metrics(predicted, target.y),
        criteria=criteria,
    )
