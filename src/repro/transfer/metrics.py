"""Prediction accuracy metrics (Section VI.B).

The paper's two headline metrics are the correlation coefficient C
(Eq. 12) and the mean absolute error MAE (Eq. 13).  WEKA's evaluation
output — which the authors were reading — also reports RMSE, relative
absolute error (RAE) and root relative squared error (RRSE), so those
are included for completeness and used by the baseline comparisons.

The Eq. 12/13 computations themselves live in the shared
:mod:`repro.stats.transfer` module (one implementation for this batch
path and the streaming drift detectors); they are re-exported here
unchanged for the established ``repro.transfer`` API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stats.transfer import (
    correlation_coefficient,
    mean_absolute_error,
    paired_arrays as _paired,
)

__all__ = [
    "PredictionMetrics",
    "correlation_coefficient",
    "mean_absolute_error",
    "prediction_metrics",
]


@dataclass(frozen=True)
class PredictionMetrics:
    """The full WEKA-style metric set for one evaluation."""

    n: int
    correlation: float
    mae: float
    rmse: float
    rae: float
    rrse: float

    def __str__(self) -> str:
        return (
            f"n={self.n} C={self.correlation:.4f} MAE={self.mae:.4f} "
            f"RMSE={self.rmse:.4f} RAE={self.rae * 100:.1f}% "
            f"RRSE={self.rrse * 100:.1f}%"
        )


def prediction_metrics(
    predicted: Sequence[float], actual: Sequence[float]
) -> PredictionMetrics:
    """Compute C, MAE, RMSE, RAE and RRSE for one prediction run.

    RAE normalizes MAE by the error of always predicting the actuals'
    mean; RRSE does the same for RMSE.  Values above 1 mean the model
    is worse than that trivial predictor.
    """
    p, a = _paired(predicted, actual)
    residual = p - a
    mae = float(np.mean(np.abs(residual)))
    rmse = float(np.sqrt(np.mean(residual**2)))
    baseline = a - a.mean()
    baseline_mae = float(np.mean(np.abs(baseline)))
    baseline_rmse = float(np.sqrt(np.mean(baseline**2)))
    return PredictionMetrics(
        n=int(p.size),
        correlation=correlation_coefficient(p, a),
        mae=mae,
        rmse=rmse,
        rae=mae / baseline_mae if baseline_mae > 0 else float("inf"),
        rrse=rmse / baseline_rmse if baseline_rmse > 0 else float("inf"),
    )
