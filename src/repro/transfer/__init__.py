"""Model transferability analysis (Section VI of the paper).

Two complementary methodologies:

* :mod:`repro.transfer.hypothesis` — two-sample hypothesis tests on
  (a) the dependent variable across the two data sets and (b) the
  predicted vs. actual values on the target set (Eqs. 8-11), with the
  two-sample t-test plus the non-parametric Levene and Mann-Whitney
  alternatives the paper mentions.
* :mod:`repro.transfer.metrics` — prediction accuracy metrics: the
  correlation coefficient C (Eq. 12) and MAE (Eq. 13), plus the other
  standard WEKA regression metrics (RMSE, RAE, RRSE).

:mod:`repro.transfer.assess` combines both into a transferability
verdict against the paper's acceptance thresholds (C > 0.85,
MAE < 0.15).
"""

from repro.transfer.hypothesis import (
    TwoSampleTestResult,
    levene_test,
    mann_whitney_u,
    two_sample_t_test,
    welch_t_test,
)
from repro.transfer.metrics import (
    PredictionMetrics,
    correlation_coefficient,
    mean_absolute_error,
    prediction_metrics,
)
from repro.transfer.assess import (
    TransferabilityCriteria,
    TransferabilityReport,
    assess_transferability,
)
from repro.transfer.bootstrap import (
    BootstrapInterval,
    bootstrap_metric_intervals,
)
from repro.transfer.decision import TransferDecision, decide_transfer
from repro.transfer.nonparametric import chi_square_profiles, ks_two_sample

__all__ = [
    "TransferDecision",
    "decide_transfer",
    "BootstrapInterval",
    "bootstrap_metric_intervals",
    "chi_square_profiles",
    "ks_two_sample",
    "PredictionMetrics",
    "TransferabilityCriteria",
    "TransferabilityReport",
    "TwoSampleTestResult",
    "assess_transferability",
    "correlation_coefficient",
    "levene_test",
    "mann_whitney_u",
    "mean_absolute_error",
    "prediction_metrics",
    "two_sample_t_test",
    "welch_t_test",
]
