"""Bootstrap confidence intervals for the prediction metrics.

The paper reports point estimates of C and MAE and compares them with
fixed thresholds.  With resampled data a point estimate can sit on
either side of a threshold by luck; percentile-bootstrap intervals make
the verdicts robust ("MAE is below 0.15 with 95% confidence" is a much
stronger statement than "the measured MAE was 0.14").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.transfer.metrics import (
    correlation_coefficient,
    mean_absolute_error,
)

__all__ = ["BootstrapInterval", "bootstrap_metric_intervals"]


@dataclass(frozen=True)
class BootstrapInterval:
    """A point estimate with a percentile-bootstrap interval."""

    point: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def entirely_below(self, threshold: float) -> bool:
        """The whole interval is under the threshold."""
        return self.high < threshold

    def entirely_above(self, threshold: float) -> bool:
        return self.low > threshold

    def __str__(self) -> str:
        return (
            f"{self.point:.4f} "
            f"[{self.low:.4f}, {self.high:.4f}] @ {self.confidence * 100:.0f}%"
        )


@dataclass(frozen=True)
class MetricIntervals:
    """Bootstrap intervals for the Section VI.B metrics."""

    correlation: BootstrapInterval
    mae: BootstrapInterval
    n_resamples: int


def bootstrap_metric_intervals(
    predicted: Sequence[float],
    actual: Sequence[float],
    n_resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> MetricIntervals:
    """Percentile-bootstrap intervals for C and MAE.

    Pairs (predicted_i, actual_i) are resampled with replacement;
    degenerate resamples (constant actuals) are skipped for C.
    """
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if predicted.shape != actual.shape or predicted.ndim != 1:
        raise ValueError(
            f"predicted/actual must be equal-length 1-D arrays, got "
            f"{predicted.shape} and {actual.shape}"
        )
    if predicted.size < 10:
        raise ValueError("bootstrap needs at least 10 pairs")
    if n_resamples < 100:
        raise ValueError(f"n_resamples must be >= 100, got {n_resamples}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")

    rng = np.random.default_rng(seed)
    n = predicted.size
    correlations = np.empty(n_resamples)
    maes = np.empty(n_resamples)
    for i in range(n_resamples):
        idx = rng.integers(0, n, size=n)
        p, a = predicted[idx], actual[idx]
        maes[i] = float(np.mean(np.abs(p - a)))
        correlations[i] = correlation_coefficient(p, a)

    alpha = (1.0 - confidence) / 2.0
    lo_q, hi_q = 100.0 * alpha, 100.0 * (1.0 - alpha)

    def interval(samples: np.ndarray, point: float) -> BootstrapInterval:
        return BootstrapInterval(
            point=point,
            low=float(np.percentile(samples, lo_q)),
            high=float(np.percentile(samples, hi_q)),
            confidence=confidence,
        )

    return MetricIntervals(
        correlation=interval(
            correlations, correlation_coefficient(predicted, actual)
        ),
        mae=interval(maes, mean_absolute_error(predicted, actual)),
        n_resamples=n_resamples,
    )
