"""Benchmark specifications: phase mixtures with persistence."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.pmu.events import PREDICTOR_NAMES
from repro.workloads.phase import PhaseSpec

__all__ = ["BenchmarkSpec"]

#: Mean number of consecutive sampling intervals spent in one phase
#: before the program moves on (geometric dwell time).
_DEFAULT_PERSISTENCE = 12.0


@dataclass(frozen=True)
class BenchmarkSpec:
    """One synthetic benchmark.

    Parameters
    ----------
    name:
        Benchmark name in SPEC style (e.g. ``"429.mcf"``).
    phases:
        The phase mixture; weights are normalized internally.
    language / category / description:
        Metadata mirrored from the SPEC documentation, used by reports.
    weight:
        Relative instruction count of the benchmark within its suite
        (drives the sample share, as in the paper's 'Suite' rows).
    persistence:
        Mean dwell time, in sampling intervals, within one phase.
    """

    name: str
    phases: Tuple[PhaseSpec, ...]
    language: str = ""
    category: str = ""
    description: str = ""
    weight: float = 1.0
    persistence: float = _DEFAULT_PERSISTENCE

    def __init__(
        self,
        name: str,
        phases: Sequence[PhaseSpec],
        language: str = "",
        category: str = "",
        description: str = "",
        weight: float = 1.0,
        persistence: float = _DEFAULT_PERSISTENCE,
    ) -> None:
        if not name:
            raise ValueError("benchmark name must be non-empty")
        phases = tuple(phases)
        if not phases:
            raise ValueError(f"benchmark {name!r} needs at least one phase")
        names = [p.name for p in phases]
        if len(set(names)) != len(names):
            raise ValueError(f"benchmark {name!r} has duplicate phase names: {names}")
        if weight <= 0:
            raise ValueError(f"benchmark {name!r}: weight must be positive")
        if persistence < 1:
            raise ValueError(f"benchmark {name!r}: persistence must be >= 1")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "phases", phases)
        object.__setattr__(self, "language", language)
        object.__setattr__(self, "category", category)
        object.__setattr__(self, "description", description)
        object.__setattr__(self, "weight", weight)
        object.__setattr__(self, "persistence", persistence)

    @property
    def phase_weights(self) -> np.ndarray:
        """Normalized phase weights."""
        w = np.array([p.weight for p in self.phases], dtype=float)
        return w / w.sum()

    def sample_phase_indices(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Phase index per interval, with geometric dwell times.

        Phases are chosen by weight; once entered, execution stays in the
        phase for a geometric number of intervals with mean
        ``persistence``.  The stationary phase shares equal the weights.
        """
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        # ``rng.choice(k, p=w)`` normalizes the cumulative weights and
        # binary-searches them with one uniform draw on every call.
        # Hoisting the cdf out of the dwell loop performs the identical
        # arithmetic on the identical draw (same stream consumption,
        # same index, verified against Generator.choice), without
        # re-validating the weight vector per phase entry.
        cdf = self.phase_weights.cumsum()
        cdf /= cdf[-1]
        geometric_p = 1.0 / self.persistence
        indices = np.empty(n, dtype=int)
        filled = 0
        while filled < n:
            phase = int(cdf.searchsorted(rng.random(), side="right"))
            dwell = int(rng.geometric(geometric_p))
            dwell = min(dwell, n - filled)
            indices[filled : filled + dwell] = phase
            filled += dwell
        return indices

    def sample_trace(
        self,
        n: int,
        rng: np.random.Generator,
        feature_names: Sequence[str] = PREDICTOR_NAMES,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` ordered intervals with their ground-truth phases.

        Returns ``(densities, phase_indices)``; the indices are the
        ground truth a phase detector should recover.
        """
        indices = self.sample_phase_indices(n, rng)
        out = np.empty((n, len(feature_names)), dtype=float)
        for phase_index, phase in enumerate(self.phases):
            rows = np.nonzero(indices == phase_index)[0]
            if rows.size:
                out[rows] = phase.sample(rows.size, rng, feature_names)
        return out, indices

    def sample_true_densities(
        self,
        n: int,
        rng: np.random.Generator,
        feature_names: Sequence[str] = PREDICTOR_NAMES,
    ) -> np.ndarray:
        """Draw ``n`` true per-instruction density vectors."""
        densities, _ = self.sample_trace(n, rng, feature_names)
        return densities
