"""Synthetic SPEC CPU2000: the suite CPU2006 replaced.

An *extension* beyond the paper: CPU2000 is the predecessor suite the
paper mentions in passing ("SPEC CPU2006 was released in 2006 to
replace CPU2000"), and several of the related-work studies ([11])
characterized it.  Its members run the same kind of serial CPU- and
memory-bound code as CPU2006 — same region of the event space, smaller
working sets (reference inputs were sized for late-90s machines, so
cache and TLB pressure is systematically milder).  That placement makes
it the natural probe for *generational* transferability: a CPU2006
model should transfer far better to CPU2000 than to OMP2001, without
being quite as good as within-suite.

All 26 benchmarks (12 CINT + 14 CFP) are modeled.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.benchmark import BenchmarkSpec
from repro.workloads.phase import PhaseSpec
from repro.workloads.suite import Suite

__all__ = ["spec_cpu2000", "CPU2000_BENCHMARKS"]


def _phase(name: str, weight: float, **densities: float) -> PhaseSpec:
    spreads = {"SIMD": 0.10} if densities.get("SIMD", 0.0) > 0.6 else {}
    return PhaseSpec(name=name, weight=weight, densities=densities, spreads=spreads)


def _base(weight: float = 1.0, **overrides: float) -> PhaseSpec:
    return _phase("base", weight, **overrides)


def _tlb(weight: float = 1.0, **overrides: float) -> PhaseSpec:
    # Milder than the 2006 equivalent: smaller working sets.
    densities = {
        "DtlbMiss": 0.00035,
        "PageWalk": 0.00015,
        "L1DMiss": 0.005,
        "L2Miss": 0.00012,
        **overrides,
    }
    return _phase("tlb-pressure", weight, **densities)


def _sta(weight: float = 1.0, **overrides: float) -> PhaseSpec:
    densities = {
        "DtlbMiss": 0.0004,
        "L2Miss": 0.0002,
        "LdBlkStA": 0.0009,
        "MisprBr": 0.00006,
        "PageWalk": 0.00018,
        **overrides,
    }
    return _phase("store-addr", weight, **densities)


def _stream(weight: float = 1.0, **overrides: float) -> PhaseSpec:
    densities = {
        "DtlbMiss": 0.00035,
        "L2Miss": 0.0010,
        "L1DMiss": 0.016,
        "Br": 0.07,
        "MisprBr": 0.00003,
        "PageWalk": 0.00018,
        **overrides,
    }
    return _phase("memory-stream", weight, **densities)


def _pointer(weight: float = 1.0, **overrides: float) -> PhaseSpec:
    densities = {
        "DtlbMiss": 0.0008,
        "L2Miss": 0.0009,
        "L1DMiss": 0.024,
        "Br": 0.20,
        "MisprBr": 0.0011,
        "LdBlkOlp": 0.0025,
        "PageWalk": 0.0004,
        **overrides,
    }
    return _phase("pointer-chase", weight, **densities)


CPU2000_BENCHMARKS: Dict[str, BenchmarkSpec] = {}


def _add(spec: BenchmarkSpec) -> None:
    CPU2000_BENCHMARKS[spec.name] = spec


# ----------------------------------------------------------------- CINT
_add(BenchmarkSpec(
    "164.gzip",
    phases=(_base(0.85, Load=0.32, Br=0.15, L1DMiss=0.004), _tlb(0.15)),
    language="C", category="CINT2000",
    description="LZ77 compression", weight=1.0,
))
_add(BenchmarkSpec(
    "175.vpr",
    phases=(_base(0.55, Br=0.18, L1DMiss=0.006), _tlb(0.30), _sta(0.15)),
    language="C", category="CINT2000",
    description="FPGA placement and routing", weight=0.9,
))
_add(BenchmarkSpec(
    "176.gcc",
    phases=(
        _base(0.55, Br=0.21, L1IMiss=0.0018, Store=0.13),
        _tlb(0.28, L1IMiss=0.002),
        _sta(0.17, MisprBr=0.0007, Br=0.20),
    ),
    language="C", category="CINT2000",
    description="GNU C compiler (2000-era inputs)", weight=0.7,
))
_add(BenchmarkSpec(
    "181.mcf",
    phases=(
        _pointer(0.80, DtlbMiss=0.0016, L2Miss=0.0028, Br=0.24),
        _stream(0.20, L2Miss=0.0014),
    ),
    language="C", category="CINT2000",
    description="Vehicle scheduling (network simplex), smaller footprint",
    weight=0.6,
))
_add(BenchmarkSpec(
    "186.crafty",
    phases=(_base(0.82, Br=0.20, MisprBr=0.0002, L1IMiss=0.0012), _tlb(0.18)),
    language="C", category="CINT2000",
    description="Chess engine", weight=0.9,
))
_add(BenchmarkSpec(
    "197.parser",
    phases=(_base(0.52, Br=0.19, L1DMiss=0.006), _tlb(0.33), _sta(0.15)),
    language="C", category="CINT2000",
    description="Link-grammar English parser", weight=1.0,
))
_add(BenchmarkSpec(
    "252.eon",
    phases=(_base(0.88, Mul=0.04, Div=0.004, L1DMiss=0.003,
                  DtlbMiss=0.00004), _tlb(0.12)),
    language="C++", category="CINT2000",
    description="Probabilistic ray tracing", weight=0.5,
))
_add(BenchmarkSpec(
    "253.perlbmk",
    phases=(
        _base(0.62, Br=0.22, L1IMiss=0.0012, MisprBr=0.00012),
        _tlb(0.22),
        _sta(0.16, MisprBr=0.0008),
    ),
    language="C", category="CINT2000",
    description="Perl interpreter", weight=0.9,
))
_add(BenchmarkSpec(
    "254.gap",
    phases=(_base(0.68, Load=0.33, L1DMiss=0.005), _tlb(0.32)),
    language="C", category="CINT2000",
    description="Computational group theory", weight=0.9,
))
_add(BenchmarkSpec(
    "255.vortex",
    phases=(
        _base(0.55, L1IMiss=0.0025, Store=0.15),
        _tlb(0.30, L1IMiss=0.003),
        _sta(0.15, L1IMiss=0.0025),
    ),
    language="C", category="CINT2000",
    description="Object-oriented database", weight=1.0,
))
_add(BenchmarkSpec(
    "256.bzip2",
    phases=(_base(0.78, Load=0.33, Br=0.14, L1DMiss=0.0045), _tlb(0.22)),
    language="C", category="CINT2000",
    description="Burrows-Wheeler compression (2000-era inputs)", weight=0.9,
))
_add(BenchmarkSpec(
    "300.twolf",
    phases=(_base(0.45, L1DMiss=0.008, Br=0.17), _tlb(0.40, L1DMiss=0.009),
            _sta(0.15)),
    language="C", category="CINT2000",
    description="Standard-cell place and route", weight=1.0,
))

# ----------------------------------------------------------------- CFP
_add(BenchmarkSpec(
    "168.wupwise",
    phases=(_base(0.75, Mul=0.05, SIMD=0.25, DtlbMiss=0.00004),
            _phase("simd-fed", 0.25, SIMD=0.68, L1DMiss=0.004,
                   L2Miss=0.00015, Br=0.03)),
    language="Fortran", category="CFP2000",
    description="Lattice gauge theory (serial)", weight=1.0,
))
_add(BenchmarkSpec(
    "171.swim",
    phases=(
        _phase("stencil", 0.70, SIMD=0.72, L1DMiss=0.016, L2Miss=0.0009,
               Br=0.03, Load=0.40),
        _stream(0.30, SIMD=0.35),
    ),
    language="Fortran", category="CFP2000",
    description="Shallow-water stencil (serial)", weight=0.8,
))
_add(BenchmarkSpec(
    "172.mgrid",
    phases=(_stream(0.55, SIMD=0.3, L2Miss=0.0008), _sta(0.45, SIMD=0.3,
            L1DMiss=0.010)),
    language="Fortran", category="CFP2000",
    description="Multigrid solver (serial)", weight=1.1,
))
_add(BenchmarkSpec(
    "173.applu",
    phases=(
        _phase("ssor", 0.55, SIMD=0.70, L1DMiss=0.015, Mul=0.08, Br=0.04),
        _sta(0.45, SIMD=0.3, Mul=0.06),
    ),
    language="Fortran", category="CFP2000",
    description="Parabolic/elliptic PDEs (serial)", weight=0.9,
))
_add(BenchmarkSpec(
    "177.mesa",
    phases=(_base(0.80, Mul=0.05, SIMD=0.3, L1DMiss=0.004,
                  DtlbMiss=0.00005), _tlb(0.20)),
    language="C", category="CFP2000",
    description="Software OpenGL rasterizer", weight=0.9,
))
_add(BenchmarkSpec(
    "178.galgel",
    phases=(_sta(0.55, SIMD=0.35, L1DMiss=0.011, Store=0.12),
            _base(0.45, SIMD=0.3, Store=0.12, MisprBr=0.0003)),
    language="Fortran", category="CFP2000",
    description="Fluid oscillation analysis (serial)", weight=0.9,
))
_add(BenchmarkSpec(
    "179.art",
    phases=(
        _stream(0.70, L2Miss=0.0022, L1DMiss=0.035, Br=0.16,
                DtlbMiss=0.0006),
        _base(0.30, Br=0.20, L1DMiss=0.003),
    ),
    language="C", category="CFP2000",
    description="Adaptive resonance neural network (cache-thrashing)",
    weight=0.5,
))
_add(BenchmarkSpec(
    "183.equake",
    phases=(
        _sta(0.40, MisprBr=0.0008, L2Miss=0.0002, LdBlkStA=0.0008),
        _stream(0.30, L2Miss=0.0007),
        _base(0.30, L1DMiss=0.007),
    ),
    language="C", category="CFP2000",
    description="Earthquake ground motion (serial)", weight=0.7,
))
_add(BenchmarkSpec(
    "187.facerec",
    phases=(_base(0.60, SIMD=0.35, Mul=0.05, L1DMiss=0.005), _stream(0.40,
            SIMD=0.35, L2Miss=0.0007)),
    language="Fortran", category="CFP2000",
    description="Face recognition (graph matching)", weight=0.9,
))
_add(BenchmarkSpec(
    "188.ammp",
    phases=(_sta(0.45, L1DMiss=0.009), _tlb(0.35, L1DMiss=0.008),
            _base(0.20, Div=0.004)),
    language="C", category="CFP2000",
    description="Molecular mechanics (serial)", weight=1.0,
))
_add(BenchmarkSpec(
    "189.lucas",
    phases=(_phase("fft", 0.70, SIMD=0.65, L1DMiss=0.008, L2Miss=0.0005,
                   Mul=0.06, Br=0.03), _stream(0.30, SIMD=0.3)),
    language="Fortran", category="CFP2000",
    description="Lucas-Lehmer primality (FFT multiply)", weight=0.8,
))
_add(BenchmarkSpec(
    "191.fma3d",
    phases=(_sta(0.55, Store=0.13, LdBlkStD=0.0005, L1DMiss=0.008),
            _base(0.45, Store=0.13)),
    language="Fortran", category="CFP2000",
    description="Crash simulation (serial)", weight=1.1,
))
_add(BenchmarkSpec(
    "200.sixtrack",
    phases=(_base(0.85, Mul=0.06, SIMD=0.3, L1IMiss=0.0012,
                  DtlbMiss=0.00005), _tlb(0.15)),
    language="Fortran", category="CFP2000",
    description="Particle accelerator beam tracking", weight=1.0,
))
_add(BenchmarkSpec(
    "301.apsi",
    phases=(_sta(0.50, L1DMiss=0.008, PageWalk=0.0003),
            _tlb(0.30), _base(0.20)),
    language="Fortran", category="CFP2000",
    description="Air-pollution meteorology (serial)", weight=0.9,
))


def spec_cpu2000() -> Suite:
    """The synthetic SPEC CPU2000 suite (26 benchmarks)."""
    return Suite("SPEC CPU2000", list(CPU2000_BENCHMARKS.values()))
