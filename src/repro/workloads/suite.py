"""Suites: collections of benchmarks plus the generation pipeline.

``Suite.generate`` runs the full measurement chain the paper used:
workload phases produce true event densities, the machine (ground-truth
cost model + residual noise) produces true CPI, and the multiplexed PMU
collector produces the *observed* densities and CPI that make up the
final :class:`~repro.datasets.SampleSet`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.dataset import SampleSet
from repro.pmu.collector import CollectorConfig, PmuCollector
from repro.pmu.events import PREDICTOR_NAMES
from repro.uarch.core2 import build_core2_cost_model
from repro.uarch.execution import ExecutionEngine, NoiseConfig
from repro.workloads.benchmark import BenchmarkSpec

__all__ = ["Suite", "SuiteGenerationConfig"]


@dataclass(frozen=True)
class SuiteGenerationConfig:
    """Knobs of the measurement pipeline.

    ``total_samples`` is distributed over benchmarks in proportion to
    their instruction-count weights (the paper samples every 2M
    instructions, so longer benchmarks contribute more samples).
    """

    total_samples: int = 30_000
    seed: int = 20080401
    collector: CollectorConfig = CollectorConfig()
    noise: NoiseConfig = NoiseConfig()

    def __post_init__(self) -> None:
        if self.total_samples <= 0:
            raise ValueError(
                f"total_samples must be positive, got {self.total_samples}"
            )


class Suite:
    """A named set of benchmarks sharing one machine."""

    def __init__(self, name: str, benchmarks: Sequence[BenchmarkSpec]) -> None:
        if not name:
            raise ValueError("suite name must be non-empty")
        benchmarks = tuple(benchmarks)
        if not benchmarks:
            raise ValueError(f"suite {name!r} needs at least one benchmark")
        names = [b.name for b in benchmarks]
        if len(set(names)) != len(names):
            raise ValueError(f"suite {name!r} has duplicate benchmarks: {names}")
        self.name = name
        self.benchmarks: Tuple[BenchmarkSpec, ...] = benchmarks

    def __len__(self) -> int:
        return len(self.benchmarks)

    def __repr__(self) -> str:
        return f"Suite({self.name!r}, {len(self)} benchmarks)"

    def benchmark(self, name: str) -> BenchmarkSpec:
        """Look up a member benchmark by name."""
        for spec in self.benchmarks:
            if spec.name == name:
                return spec
        raise KeyError(
            f"no benchmark {name!r} in suite {self.name!r}; "
            f"have {[b.name for b in self.benchmarks]}"
        )

    def sample_allocation(self, total_samples: int) -> Dict[str, int]:
        """Samples per benchmark, proportional to instruction weight.

        Every benchmark receives at least one sample; the allocation
        sums exactly to ``total_samples``.
        """
        if total_samples < len(self.benchmarks):
            raise ValueError(
                f"total_samples={total_samples} is fewer than the "
                f"{len(self.benchmarks)} benchmarks in {self.name!r}"
            )
        weights = np.array([b.weight for b in self.benchmarks], dtype=float)
        shares = weights / weights.sum() * total_samples
        counts = np.maximum(np.floor(shares).astype(int), 1)
        deficit = total_samples - int(counts.sum())
        if deficit > 0:
            # Hand the remainder to the largest fractional parts, round
            # robin: every benchmark gets deficit // k, and the first
            # deficit % k of the fractional ranking get one more.
            order = np.argsort(-(shares - np.floor(shares)))
            extra, remainder = divmod(deficit, len(counts))
            counts += extra
            counts[order[:remainder]] += 1
        elif deficit < 0:
            # Claw back the excess from the smallest fractional parts,
            # draining each down to its floor of 1 before moving on:
            # clip the cumulative need against each one's capacity.
            order = np.argsort(shares - np.floor(shares))
            clipped = np.minimum(np.cumsum(counts[order] - 1), -deficit)
            counts[order] -= np.diff(clipped, prepend=0)
        return {b.name: int(c) for b, c in zip(self.benchmarks, counts)}

    def generate(
        self,
        config: Optional[SuiteGenerationConfig] = None,
        engine: Optional[ExecutionEngine] = None,
    ) -> SampleSet:
        """Run the measurement pipeline and return the observed samples."""
        config = config or SuiteGenerationConfig()
        engine = engine or ExecutionEngine(build_core2_cost_model(), config.noise)
        collector = PmuCollector(config.collector)
        rng = np.random.default_rng(config.seed)
        allocation = self.sample_allocation(config.total_samples)
        # One batched allocation for the whole suite: each benchmark's
        # draws land directly in its slice (no per-benchmark SampleSet
        # plus concat copies).  The rng is threaded through benchmarks
        # in suite order, so the sample stream is exactly the one a
        # per-benchmark loop would produce.
        total = config.total_samples
        X = np.empty((total, len(PREDICTOR_NAMES)), dtype=float)
        y = np.empty(total, dtype=float)
        labels = np.empty(total, dtype=object)
        start = 0
        for spec in self.benchmarks:
            n = allocation[spec.name]
            rows = slice(start, start + n)
            true_densities = spec.sample_true_densities(n, rng)
            true_cpi = engine.true_cpi(true_densities, rng)
            X[rows] = collector.observe_densities(true_densities, rng)
            y[rows] = collector.observe_cpi(true_cpi, rng)
            labels[rows] = spec.name
            start += n
        return SampleSet(PREDICTOR_NAMES, X, y, labels)
