"""Synthetic SPEC OMP2001 (medium input set): 11 benchmarks.

The suite occupies a different region of the density space than
CPU2006, per Section V of the paper: half the suite is dominated by
loads blocked by overlapping stores (LM17/LM18 regimes split by store
rate), and nearly half by high SIMD instruction rates — including the
data-starved SIMD regime (the paper's LM16, average CPI 2.50).  Suite
average CPI is ~1.27 versus CPU2006's ~0.96.

Benchmark placement follows Section V.B: 328.fma3d_m and 318.galgel_m
fall almost entirely into the heavy-store block regime; 314.mgrid_m and
330.ammp_m into the light-store block regime; 316.applu_m and
312.swim_m into the starved-SIMD regime; 330.art_m is the low-CPI
outlier; 320.equake_m spreads across most regimes.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.benchmark import BenchmarkSpec
from repro.workloads.phase import PhaseSpec
from repro.workloads.suite import Suite

__all__ = ["spec_omp2001", "OMP2001_BENCHMARKS"]


def _phase(name: str, weight: float, **densities: float) -> PhaseSpec:
    spreads = {"SIMD": 0.10} if densities.get("SIMD", 0.0) > 0.6 else {}
    return PhaseSpec(name=name, weight=weight, densities=densities, spreads=spreads)


def _block_light(weight: float = 1.0, **overrides: float) -> PhaseSpec:
    """Paper LM17 region: high load-block-overlap, modest stores."""
    densities = {
        "LdBlkOlp": 0.013,
        "Store": 0.048,
        "L1DMiss": 0.008,
        "LdBlkStA": 0.0004,
        "PageWalk": 0.00020,
        "DtlbMiss": 0.00012,
        "Br": 0.08,
        "SIMD": 0.12,
        **overrides,
    }
    return _phase("block-light-store", weight, **densities)


def _block_heavy(weight: float = 1.0, **overrides: float) -> PhaseSpec:
    """Paper LM18 region: high load-block-overlap plus heavy stores."""
    densities = {
        "LdBlkOlp": 0.014,
        "Store": 0.145,
        "PageWalk": 0.00045,
        "DtlbMiss": 0.00020,
        "Div": 0.001,
        "SIMD": 0.12,
        "Br": 0.07,
        **overrides,
    }
    return _phase("block-heavy-store", weight, **densities)


def _simd_starved(weight: float = 1.0, **overrides: float) -> PhaseSpec:
    """Paper LM16 region: SIMD-rich code starved by L1D misses."""
    densities = {
        "SIMD": 0.87,
        "L1DMiss": 0.021,
        "Misalign": 0.0007,
        "Br": 0.04,
        "Load": 0.40,
        "Mul": 0.08,
        "DtlbMiss": 0.00010,
        **overrides,
    }
    return _phase("simd-starved", weight, **densities)


def _simd_stream(weight: float = 1.0, **overrides: float) -> PhaseSpec:
    """Well-fed vector streaming (the cheaper SIMD regimes)."""
    densities = {
        "SIMD": 0.78,
        "L1DMiss": 0.007,
        "L2Miss": 0.0012,
        "LdBlkOlp": 0.004,
        "Br": 0.03,
        "Load": 0.40,
        "DtlbMiss": 0.00010,
        **overrides,
    }
    return _phase("simd-stream", weight, **densities)


def _scalar(weight: float = 1.0, **overrides: float) -> PhaseSpec:
    densities = {"SIMD": 0.15, "Mul": 0.04, **overrides}
    return _phase("scalar", weight, **densities)


OMP2001_BENCHMARKS: Dict[str, BenchmarkSpec] = {}


def _add(spec: BenchmarkSpec) -> None:
    OMP2001_BENCHMARKS[spec.name] = spec


_add(BenchmarkSpec(
    "310.wupwise_m",
    phases=(
        _scalar(0.45, L1DMiss=0.003, Br=0.08, DtlbMiss=0.00005),
        _phase("simd-fed", 0.30, SIMD=0.70, L1DMiss=0.004,
               L2Miss=0.00015, Br=0.03, DtlbMiss=0.00008),
        _phase("scalar-stores", 0.25, SIMD=0.15, Mul=0.04, Store=0.20,
               MisprBr=0.0004, DtlbMiss=0.00005),
    ),
    language="Fortran", category="OMPM",
    description="Lattice gauge theory (quantum chromodynamics)",
    weight=1.4,
))
_add(BenchmarkSpec(
    "312.swim_m",
    phases=(
        _simd_starved(0.72, SIMD=0.80, L1DMiss=0.024, Mul=0.04),
        _simd_stream(0.28, L2Miss=0.0015),
    ),
    language="Fortran", category="OMPM",
    description="Shallow-water weather prediction kernel",
    weight=1.2,
))
_add(BenchmarkSpec(
    "314.mgrid_m",
    phases=(
        _block_light(0.78, L1DMiss=0.009),
        _simd_stream(0.14),
        _scalar(0.08),
    ),
    language="Fortran", category="OMPM",
    description="Multigrid solver on 3-D potential fields",
    weight=1.5,
))
_add(BenchmarkSpec(
    "316.applu_m",
    phases=(
        _simd_starved(0.66, Mul=0.10),
        _block_light(0.18),
        _simd_stream(0.16),
    ),
    language="Fortran", category="OMPM",
    description="Parabolic/elliptic PDE solver (SSOR)",
    weight=1.3,
))
_add(BenchmarkSpec(
    "318.galgel_m",
    phases=(
        _block_heavy(0.85, Store=0.135, SIMD=0.16),
        _scalar(0.15, Store=0.12, MisprBr=0.0003),
    ),
    language="Fortran", category="OMPM",
    description="Galerkin finite-element fluid oscillation analysis",
    weight=1.1,
))
_add(BenchmarkSpec(
    "320.equake_m",
    phases=(
        _phase("assembly-mispredict", 0.24, MisprBr=0.0010, Br=0.19,
               DtlbMiss=0.00045, LdBlkStA=0.0009, L2Miss=0.00022,
               PageWalk=0.00022),
        _block_light(0.30, L1DMiss=0.011),
        _block_heavy(0.22, Store=0.12),
        _scalar(0.24, L1DMiss=0.008, DtlbMiss=0.00008),
    ),
    language="C", category="OMPM",
    description="Earthquake ground-motion finite elements",
    weight=1.0,
))
_add(BenchmarkSpec(
    "324.apsi_m",
    phases=(
        _block_light(0.70, LdBlkOlp=0.011, Store=0.055, L1DMiss=0.0065),
        _phase("sta-pagewalk", 0.18, LdBlkStA=0.0013, DtlbMiss=0.00050,
               L2Miss=0.00022, PageWalk=0.00035, MisprBr=0.00005),
        _scalar(0.12),
    ),
    language="Fortran", category="OMPM",
    description="Air-pollution dispersion meteorology",
    weight=1.2,
))
_add(BenchmarkSpec(
    "326.gafort_m",
    phases=(
        _phase("crossover-stores", 0.55, Store=0.16, DtlbMiss=0.00032,
               L1DMiss=0.006, MisprBr=0.0005, Br=0.14, LdBlkOlp=0.002),
        _scalar(0.45, Store=0.15, Br=0.14, DtlbMiss=0.00005),
    ),
    language="Fortran", category="OMPM",
    description="Genetic algorithm optimization",
    weight=1.1,
))
_add(BenchmarkSpec(
    "328.fma3d_m",
    phases=(
        _block_heavy(0.95, LdBlkOlp=0.015, Store=0.15, PageWalk=0.00050),
        _scalar(0.05),
    ),
    language="Fortran", category="OMPM",
    description="Crash simulation with finite elements",
    weight=1.6,
))
_add(BenchmarkSpec(
    "330.art_m",
    phases=(
        _phase("resonance-scan", 1.0, Load=0.28, Br=0.20, L1DMiss=0.002,
               SIMD=0.02, Mul=0.01, DtlbMiss=0.00004, Store=0.08),
    ),
    language="C", category="OMPM",
    description="Adaptive resonance theory neural network (thermal image recognition)",
    weight=0.9,
))
_add(BenchmarkSpec(
    "332.ammp_m",
    phases=(
        _block_light(0.74, LdBlkOlp=0.010, L1DMiss=0.0075, Store=0.042),
        _phase("neighbor-lists", 0.16, LdBlkStA=0.0011, DtlbMiss=0.00048,
               L2Miss=0.00020, PageWalk=0.00028, MisprBr=0.00006),
        _scalar(0.10, Div=0.004),
    ),
    language="C", category="OMPM",
    description="Molecular mechanics of ions in water",
    weight=1.3,
))


def spec_omp2001() -> Suite:
    """The synthetic SPEC OMP2001 medium suite (11 benchmarks)."""
    return Suite("SPEC OMP2001", list(OMP2001_BENCHMARKS.values()))
