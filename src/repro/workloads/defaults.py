"""Baseline per-instruction event densities.

These are the densities of a bland, well-behaved integer code region on
a Core 2 class machine: a third of instructions are loads, a sixth
branches, caches mostly hit, and pathology events (load blocks, splits,
assists) are rare.  Phase specifications override individual entries.
"""

from __future__ import annotations

from typing import Dict

from repro.pmu.events import PREDICTOR_NAMES

__all__ = ["DEFAULT_DENSITIES", "DEFAULT_SPREAD", "FRACTION_FEATURES"]

#: Baseline density (events per instruction) for each Table I metric.
DEFAULT_DENSITIES: Dict[str, float] = {
    "Load": 0.30,
    "Store": 0.10,
    "MisprBr": 0.00007,
    "Br": 0.16,
    "L1DMiss": 0.0035,
    "L1IMiss": 0.0004,
    "L2Miss": 0.00008,
    "DtlbMiss": 0.00004,
    "LdBlkStA": 0.00015,
    "LdBlkStD": 0.00008,
    "LdBlkOlp": 0.0009,
    "LdBlkUntilRet": 0.0002,
    "SplitLoad": 0.0004,
    "SplitStore": 0.00015,
    "Misalign": 0.0002,
    "Div": 0.0015,
    "PageWalk": 0.00004,
    "Mul": 0.015,
    "FpAsst": 0.000005,
    "SIMD": 0.04,
}

#: Default lognormal sigma of within-phase density variation.
DEFAULT_SPREAD: float = 0.30

#: Features that are fractions of retired instructions and hence <= 1.
FRACTION_FEATURES = frozenset(
    {"Load", "Store", "Br", "MisprBr", "SIMD", "Mul", "Div"}
)

_missing = set(PREDICTOR_NAMES) - set(DEFAULT_DENSITIES)
if _missing:  # pragma: no cover - schema drift guard
    raise RuntimeError(f"DEFAULT_DENSITIES is missing entries for {_missing}")
