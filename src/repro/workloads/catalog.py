"""Human-readable suite catalogs.

Renders the metadata of a suite — member benchmarks, languages,
categories, instruction weights, phase structure — the way the SPEC
documentation tables the paper references present them.
"""

from __future__ import annotations

from typing import List

from repro.workloads.suite import Suite

__all__ = ["format_suite_catalog", "format_benchmark_detail"]


def format_suite_catalog(suite: Suite) -> str:
    """One-line-per-benchmark summary table."""
    name_w = max(len(b.name) for b in suite.benchmarks) + 2
    lang_w = max(len(b.language) for b in suite.benchmarks) + 2
    cat_w = max((len(b.category) for b in suite.benchmarks), default=4) + 2
    header = (
        f"{'benchmark'.ljust(name_w)}{'lang'.ljust(lang_w)}"
        f"{'category'.ljust(cat_w)}{'weight':>7s} {'phases':>7s}  description"
    )
    lines = [f"{suite.name} ({len(suite)} benchmarks)", header,
             "-" * len(header)]
    total_weight = sum(b.weight for b in suite.benchmarks)
    for bench in suite.benchmarks:
        lines.append(
            f"{bench.name.ljust(name_w)}{bench.language.ljust(lang_w)}"
            f"{bench.category.ljust(cat_w)}"
            f"{bench.weight / total_weight:7.1%} {len(bench.phases):7d}  "
            f"{bench.description}"
        )
    return "\n".join(lines)


def format_benchmark_detail(suite: Suite, name: str) -> str:
    """Full phase breakdown of one benchmark."""
    bench = suite.benchmark(name)
    lines: List[str] = [
        f"{bench.name} — {bench.description}",
        f"  language: {bench.language}   category: {bench.category}   "
        f"suite weight: {bench.weight}",
        f"  phase persistence: ~{bench.persistence:.0f} intervals",
        "  phases:",
    ]
    weights = bench.phase_weights
    for phase, weight in zip(bench.phases, weights):
        overrides = ", ".join(
            f"{k}={v:g}" for k, v in sorted(phase.densities.items())
        )
        lines.append(
            f"    {phase.name:24s} {weight:6.1%}  "
            f"{overrides if overrides else '(baseline densities)'}"
        )
    return "\n".join(lines)
