"""Physical-consistency validation of workload specifications.

Event densities are not free parameters: a benchmark cannot mispredict
more branches than it retires, miss in L2 more often than it misses in
L1D, or block more loads than it issues.  These cross-event constraints
catch specification mistakes that per-feature range checks cannot.
Every suite shipped with the library must validate cleanly (enforced
by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.workloads.benchmark import BenchmarkSpec
from repro.workloads.defaults import DEFAULT_DENSITIES
from repro.workloads.suite import Suite

__all__ = ["SpecViolation", "validate_benchmark", "validate_suite"]

#: (numerator event, denominator event, description).  The numerator's
#: phase-mean density must not exceed the denominator's.
_DOMINANCE_RULES: Tuple[Tuple[str, str, str], ...] = (
    ("MisprBr", "Br", "cannot mispredict more branches than are retired"),
    ("L2Miss", "L1DMiss", "an L2 miss requires an L1D miss first"),
    ("LdBlkStA", "Load", "only loads can be blocked (store-address)"),
    ("LdBlkStD", "Load", "only loads can be blocked (store-data)"),
    ("LdBlkOlp", "Load", "only loads can be blocked (overlap)"),
    ("SplitLoad", "Load", "only loads can split"),
    ("SplitStore", "Store", "only stores can split"),
    ("L1DMiss", "Load", "L1D load misses cannot exceed loads"),
)

#: Hard per-event ceilings (events per instruction).
_CEILINGS: Tuple[Tuple[str, float], ...] = (
    ("Load", 1.0),
    ("Store", 1.0),
    ("Br", 1.0),
    ("SIMD", 1.0),
    ("Mul", 1.0),
    ("Div", 1.0),
    ("DtlbMiss", 0.05),
    ("L2Miss", 0.05),
    ("PageWalk", 0.05),
)


@dataclass(frozen=True)
class SpecViolation:
    """One physically inconsistent density in one phase."""

    benchmark: str
    phase: str
    rule: str

    def __str__(self) -> str:
        return f"{self.benchmark}/{self.phase}: {self.rule}"


def validate_benchmark(spec: BenchmarkSpec) -> List[SpecViolation]:
    """All physical-consistency violations of one benchmark spec."""
    violations: List[SpecViolation] = []
    for phase in spec.phases:
        def density(event: str) -> float:
            return phase.densities.get(event, DEFAULT_DENSITIES[event])

        for numerator, denominator, description in _DOMINANCE_RULES:
            if density(numerator) > density(denominator):
                violations.append(
                    SpecViolation(
                        benchmark=spec.name,
                        phase=phase.name,
                        rule=(
                            f"{numerator}={density(numerator):g} > "
                            f"{denominator}={density(denominator):g} "
                            f"({description})"
                        ),
                    )
                )
        for event, ceiling in _CEILINGS:
            if density(event) > ceiling:
                violations.append(
                    SpecViolation(
                        benchmark=spec.name,
                        phase=phase.name,
                        rule=f"{event}={density(event):g} exceeds "
                        f"ceiling {ceiling:g}",
                    )
                )
    return violations


def validate_suite(suite: Suite) -> List[SpecViolation]:
    """All violations across a suite (empty list = clean)."""
    violations: List[SpecViolation] = []
    for spec in suite.benchmarks:
        violations.extend(validate_benchmark(spec))
    return violations
