"""Synthetic SPEC CPU2006: 29 benchmarks with reference-input weights.

Each benchmark's phase mixture is placed in the density space so that
its dominant ground-truth regimes match the paper's characterization
(Section IV.B): e.g. 456.hmmer/444.namd/435.gromacs/454.calculix/
447.dealII live almost entirely in the well-behaved base regime (the
paper's LM1, >90% each), 482.sphinx3 is split-load bound, 471.omnetpp
and 429.mcf are DTLB/L2 pointer chasers, 470.lbm and 436.cactusADM are
the two SIMD-dominant members, and so on.

Weights approximate each benchmark's retired-instruction count on the
reference inputs (arbitrary units); they drive the sample shares of the
'Suite' rows in Tables II/III.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.benchmark import BenchmarkSpec
from repro.workloads.phase import PhaseSpec
from repro.workloads.suite import Suite

__all__ = ["spec_cpu2006", "CPU2006_BENCHMARKS"]


def _phase(name: str, weight: float, **densities: float) -> PhaseSpec:
    spreads = {"SIMD": 0.10} if densities.get("SIMD", 0.0) > 0.6 else {}
    return PhaseSpec(name=name, weight=weight, densities=densities, spreads=spreads)


# Recurring phase shapes (returned fresh so specs stay independent).
def _base(weight: float = 1.0, **overrides: float) -> PhaseSpec:
    return _phase("base", weight, **overrides)


def _tlb(weight: float = 1.0, **overrides: float) -> PhaseSpec:
    densities = {
        "DtlbMiss": 0.00055,
        "PageWalk": 0.00022,
        "L1DMiss": 0.006,
        "L2Miss": 0.00018,
        **overrides,
    }
    return _phase("tlb-pressure", weight, **densities)


def _sta_serial(weight: float = 1.0, **overrides: float) -> PhaseSpec:
    densities = {
        "DtlbMiss": 0.00055,
        "L2Miss": 0.00026,
        "LdBlkStA": 0.0012,
        "LdBlkStD": 0.0004,
        "MisprBr": 0.00005,
        "SplitStore": 0.0004,
        "PageWalk": 0.00025,
        **overrides,
    }
    return _phase("store-addr-serialized", weight, **densities)


def _sta_mispredict(weight: float = 1.0, **overrides: float) -> PhaseSpec:
    densities = {
        "DtlbMiss": 0.0005,
        "L2Miss": 0.00024,
        "LdBlkStA": 0.0011,
        "MisprBr": 0.0009,
        "Br": 0.20,
        "PageWalk": 0.00022,
        **overrides,
    }
    return _phase("store-addr-mispredict", weight, **densities)


def _stream(weight: float = 1.0, **overrides: float) -> PhaseSpec:
    densities = {
        "DtlbMiss": 0.0005,
        "L2Miss": 0.0016,
        "L1DMiss": 0.02,
        "Br": 0.07,
        "MisprBr": 0.00003,
        "PageWalk": 0.00025,
        **overrides,
    }
    return _phase("memory-stream", weight, **densities)


def _pointer(weight: float = 1.0, **overrides: float) -> PhaseSpec:
    densities = {
        "DtlbMiss": 0.0011,
        "L2Miss": 0.0014,
        "L1DMiss": 0.03,
        "Br": 0.21,
        "MisprBr": 0.0013,
        "LdBlkOlp": 0.003,
        "PageWalk": 0.0006,
        **overrides,
    }
    return _phase("pointer-chase", weight, **densities)


CPU2006_BENCHMARKS: Dict[str, BenchmarkSpec] = {}


def _add(spec: BenchmarkSpec) -> None:
    CPU2006_BENCHMARKS[spec.name] = spec


# ----------------------------------------------------------------- CINT
_add(BenchmarkSpec(
    "400.perlbench",
    phases=(
        _base(0.62, Br=0.22, MisprBr=0.00012, L1IMiss=0.0012, Load=0.28),
        _tlb(0.23, L1IMiss=0.0015, Br=0.22),
        _sta_mispredict(0.15, L1IMiss=0.0014),
    ),
    language="C", category="CINT",
    description="Cut-down Perl interpreter running SPEC scripts",
    weight=2.1,
))
_add(BenchmarkSpec(
    "401.bzip2",
    phases=(
        _base(0.74, Load=0.33, Br=0.14, MisprBr=0.00011, L1DMiss=0.005),
        _tlb(0.26, L1DMiss=0.009, MisprBr=0.0003),
    ),
    language="C", category="CINT",
    description="Burrows-Wheeler compression of mixed input data",
    weight=2.4,
))
_add(BenchmarkSpec(
    "403.gcc",
    phases=(
        _base(0.48, Br=0.21, MisprBr=0.00013, L1IMiss=0.002, Store=0.14),
        _tlb(0.30, L1IMiss=0.0022, Store=0.14),
        _sta_mispredict(0.22, L1IMiss=0.002),
    ),
    language="C", category="CINT",
    description="GNU C compiler building its inputs at -O",
    weight=1.1,
))
_add(BenchmarkSpec(
    "429.mcf",
    phases=(
        _pointer(0.86, DtlbMiss=0.0024, L2Miss=0.0042, Br=0.24, Load=0.36),
        _stream(0.14, L2Miss=0.002),
    ),
    language="C", category="CINT",
    description="Single-depot vehicle scheduling (network simplex)",
    weight=0.9,
))
_add(BenchmarkSpec(
    "445.gobmk",
    phases=(
        _base(0.68, Br=0.22, MisprBr=0.00022, L1IMiss=0.0016),
        _tlb(0.20, MisprBr=0.0004),
        _sta_mispredict(0.12),
    ),
    language="C", category="CINT",
    description="Go-playing engine analysing board positions",
    weight=1.6,
))
_add(BenchmarkSpec(
    "456.hmmer",
    phases=(
        _base(1.0, Load=0.34, Br=0.11, Mul=0.02, L1DMiss=0.0035,
              DtlbMiss=0.00004),
    ),
    language="C", category="CINT",
    description="Profile HMM search over DNA sequences",
    weight=2.0,
))
_add(BenchmarkSpec(
    "458.sjeng",
    phases=(
        _base(0.80, Br=0.21, MisprBr=0.00025, L1IMiss=0.0012),
        _tlb(0.20, MisprBr=0.00045),
    ),
    language="C", category="CINT",
    description="Chess engine searching game trees",
    weight=2.2,
))
_add(BenchmarkSpec(
    "462.libquantum",
    phases=(
        _phase("quantum-stream", 0.82, DtlbMiss=0.00055, L2Miss=0.0013,
               L1DMiss=0.016, Br=0.13, MisprBr=0.00004, PageWalk=0.00028),
        _base(0.18, Br=0.24),
    ),
    language="C", category="CINT",
    description="Quantum computer simulation (Shor factoring)",
    weight=3.0,
))
_add(BenchmarkSpec(
    "464.h264ref",
    phases=(
        _base(0.55, Load=0.36, SIMD=0.18, Mul=0.03, L1DMiss=0.004),
        _tlb(0.25, SIMD=0.18),
        _sta_serial(0.20, SIMD=0.18, MisprBr=0.00008),
    ),
    language="C", category="CINT",
    description="H.264/AVC video encoder (reference code)",
    weight=3.3,
))
_add(BenchmarkSpec(
    "471.omnetpp",
    phases=(
        _pointer(0.84, DtlbMiss=0.00095, L2Miss=0.0013, Br=0.20,
                 LdBlkOlp=0.0032, Store=0.16),
        _tlb(0.16, Store=0.15),
    ),
    language="C++", category="CINT",
    description="Discrete-event simulation of an Ethernet network",
    weight=1.0,
))
_add(BenchmarkSpec(
    "473.astar",
    phases=(
        _base(0.50, Br=0.16, L1DMiss=0.006),
        _tlb(0.28, L1DMiss=0.009),
        _sta_mispredict(0.12),
        _pointer(0.10, DtlbMiss=0.0007, L2Miss=0.0009),
    ),
    language="C++", category="CINT",
    description="A* path-finding over 2-D maps",
    weight=1.3,
))
_add(BenchmarkSpec(
    "483.xalancbmk",
    phases=(
        _tlb(0.52, L1IMiss=0.0025, Br=0.23, MisprBr=0.0003),
        _base(0.30, Br=0.23, L1IMiss=0.002),
        _sta_mispredict(0.18, L1IMiss=0.002),
    ),
    language="C++", category="CINT",
    description="XSLT processor transforming XML documents",
    weight=1.2,
))

# ----------------------------------------------------------------- CFP
_add(BenchmarkSpec(
    "410.bwaves",
    phases=(
        _sta_serial(0.55, L1DMiss=0.014, Mul=0.06, SIMD=0.3),
        _stream(0.45, L2Miss=0.0012, SIMD=0.3, Mul=0.06),
    ),
    language="Fortran", category="CFP",
    description="Blast-wave CFD on 3-D grids",
    weight=1.9,
))
_add(BenchmarkSpec(
    "416.gamess",
    phases=(
        _base(0.88, Mul=0.05, Div=0.004, SIMD=0.22, L1DMiss=0.003,
              DtlbMiss=0.00004),
        _tlb(0.12, Mul=0.05),
    ),
    language="Fortran", category="CFP",
    description="Ab-initio quantum chemistry",
    weight=2.7,
))
_add(BenchmarkSpec(
    "433.milc",
    phases=(
        _sta_serial(0.62, L1DMiss=0.018, SIMD=0.34, Mul=0.05),
        _stream(0.38, SIMD=0.34, L2Miss=0.0013),
    ),
    language="C", category="CFP",
    description="Lattice QCD with dynamical quarks",
    weight=1.4,
))
_add(BenchmarkSpec(
    "434.zeusmp",
    phases=(
        _sta_serial(0.50, SIMD=0.3, Mul=0.05, L1DMiss=0.012),
        _tlb(0.30, SIMD=0.3),
        _stream(0.20, SIMD=0.3),
    ),
    language="Fortran", category="CFP",
    description="Astrophysical magnetohydrodynamics",
    weight=1.8,
))
_add(BenchmarkSpec(
    "435.gromacs",
    phases=(
        _base(1.0, Mul=0.05, Div=0.006, SIMD=0.30, L1DMiss=0.004,
              Load=0.32, Br=0.10, DtlbMiss=0.00004),
    ),
    language="C/Fortran", category="CFP",
    description="Molecular dynamics of Lysozyme in solvent",
    weight=2.0,
))
_add(BenchmarkSpec(
    "436.cactusADM",
    phases=(
        _phase("simd-kernel", 0.80, SIMD=0.93, L1DMiss=0.005,
               L2Miss=0.00015, Misalign=0.0011, Mul=0.04, Br=0.04,
               Load=0.42, DtlbMiss=0.00008),
        _base(0.20, SIMD=0.3, Mul=0.04),
    ),
    language="Fortran/C", category="CFP",
    description="Einstein evolution equations (ADM formulation)",
    weight=1.6,
))
_add(BenchmarkSpec(
    "437.leslie3d",
    phases=(
        _sta_serial(0.58, SIMD=0.35, L1DMiss=0.015, Mul=0.05),
        _stream(0.42, SIMD=0.35, L2Miss=0.0014),
    ),
    language="Fortran", category="CFP",
    description="Large-eddy turbulence simulation",
    weight=1.7,
))
_add(BenchmarkSpec(
    "444.namd",
    phases=(
        _base(1.0, Mul=0.06, Div=0.004, SIMD=0.28, L1DMiss=0.0035,
              Load=0.33, Br=0.09, DtlbMiss=0.00004),
    ),
    language="C++", category="CFP",
    description="Biomolecular simulation of large systems",
    weight=2.3,
))
_add(BenchmarkSpec(
    "447.dealII",
    phases=(
        _base(0.96, Load=0.36, L1DMiss=0.005, Mul=0.04, SIMD=0.25,
              Br=0.13, DtlbMiss=0.00004),
        _tlb(0.04),
    ),
    language="C++", category="CFP",
    description="Adaptive finite elements for PDEs",
    weight=2.2,
))
_add(BenchmarkSpec(
    "450.soplex",
    phases=(
        _sta_mispredict(0.40, L1DMiss=0.012),
        _stream(0.32, L2Miss=0.0011),
        _tlb(0.28),
    ),
    language="C++", category="CFP",
    description="Simplex linear-program solver",
    weight=1.0,
))
_add(BenchmarkSpec(
    "453.povray",
    phases=(
        _base(0.82, Br=0.17, MisprBr=0.00015, Div=0.005, Mul=0.05,
              L1DMiss=0.003),
        _tlb(0.18, Div=0.005),
    ),
    language="C++", category="CFP",
    description="Ray tracing a complex scene",
    weight=1.1,
))
_add(BenchmarkSpec(
    "454.calculix",
    phases=(
        _base(0.96, Mul=0.05, SIMD=0.33, L1DMiss=0.0045, Load=0.32,
              DtlbMiss=0.00004),
        _tlb(0.04),
    ),
    language="Fortran/C", category="CFP",
    description="Finite-element structural mechanics",
    weight=1.7,
))
_add(BenchmarkSpec(
    "459.GemsFDTD",
    phases=(
        _stream(0.78, L2Miss=0.0019, DtlbMiss=0.00055, L1DMiss=0.024,
                SIMD=0.3),
        _sta_serial(0.22, SIMD=0.3),
    ),
    language="Fortran", category="CFP",
    description="Finite-difference time-domain Maxwell solver",
    weight=1.5,
))
_add(BenchmarkSpec(
    "465.tonto",
    phases=(
        _base(0.78, Mul=0.05, Div=0.005, SIMD=0.2, L1IMiss=0.0012),
        _tlb(0.22),
    ),
    language="Fortran", category="CFP",
    description="Quantum crystallography",
    weight=1.9,
))
_add(BenchmarkSpec(
    "470.lbm",
    phases=(
        _phase("lattice-sweep", 0.72, SIMD=0.80, L1DMiss=0.007,
               L2Miss=0.0016, LdBlkOlp=0.0042, Misalign=0.0004,
               Load=0.38, Store=0.18, Br=0.02, DtlbMiss=0.00012),
        _stream(0.28, SIMD=0.35),
    ),
    language="C", category="CFP",
    description="Lattice-Boltzmann fluid dynamics",
    weight=1.4,
))
_add(BenchmarkSpec(
    "481.wrf",
    phases=(
        _sta_serial(0.45, SIMD=0.3, L1DMiss=0.01),
        _tlb(0.33, SIMD=0.3),
        _base(0.22, SIMD=0.3, Mul=0.05),
    ),
    language="Fortran/C", category="CFP",
    description="Weather research and forecasting model",
    weight=2.0,
))
_add(BenchmarkSpec(
    "482.sphinx3",
    phases=(
        _phase("acoustic-scoring", 0.76, SplitLoad=0.0065, L1DMiss=0.007,
               DtlbMiss=0.00050, L2Miss=0.00020, LdBlkStA=0.00018,
               Load=0.36, Mul=0.04, PageWalk=0.00024),
        _base(0.24, Mul=0.04),
    ),
    language="C", category="CFP",
    description="CMU Sphinx-3 speech recognition",
    weight=2.4,
))

def spec_cpu2006() -> Suite:
    """The synthetic SPEC CPU2006 suite (29 benchmarks)."""
    return Suite("SPEC CPU2006", list(CPU2006_BENCHMARKS.values()))
