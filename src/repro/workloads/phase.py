"""Phase specifications.

A phase is a statistically homogeneous stretch of a benchmark's
execution: a mean density for every Table I event plus lognormal
dispersion around it.  Benchmarks are mixtures of phases with
persistence (real programs stay in a phase for many consecutive
sampling intervals).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.pmu.events import PREDICTOR_NAMES
from repro.workloads.defaults import (
    DEFAULT_DENSITIES,
    DEFAULT_SPREAD,
    FRACTION_FEATURES,
)

__all__ = ["PhaseSpec"]


@dataclass(frozen=True)
class PhaseSpec:
    """One execution phase.

    Parameters
    ----------
    name:
        Human-readable phase label (e.g. ``"pointer-chase"``).
    weight:
        Relative share of the benchmark's intervals spent in this phase.
    densities:
        Overrides of :data:`DEFAULT_DENSITIES` (events per instruction).
    spread:
        Lognormal sigma of within-phase variation (applies to every
        feature unless overridden in ``spreads``).
    spreads:
        Per-feature sigma overrides (e.g. tighter SIMD fraction).
    """

    name: str
    weight: float = 1.0
    densities: Mapping[str, float] = field(default_factory=dict)
    spread: float = DEFAULT_SPREAD
    spreads: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"phase {self.name!r}: weight must be positive")
        if self.spread < 0:
            raise ValueError(f"phase {self.name!r}: spread must be non-negative")
        unknown = set(self.densities) - set(PREDICTOR_NAMES)
        if unknown:
            raise ValueError(
                f"phase {self.name!r}: unknown density features {sorted(unknown)}"
            )
        unknown = set(self.spreads) - set(PREDICTOR_NAMES)
        if unknown:
            raise ValueError(
                f"phase {self.name!r}: unknown spread features {sorted(unknown)}"
            )
        for feature, value in self.densities.items():
            if value < 0:
                raise ValueError(
                    f"phase {self.name!r}: density {feature}={value} is negative"
                )

    def mean_vector(
        self, feature_names: Sequence[str] = PREDICTOR_NAMES
    ) -> np.ndarray:
        """Phase mean density for each feature, in the given order."""
        return np.array(
            [
                self.densities.get(name, DEFAULT_DENSITIES[name])
                for name in feature_names
            ],
            dtype=float,
        )

    def _sampling_constants(
        self, feature_names: Sequence[str]
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Cached (means, sigmas, fraction-feature mask) for one schema.

        Sampling is called once per (phase, node) in every generated
        benchmark; rebuilding these vectors from the dicts dominates
        the per-call cost, so they are memoized on the instance.
        """
        key = tuple(feature_names)
        cache = self.__dict__.get("_sampling_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_sampling_cache", cache)
        if key not in cache:
            sigmas = np.array(
                [self.spreads.get(name, self.spread) for name in key],
                dtype=float,
            )
            fraction = np.array(
                [name in FRACTION_FEATURES for name in key], dtype=bool
            )
            cache[key] = (self.mean_vector(key), sigmas, fraction)
        return cache[key]

    def sample(
        self,
        n: int,
        rng: np.random.Generator,
        feature_names: Sequence[str] = PREDICTOR_NAMES,
    ) -> np.ndarray:
        """Draw ``n`` true density vectors from this phase.

        Each feature is lognormal around the phase mean with the phase's
        sigma; the ``exp(-sigma^2/2)`` correction keeps the arithmetic
        mean at the specified value.  Fraction-valued features are
        capped at 1 event per instruction.
        """
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        means, sigmas, fraction = self._sampling_constants(feature_names)
        noise = rng.standard_normal((n, len(feature_names)))
        draws = means * np.exp(sigmas * noise - 0.5 * sigmas**2)
        draws[:, fraction] = np.minimum(draws[:, fraction], 1.0)
        return draws
