"""Workload synthesis substrate.

Stands in for the licensed SPEC suites: each benchmark is specified as
a mixture of execution *phases*, each phase a point in the 20-event
density space of Table I with lognormal dispersion.  Phase means are
chosen to match the paper's qualitative characterization of each
benchmark (which microarchitectural events dominate it, and its
approximate CPI on the Core 2 platform).
"""

from repro.workloads.phase import PhaseSpec
from repro.workloads.benchmark import BenchmarkSpec
from repro.workloads.defaults import DEFAULT_DENSITIES, DEFAULT_SPREAD
from repro.workloads.suite import Suite, SuiteGenerationConfig
from repro.workloads.spec_cpu2000 import spec_cpu2000
from repro.workloads.spec_cpu2006 import spec_cpu2006
from repro.workloads.spec_omp2001 import spec_omp2001

__all__ = [
    "BenchmarkSpec",
    "DEFAULT_DENSITIES",
    "DEFAULT_SPREAD",
    "PhaseSpec",
    "Suite",
    "SuiteGenerationConfig",
    "spec_cpu2000",
    "spec_cpu2006",
    "spec_omp2001",
]
