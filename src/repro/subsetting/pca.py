"""Principal component analysis via singular value decomposition.

The subsetting studies the paper cites project per-benchmark feature
vectors onto a handful of principal components before clustering,
because the raw 20-event space is strongly correlated (loads correlate
with L1D misses, DTLB misses with page walks, ...).  This is a
standard-score PCA: columns are centered and (optionally) scaled to
unit variance before the SVD.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["PCA"]


class PCA:
    """PCA fitted by SVD on standardized data.

    Parameters
    ----------
    n_components:
        Number of components to keep; ``None`` keeps all.
    standardize:
        Scale columns to unit variance (recommended: the Table I
        densities span four orders of magnitude).
    """

    def __init__(
        self, n_components: Optional[int] = None, standardize: bool = True
    ) -> None:
        if n_components is not None and n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        self.n_components = n_components
        self.standardize = standardize
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None  # (k, d)
        self.explained_variance_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "PCA":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        n, d = X.shape
        if n < 2:
            raise ValueError("PCA needs at least 2 samples")
        self.mean_ = X.mean(axis=0)
        if self.standardize:
            scale = X.std(axis=0)
            scale[scale == 0.0] = 1.0
        else:
            scale = np.ones(d)
        self.scale_ = scale
        Z = (X - self.mean_) / self.scale_
        # SVD of the centered matrix: right singular vectors are the
        # principal directions; singular values give the variances.
        _, s, vt = np.linalg.svd(Z, full_matrices=False)
        k = min(self.n_components or d, vt.shape[0])
        self.components_ = vt[:k]
        variance = (s**2) / (n - 1)
        self.explained_variance_ = variance[:k]
        total = variance.sum()
        self.explained_variance_ratio_ = (
            variance[:k] / total if total > 0 else np.zeros(k)
        )
        return self

    def _require_fitted(self) -> None:
        if self.components_ is None:
            raise RuntimeError("PCA is not fitted")

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project rows of ``X`` onto the principal components."""
        self._require_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.mean_.size:
            raise ValueError(
                f"expected (n, {self.mean_.size}) inputs, got {X.shape}"
            )
        return (X - self.mean_) / self.scale_ @ self.components_.T

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, scores: np.ndarray) -> np.ndarray:
        """Reconstruct (approximately) from component scores."""
        self._require_fitted()
        scores = np.asarray(scores, dtype=float)
        if scores.ndim != 2 or scores.shape[1] != self.components_.shape[0]:
            raise ValueError(
                f"expected (n, {self.components_.shape[0]}) scores, "
                f"got {scores.shape}"
            )
        return scores @ self.components_ * self.scale_ + self.mean_

    def n_components_for_variance(self, fraction: float) -> int:
        """Smallest component count explaining >= ``fraction`` variance.

        [13] keeps the components covering ~85-90% of the variance.
        """
        self._require_fitted()
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        cumulative = np.cumsum(self.explained_variance_ratio_)
        indices = np.nonzero(cumulative >= fraction - 1e-12)[0]
        if indices.size == 0:
            return int(self.components_.shape[0])
        return int(indices[0]) + 1
