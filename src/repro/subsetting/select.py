"""Subset selection strategies and their common score.

All strategies return a :class:`SubsetResult`; all are scored by
:func:`representativeness_error` — the Equation 4 distance between the
weighted profile mixture of the chosen subset and the full suite's
profile.  Lower is better; 0 means the subset reproduces the suite's
behaviour distribution exactly.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.characterization.profile import SuiteProfile
from repro.subsetting.kmeans import KMeans
from repro.subsetting.pca import PCA

__all__ = [
    "SubsetResult",
    "representativeness_error",
    "pca_cluster_subset",
    "greedy_profile_subset",
    "random_subset",
]


@dataclass(frozen=True)
class SubsetResult:
    """A chosen subset plus bookkeeping."""

    strategy: str
    benchmarks: Tuple[str, ...]
    error: float

    def __str__(self) -> str:
        return (
            f"{self.strategy}: {len(self.benchmarks)} benchmarks, "
            f"representativeness error {self.error:.2f}% "
            f"[{', '.join(self.benchmarks)}]"
        )


def _mixture(
    profile: SuiteProfile, chosen: Sequence[str], weights: Dict[str, float]
) -> Dict[str, float]:
    """Readable reference for the mixture the fast path vectorizes."""
    total = sum(weights[name] for name in chosen)
    mixture = {lm: 0.0 for lm in profile.lm_names}
    for name in chosen:
        bench = profile.benchmark(name)
        for lm in profile.lm_names:
            mixture[lm] += weights[name] / total * bench.share(lm)
    return mixture


# Share matrix, benchmark row index and suite vector per profile,
# keyed by object identity (SuiteProfile holds dict fields and is not
# hashable).  The weakref guards against a recycled id() after the
# profile is garbage collected; the subset searches that hammer
# ``representativeness_error`` thousands of times all hold their
# profile alive, so hits are the common case.
_PROFILE_ARRAYS: Dict[int, Tuple[object, Dict[str, int], np.ndarray, np.ndarray]] = {}


def _profile_arrays(
    profile: SuiteProfile,
) -> Tuple[Dict[str, int], np.ndarray, np.ndarray]:
    entry = _PROFILE_ARRAYS.get(id(profile))
    if entry is not None and entry[0]() is profile:
        return entry[1], entry[2], entry[3]
    index = {p.benchmark: i for i, p in enumerate(profile.benchmarks)}
    matrix = np.array(
        [
            [p.share(lm) for lm in profile.lm_names]
            for p in profile.benchmarks
        ],
        dtype=float,
    )
    suite = np.array(
        [profile.suite_row.get(lm, 0.0) for lm in profile.lm_names],
        dtype=float,
    )
    if len(_PROFILE_ARRAYS) > 64:
        _PROFILE_ARRAYS.clear()
    _PROFILE_ARRAYS[id(profile)] = (weakref.ref(profile), index, matrix, suite)
    return index, matrix, suite


def representativeness_error(
    profile: SuiteProfile,
    chosen: Sequence[str],
    weights: Dict[str, float],
) -> float:
    """Eq. 4 distance of the subset's weighted mixture to the suite row.

    Computed on a cached per-profile share matrix: the mixture row
    accumulates benchmark by benchmark in ``chosen`` order (the same
    per-LM arithmetic as :func:`_mixture`), and the absolute deviations
    are summed in ``lm_names`` order — deterministic, unlike the
    set-iteration order a dict-based L1 would inherit from string
    hashing.
    """
    if not chosen:
        raise ValueError("subset must contain at least one benchmark")
    missing = [name for name in chosen if name not in weights]
    if missing:
        raise ValueError(f"no weights for {missing}")
    index, matrix, suite = _profile_arrays(profile)
    total = sum(weights[name] for name in chosen)
    mixture = np.zeros(matrix.shape[1])
    for name in chosen:
        row = index.get(name)
        if row is None:
            profile.benchmark(name)  # raises the canonical KeyError
        mixture += (weights[name] / total) * matrix[row]
    deviations = np.abs(np.subtract(mixture, suite, out=mixture))
    return 0.5 * sum(deviations.tolist())


def pca_cluster_subset(
    names: Sequence[str],
    features: np.ndarray,
    profile: SuiteProfile,
    weights: Dict[str, float],
    k: int,
    variance_fraction: float = 0.9,
    seed: int = 0,
) -> SubsetResult:
    """The [13]/[14] pipeline: PCA, k-means, keep cluster medoids."""
    names = list(names)
    features = np.asarray(features, dtype=float)
    if features.shape[0] != len(names):
        raise ValueError(
            f"{features.shape[0]} feature rows for {len(names)} names"
        )
    if not 1 <= k <= len(names):
        raise ValueError(f"k must be in [1, {len(names)}], got {k}")
    pca = PCA().fit(features)
    n_components = pca.n_components_for_variance(variance_fraction)
    scores = pca.transform(features)[:, :n_components]
    clustering = KMeans(k=k, seed=seed).fit(scores)
    medoids = clustering.medoid_indices(scores)
    chosen = tuple(names[i] for i in medoids)
    return SubsetResult(
        strategy=f"PCA({n_components} comps)+k-means",
        benchmarks=chosen,
        error=representativeness_error(profile, chosen, weights),
    )


def _exchange_refine(
    profile: SuiteProfile,
    weights: Dict[str, float],
    candidates: Sequence[str],
    chosen: List[str],
) -> Tuple[List[str], float]:
    """Swap members for non-members while the error improves."""
    error = representativeness_error(profile, chosen, weights)
    improved = True
    while improved:
        improved = False
        for position in range(len(chosen)):
            for name in candidates:
                if name in chosen:
                    continue
                trial = list(chosen)
                trial[position] = name
                trial_error = representativeness_error(profile, trial, weights)
                if trial_error < error - 1e-12:
                    chosen, error = trial, trial_error
                    improved = True
    return chosen, error


def greedy_profile_subset(
    profile: SuiteProfile,
    weights: Dict[str, float],
    k: int,
    n_restarts: int = 4,
    seed: int = 0,
) -> SubsetResult:
    """Profile matching: greedy growth + multi-start exchange refinement.

    Greedy growth (always add the benchmark that most reduces the
    representativeness error) gives one starting subset; ``n_restarts``
    random subsets give more.  Each start is refined by exchange moves
    (swap a member for a non-member while the error improves) and the
    best local optimum wins.  Multi-start matters: the error landscape
    has genuinely distinct basins.
    """
    candidates = [p.benchmark for p in profile.benchmarks]
    if not 1 <= k <= len(candidates):
        raise ValueError(f"k must be in [1, {len(candidates)}], got {k}")
    if n_restarts < 0:
        raise ValueError(f"n_restarts must be non-negative, got {n_restarts}")
    chosen: List[str] = []
    for _ in range(k):
        best_name, best_error = None, float("inf")
        for name in candidates:
            if name in chosen:
                continue
            error = representativeness_error(profile, chosen + [name], weights)
            if error < best_error:
                best_name, best_error = name, error
        assert best_name is not None
        chosen.append(best_name)

    starts: List[List[str]] = [chosen]
    rng = np.random.default_rng(seed)
    for _ in range(n_restarts):
        starts.append(
            list(rng.choice(candidates, size=k, replace=False).tolist())
        )
    best_subset: List[str] = chosen
    best_error = float("inf")
    for start in starts:
        refined, error = _exchange_refine(profile, weights, candidates, start)
        if error < best_error:
            best_subset, best_error = refined, error
    return SubsetResult(
        strategy="greedy profile matching",
        benchmarks=tuple(best_subset),
        error=best_error,
    )


def random_subset(
    profile: SuiteProfile,
    weights: Dict[str, float],
    k: int,
    rng: np.random.Generator,
    n_trials: int = 1,
) -> SubsetResult:
    """Uniformly random subsets (the control); best of ``n_trials``."""
    candidates = [p.benchmark for p in profile.benchmarks]
    if not 1 <= k <= len(candidates):
        raise ValueError(f"k must be in [1, {len(candidates)}], got {k}")
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    best: Tuple[str, ...] = ()
    best_error = float("inf")
    for _ in range(n_trials):
        chosen = tuple(rng.choice(candidates, size=k, replace=False).tolist())
        error = representativeness_error(profile, chosen, weights)
        if error < best_error:
            best, best_error = chosen, error
    return SubsetResult(
        strategy=f"random (best of {n_trials})",
        benchmarks=best,
        error=best_error,
    )
