"""Benchmark subsetting — the related-work application (Section II).

The studies the paper builds on ([11], [13], [14]) select representative
benchmark subsets for (expensive) simulation using PCA plus clustering
over per-benchmark feature vectors.  This package reproduces that
pipeline from scratch and adds the model-tree alternative the paper's
profiles enable:

* :mod:`repro.subsetting.pca` — principal component analysis (SVD).
* :mod:`repro.subsetting.kmeans` — k-means with k-means++ seeding.
* :mod:`repro.subsetting.features` — per-benchmark feature vectors
  (raw event-density means, or leaf-profile shares).
* :mod:`repro.subsetting.select` — subsetting strategies: PCA+k-means
  medoids, greedy profile matching, and random selection, plus the
  representativeness error that scores them.
"""

from repro.subsetting.features import (
    density_feature_matrix,
    profile_feature_matrix,
)
from repro.subsetting.kmeans import KMeans, KMeansResult
from repro.subsetting.pca import PCA
from repro.subsetting.select import (
    SubsetResult,
    greedy_profile_subset,
    pca_cluster_subset,
    random_subset,
    representativeness_error,
)

__all__ = [
    "KMeans",
    "KMeansResult",
    "PCA",
    "SubsetResult",
    "density_feature_matrix",
    "greedy_profile_subset",
    "pca_cluster_subset",
    "profile_feature_matrix",
    "random_subset",
    "representativeness_error",
]
