"""Per-benchmark feature vectors for subsetting.

Two views of a benchmark:

* *density features* — the mean per-instruction event densities, the
  microarchitecture-dependent view used by [13];
* *profile features* — the distribution over the model tree's linear
  models (the rows of Tables II/IV), the view this paper's machinery
  makes possible.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.characterization.profile import SuiteProfile
from repro.datasets.dataset import SampleSet

__all__ = ["density_feature_matrix", "profile_feature_matrix"]


def density_feature_matrix(data: SampleSet) -> Tuple[List[str], np.ndarray]:
    """(benchmark names, mean-density matrix) for a sample set.

    Rows follow ``data.benchmark_names()`` order; columns are the
    sample set's features.
    """
    names = data.benchmark_names()
    if names == [""]:
        raise ValueError("sample set has no benchmark labels")
    matrix = np.array(
        [data.for_benchmark(name).X.mean(axis=0) for name in names]
    )
    return names, matrix


def profile_feature_matrix(profile: SuiteProfile) -> Tuple[List[str], np.ndarray]:
    """(benchmark names, leaf-share matrix) from a suite profile.

    Shares are percentages, one column per linear model.
    """
    names = [p.benchmark for p in profile.benchmarks]
    return names, profile.as_matrix()
