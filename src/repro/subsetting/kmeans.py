"""k-means clustering with k-means++ seeding (numpy only).

Used by the PCA+clustering subsetting pipeline of [13]/[14]: cluster
the benchmarks in PCA space, then keep the medoid of every cluster as
the suite's representative subset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KMeans", "KMeansResult"]


@dataclass(frozen=True)
class KMeansResult:
    """One clustering outcome."""

    centers: np.ndarray  # (k, d)
    labels: np.ndarray  # (n,)
    inertia: float
    n_iterations: int

    @property
    def k(self) -> int:
        return self.centers.shape[0]

    def medoid_indices(self, X: np.ndarray) -> np.ndarray:
        """Index of the sample closest to each cluster center."""
        X = np.asarray(X, dtype=float)
        medoids = []
        for cluster in range(self.k):
            members = np.nonzero(self.labels == cluster)[0]
            if members.size == 0:
                continue
            d2 = np.sum((X[members] - self.centers[cluster]) ** 2, axis=1)
            medoids.append(int(members[np.argmin(d2)]))
        return np.array(sorted(medoids), dtype=int)


class KMeans:
    """Lloyd's algorithm with k-means++ seeding and restarts."""

    def __init__(
        self,
        k: int,
        n_restarts: int = 8,
        max_iterations: int = 200,
        tol: float = 1e-9,
        seed: int = 0,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if n_restarts < 1:
            raise ValueError(f"n_restarts must be >= 1, got {n_restarts}")
        self.k = k
        self.n_restarts = n_restarts
        self.max_iterations = max_iterations
        self.tol = tol
        self.seed = seed

    def fit(self, X: np.ndarray) -> KMeansResult:
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] < self.k:
            raise ValueError(
                f"need at least k={self.k} samples, got {X.shape[0]}"
            )
        rng = np.random.default_rng(self.seed)
        best: KMeansResult | None = None
        for _ in range(self.n_restarts):
            result = self._run_once(X, rng)
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        return best

    def _seed_centers(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++: spread initial centers by squared distance."""
        n = X.shape[0]
        centers = [X[rng.integers(n)]]
        for _ in range(1, self.k):
            d2 = np.min(
                [np.sum((X - c) ** 2, axis=1) for c in centers], axis=0
            )
            total = d2.sum()
            if total == 0.0:
                centers.append(X[rng.integers(n)])
                continue
            centers.append(X[rng.choice(n, p=d2 / total)])
        return np.array(centers)

    def _run_once(self, X: np.ndarray, rng: np.random.Generator) -> KMeansResult:
        centers = self._seed_centers(X, rng)
        labels = np.zeros(X.shape[0], dtype=int)
        for iteration in range(1, self.max_iterations + 1):
            d2 = (
                np.sum(X**2, axis=1)[:, None]
                - 2.0 * X @ centers.T
                + np.sum(centers**2, axis=1)[None, :]
            )
            labels = np.argmin(d2, axis=1)
            new_centers = centers.copy()
            for cluster in range(self.k):
                members = X[labels == cluster]
                if members.shape[0]:
                    new_centers[cluster] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the farthest point.
                    farthest = int(np.argmax(np.min(d2, axis=1)))
                    new_centers[cluster] = X[farthest]
            shift = float(np.max(np.abs(new_centers - centers)))
            centers = new_centers
            if shift < self.tol:
                break
        d2 = np.min(
            np.sum((X[:, None, :] - centers[None, :, :]) ** 2, axis=2), axis=1
        )
        return KMeansResult(
            centers=centers,
            labels=labels,
            inertia=float(d2.sum()),
            n_iterations=iteration,
        )
