"""Fold per-replica telemetry into cluster-level documents.

Aggregation strategy: **label, don't merge**.  Each replica already
produces complete, self-consistent documents (``/metrics`` records,
``/v1/status``); the cluster view tags every metric record with a
``replica`` label and re-renders through the same
:func:`~repro.obs.summary.render_prometheus` the single-process server
uses.  That is lossless — every per-replica sample survives, quantile
sketches are never averaged (averaging p99s is statistically wrong),
and any Prometheus consumer can ``sum by (__name__)`` where a total is
wanted.  The status document keeps each replica's full document intact
and adds a small ``totals`` section for the handful of counters where
a cluster-wide sum is the number people actually ask for.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.obs.summary import render_prometheus

__all__ = [
    "CLUSTER_STATUS_SCHEMA_VERSION",
    "build_cluster_status",
    "render_cluster_metrics",
]

CLUSTER_STATUS_SCHEMA_VERSION = "repro-cluster-status-v1"

#: Status-document counter paths summed into the ``totals`` section:
#: (section, key) of every additive number worth a cluster-wide view.
_TOTALED = (
    ("http", "requests"),
    ("http", "responses_2xx"),
    ("http", "responses_4xx"),
    ("http", "responses_5xx"),
    ("http", "predictions"),
    ("engine", "requests"),
    ("engine", "rows"),
    ("engine", "batches"),
    ("engine", "errors"),
    ("engine", "queue_depth"),
)


def render_cluster_metrics(
    per_replica_records: Dict[int, List[Dict[str, Any]]]
) -> str:
    """One Prometheus exposition over every replica's records.

    ``per_replica_records`` maps replica index to that worker's
    ``MetricsRegistry.as_records()`` payload (fetched over the control
    pipe).  Each record gains a ``replica`` label; name collisions
    across replicas then coexist as samples of one family.
    """
    labelled: List[Dict[str, Any]] = []
    for index in sorted(per_replica_records):
        for record in per_replica_records[index]:
            labels = dict(record.get("labels") or {})
            labels["replica"] = str(index)
            labelled.append({**record, "labels": labels})
    return render_prometheus(labelled)


def build_cluster_status(
    per_replica_status: Dict[int, Optional[Dict[str, Any]]],
    supervisor: Dict[str, Any],
) -> Dict[str, Any]:
    """The cluster ``/v1/status``: supervisor view + per-replica docs.

    ``per_replica_status`` maps replica index to that worker's own
    status document, or ``None`` for a replica that did not answer its
    control pipe in time (crashed, mid-restart) — it still appears in
    the ``replicas`` list, marked unresponsive, because silently
    dropping a sick replica is exactly the wrong failure mode for a
    health surface.
    """
    replicas: List[Dict[str, Any]] = []
    totals: Dict[str, Dict[str, Any]] = {
        section: {} for section, _ in _TOTALED
    }
    responsive = 0
    for index in sorted(per_replica_status):
        document = per_replica_status[index]
        if document is None:
            replicas.append({"index": index, "responsive": False})
            continue
        responsive += 1
        replicas.append(
            {"index": index, "responsive": True, "status": document}
        )
        for section, key in _TOTALED:
            value = (document.get(section) or {}).get(key)
            if isinstance(value, (int, float)):
                totals[section][key] = totals[section].get(key, 0) + value
    # Models/aliases are properties of the shared registry directory,
    # identical across replicas; surface one copy, not N.
    models: Optional[Dict[str, Any]] = None
    for entry in replicas:
        if entry.get("responsive"):
            models = entry["status"].get("models")
            break
    return {
        "schema": CLUSTER_STATUS_SCHEMA_VERSION,
        "generated_unix": time.time(),
        "supervisor": dict(supervisor),
        "workers": len(per_replica_status),
        "responsive": responsive,
        "totals": totals,
        "models": models,
        "replicas": replicas,
    }
