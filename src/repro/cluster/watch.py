"""Follower-side alias watch: pick up promotions without a restart.

In a cluster exactly one replica — the leader, replica 0 — runs the
MLOps pipeline, so promotions (``move_alias`` re-pointing ``latest``
to a freshly shadow-validated champion) happen in *another process*.
Correctness does not depend on this module: every
:meth:`~repro.serve.registry.ModelRegistry.resolve` re-reads the alias
file, so a follower's very next request already serves the new
champion.  What the watcher adds is everything around that:

- **warmth** — it loads the new champion into the follower's LRU the
  moment the flip lands, so the first post-promotion request pays no
  deserialization stall;
- **promptness bounds** — a poll interval is an explicit upper bound
  on how long a follower can be "behind", visible in the cluster
  status;
- **observability** — a ``cluster.alias_flips`` counter and a
  last-flip record per follower, which the alias-flip e2e test and the
  cluster status document both read.

Polling (mtime + content compare, default 0.5 s) rather than inotify:
stdlib-only, works on every filesystem, and an alias flip is a rare
control-plane event where half a second of watch latency is
irrelevant — the *data plane* picks the flip up per-request anyway.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional

from repro.obs.metrics import counter
from repro.serve.registry import ModelRegistry

__all__ = ["AliasWatcher"]

_FLIPS = counter("cluster.alias_flips")

#: Default poll cadence; an explicit bound on follower staleness.
DEFAULT_POLL_S = 0.5


class AliasWatcher:
    """Polls the registry's alias map; reacts to re-points.

    ``on_flip(alias, old_id, new_id)`` is called — after the new
    champion has been warmed into the registry LRU — from the watch
    thread; keep it quick.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        poll_s: float = DEFAULT_POLL_S,
        on_flip: Optional[Callable[[str, Optional[str], str], None]] = None,
    ) -> None:
        if poll_s <= 0:
            raise ValueError(f"poll_s must be > 0, got {poll_s}")
        self.registry = registry
        self.poll_s = poll_s
        self.on_flip = on_flip
        self.flips = 0
        self.last_flip: Optional[Dict[str, Any]] = None
        self._known: Dict[str, str] = registry.aliases()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "AliasWatcher":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-alias-watch", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None

    # -- the watch -------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.poll_s):
            try:
                self.check_once()
            except Exception:  # pragma: no cover - diagnostics only
                # The watcher must never take a worker down; the data
                # plane resolves aliases per request regardless.
                pass

    def check_once(self) -> int:
        """One poll: detect flips, warm new champions, run callbacks.

        Returns how many aliases changed (tests call this directly to
        avoid sleeping through the poll interval).
        """
        current = self.registry.aliases()
        changed = 0
        for alias, model_id in current.items():
            old_id = self._known.get(alias)
            if old_id == model_id:
                continue
            changed += 1
            try:
                # Warm the LRU so the first request after the flip
                # pays no artifact-deserialization stall.
                self.registry.load(model_id)
            except Exception:  # pragma: no cover - corrupt artifact
                pass
            with self._lock:
                self.flips += 1
                self.last_flip = {
                    "alias": alias,
                    "from": old_id,
                    "to": model_id,
                }
            _FLIPS.inc()
            if self.on_flip is not None:
                self.on_flip(alias, old_id, model_id)
        self._known = current
        return changed

    def report(self) -> Dict[str, Any]:
        """JSON-ready state for the worker status document."""
        with self._lock:
            return {
                "poll_s": self.poll_s,
                "flips": self.flips,
                "last_flip": dict(self.last_flip) if self.last_flip else None,
            }
