"""Multi-process serving cluster: N replicas behind one host:port.

A single :class:`~repro.serve.api.ModelServer` is capped by the GIL at
one batching engine no matter how many cores the box has.  This
package forks N worker processes, each running its own registry-backed
:class:`~repro.serve.engine.PredictionEngine` with bit-identical
predictions, all accepting on the same host:port — via per-worker
``SO_REUSEPORT`` sockets where the kernel load-balances accepts, or a
single inherited listening socket where it cannot.

The public surface:

- :class:`~repro.cluster.supervisor.ClusterSupervisor` — forks,
  health-checks, restarts, drains; ``repro serve --workers N``.
- :class:`~repro.cluster.supervisor.ClusterConfig` — how many workers,
  where, with what serving options.
- :func:`~repro.cluster.aggregate.build_cluster_status` /
  :func:`~repro.cluster.aggregate.render_cluster_metrics` — per-replica
  ``/v1/status`` and ``/metrics`` folded into cluster-level documents.

See ``docs/SERVING.md`` ("Running a cluster") for the design notes:
leader election (replica 0 owns the pipeline), the alias watch that
lets followers pick up promotions without restart, and the shutdown
ladder (SIGTERM → drain → bounded join → SIGKILL).
"""

from repro.cluster.aggregate import build_cluster_status, render_cluster_metrics
from repro.cluster.sockets import create_listen_sockets
from repro.cluster.supervisor import ClusterConfig, ClusterSupervisor
from repro.cluster.watch import AliasWatcher

__all__ = [
    "AliasWatcher",
    "ClusterConfig",
    "ClusterSupervisor",
    "build_cluster_status",
    "create_listen_sockets",
    "render_cluster_metrics",
]
