"""The cluster control plane: fork, health-check, restart, drain.

The supervisor owns everything the replicas must agree on before they
exist: the listening sockets (created first, so ``port=0`` resolves
once and crashed workers' successors re-inherit the very same socket —
connections queued while a worker was dead are accepted by its
replacement instead of being reset), the replica indices (0 is the
pipeline leader), and the shutdown order.

Per worker the supervisor keeps a ``fork``-context ``Process`` and one
end of a control :class:`~multiprocessing.Pipe`.  The pipe is the
whole control plane — ping / status / metrics / stop — deliberately
out-of-band from the data plane's HTTP sockets, so a worker drowning
in requests still answers health checks and a hung worker is detected
even though the kernel would happily keep queueing connections for it.

Failure policy: the health loop restarts any dead worker after a
fixed backoff (a crash loop burns one respawn per
``restart_backoff_s``, not CPU); restarts are counted per replica and
cluster-wide (``cluster.worker_restarts``).  Shutdown walks replicas
one at a time — SIGTERM, bounded join, SIGKILL escalation — and
:meth:`ClusterSupervisor.shutdown` returns how many workers needed
the hammer, which the CLI turns into the exit code.

An optional admin HTTP endpoint (``--admin-port``) serves the
aggregated cluster ``/v1/status``, ``/metrics`` and ``/healthz`` from
the supervisor process itself — one scrape target for N replicas.
"""

from __future__ import annotations

import json
import signal
import socket as socket_module
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from multiprocessing import get_context
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.aggregate import (
    build_cluster_status,
    render_cluster_metrics,
)
from repro.cluster.sockets import create_listen_sockets
from repro.cluster.worker import WorkerSpec, worker_main
from repro.obs.metrics import counter
from repro.serve.engine import BatchConfig

__all__ = ["ClusterConfig", "ClusterSupervisor"]

_RESTARTS = counter("cluster.worker_restarts")

#: Fallback reply window for one control-pipe request.
DEFAULT_CONTROL_TIMEOUT_S = 5.0


@dataclass
class ClusterConfig:
    """Shape of one serving cluster."""

    registry_dir: str
    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 8080
    batch: Optional[BatchConfig] = None
    monitor: bool = True
    pipeline: bool = False
    events_path: Optional[str] = None
    #: Follower alias-watch poll cadence (bounds promotion staleness).
    alias_poll_s: float = 0.5
    #: Health-loop cadence: liveness sweep + dead-worker respawn.
    health_interval_s: float = 0.5
    #: Respawn delay after a worker death (crash-loop throttle).
    restart_backoff_s: float = 0.5
    #: Per-worker SIGTERM drain window before SIGKILL.
    drain_timeout_s: float = 10.0
    #: Supervisor admin HTTP port (None = no admin endpoint, 0 = pick).
    admin_port: Optional[int] = None
    #: Extra ModelServer kwargs forwarded to every worker.
    extra_server_kwargs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")


class _WorkerHandle:
    """One replica slot: process + control pipe + restart bookkeeping."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Any = None
        self.conn: Any = None
        #: Serializes request/reply pairs on the pipe — two overlapping
        #: requests would read each other's replies.
        self.lock = threading.Lock()
        self.restarts = 0
        self.died_at: Optional[float] = None


class _AdminHandler(BaseHTTPRequestHandler):
    """Supervisor admin endpoint: the aggregated cluster documents."""

    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:
        pass

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        supervisor: "ClusterSupervisor" = self.server.supervisor
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/healthz":
                alive = supervisor.alive_workers()
                payload = {
                    "status": "ok" if alive == supervisor.config.workers
                    else "degraded",
                    "workers": supervisor.config.workers,
                    "alive": alive,
                }
                self._send(
                    200, json.dumps(payload).encode(), "application/json"
                )
            elif path == "/v1/status":
                self._send(
                    200,
                    json.dumps(supervisor.status()).encode(),
                    "application/json",
                )
            elif path == "/metrics":
                self._send(
                    200,
                    supervisor.metrics_text().encode(),
                    "text/plain; version=0.0.4",
                )
            else:
                self._send(
                    404,
                    json.dumps(
                        {"error": {"code": "not_found", "message": path}}
                    ).encode(),
                    "application/json",
                )
        except (BrokenPipeError, ConnectionResetError):
            pass


class ClusterSupervisor:
    """Forks and babysits N serving replicas behind one host:port."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self._ctx = get_context("fork")
        self._sockets: List[socket_module.socket] = []
        self.port: Optional[int] = None
        self.socket_mode: Optional[str] = None
        self._handles: List[_WorkerHandle] = []
        self._stop = threading.Event()
        self._health_thread: Optional[threading.Thread] = None
        self._admin: Optional[ThreadingHTTPServer] = None
        self._admin_thread: Optional[threading.Thread] = None
        self.started_unix: Optional[float] = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ClusterSupervisor":
        if self._handles:
            raise RuntimeError("cluster already started")
        self._sockets, self.port, self.socket_mode = create_listen_sockets(
            self.config.host, self.config.port, self.config.workers
        )
        self.started_unix = time.time()
        self._handles = [
            _WorkerHandle(index) for index in range(self.config.workers)
        ]
        try:
            for handle in self._handles:
                self._spawn(handle)
            self._health_thread = threading.Thread(
                target=self._health_loop,
                name="repro-cluster-health",
                daemon=True,
            )
            self._health_thread.start()
            if self.config.admin_port is not None:
                self._start_admin()
        except Exception:
            # A partial boot must not leak forked workers or sockets —
            # a leaked worker holds inherited stdio pipes open forever.
            self.shutdown()
            self._handles = []
            raise
        return self

    def _spawn(self, handle: _WorkerHandle) -> None:
        """Fork one replica into ``handle``'s slot.

        The child inherits the supervisor's listening sockets and its
        pipe end by fork — nothing is pickled, so the sockets stay the
        same kernel objects across every respawn of this slot.
        """
        parent_conn, child_conn = self._ctx.Pipe()
        spec = WorkerSpec(
            index=handle.index,
            registry_dir=self.config.registry_dir,
            host=self.config.host,
            port=int(self.port or 0),
            socket_mode=str(self.socket_mode),
            batch=self.config.batch,
            monitor=self.config.monitor,
            pipeline=self.config.pipeline,
            events_path=self.config.events_path,
            alias_poll_s=self.config.alias_poll_s,
            extra_server_kwargs=dict(self.config.extra_server_kwargs),
        )
        process = self._ctx.Process(
            target=worker_main,
            args=(spec, self._sockets, child_conn),
            name=f"repro-worker-{handle.index}",
        )
        process.start()
        child_conn.close()  # the child's copy lives on in the child
        handle.process = process
        handle.conn = parent_conn
        handle.died_at = None

    # -- health / restart ------------------------------------------------

    def _health_loop(self) -> None:
        while not self._stop.wait(self.config.health_interval_s):
            now = time.monotonic()
            for handle in self._handles:
                process = handle.process
                if process is None or process.is_alive():
                    continue
                if handle.died_at is None:
                    handle.died_at = now
                    continue  # respawn next sweep, after the backoff
                if now - handle.died_at < self.config.restart_backoff_s:
                    continue
                if self._stop.is_set():
                    return
                process.join(0)
                try:
                    handle.conn.close()
                except OSError:  # pragma: no cover
                    pass
                handle.restarts += 1
                _RESTARTS.inc()
                self._spawn(handle)

    def alive_workers(self) -> int:
        return sum(
            1
            for handle in self._handles
            if handle.process is not None and handle.process.is_alive()
        )

    def restart_counts(self) -> List[int]:
        return [handle.restarts for handle in self._handles]

    # -- control plane ---------------------------------------------------

    def worker_request(
        self,
        index: int,
        command: str,
        timeout: float = DEFAULT_CONTROL_TIMEOUT_S,
    ) -> Optional[Dict[str, Any]]:
        """One request/reply on a worker's control pipe.

        Returns ``None`` when the worker is dead, mid-restart, or does
        not answer within ``timeout`` — callers treat that as
        "unresponsive", never as an exception, because health surfaces
        must degrade instead of erroring.
        """
        if not 0 <= index < len(self._handles):
            raise IndexError(f"no worker {index}")
        handle = self._handles[index]
        with handle.lock:
            process, conn = handle.process, handle.conn
            if process is None or not process.is_alive():
                return None
            try:
                conn.send({"command": command})
                if not conn.poll(timeout):
                    return None
                reply = conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                return None
        return reply if isinstance(reply, dict) else None

    def status(self) -> Dict[str, Any]:
        """The aggregated cluster ``/v1/status`` document."""
        per_replica: Dict[int, Optional[Dict[str, Any]]] = {}
        for handle in self._handles:
            reply = self.worker_request(handle.index, "status")
            per_replica[handle.index] = (
                reply.get("status") if reply and reply.get("ok") else None
            )
        return build_cluster_status(per_replica, self.supervisor_info())

    def metrics_text(self) -> str:
        """The aggregated cluster ``/metrics`` exposition."""
        per_replica: Dict[int, List[Dict[str, Any]]] = {}
        for handle in self._handles:
            reply = self.worker_request(handle.index, "metrics")
            if reply and reply.get("ok"):
                per_replica[handle.index] = reply["records"]
        return render_cluster_metrics(per_replica)

    def supervisor_info(self) -> Dict[str, Any]:
        return {
            "host": self.config.host,
            "port": self.port,
            "socket_mode": self.socket_mode,
            "workers": self.config.workers,
            "alive": self.alive_workers(),
            "restarts": self.restart_counts(),
            "pipeline_leader": 0 if self.config.pipeline else None,
            "uptime_s": (
                time.time() - self.started_unix
                if self.started_unix
                else None
            ),
            "admin": (
                f"http://{self.config.host}:{self.admin_port}"
                if self._admin is not None
                else None
            ),
        }

    # -- admin endpoint --------------------------------------------------

    def _start_admin(self) -> None:
        self._admin = ThreadingHTTPServer(
            (self.config.host, int(self.config.admin_port or 0)),
            _AdminHandler,
        )
        self._admin.daemon_threads = True
        self._admin.supervisor = self  # type: ignore[attr-defined]
        self._admin_thread = threading.Thread(
            target=self._admin.serve_forever,
            name="repro-cluster-admin",
            daemon=True,
        )
        self._admin_thread.start()

    @property
    def admin_port(self) -> Optional[int]:
        if self._admin is None:
            return None
        return self._admin.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    # -- shutdown --------------------------------------------------------

    def serve_forever(self) -> None:
        """Park the CLI thread until :meth:`request_stop`."""
        self._stop.wait()

    def request_stop(self) -> None:
        """Signal-handler-safe: unblocks :meth:`serve_forever`."""
        self._stop.set()

    def shutdown(self) -> int:
        """Rolling drain; returns how many workers exited uncleanly.

        One replica at a time: SIGTERM (the worker stops accepting and
        drains its engine), a bounded join, then SIGKILL for a worker
        that would not die — counted, because a forced kill may have
        dropped in-flight requests and the exit code must say so.
        """
        self._stop.set()
        if self._health_thread is not None:
            self._health_thread.join(5.0)
            self._health_thread = None
        unclean = 0
        for handle in self._handles:
            process = handle.process
            if process is None:
                continue
            if process.is_alive():
                try:
                    process.terminate()  # SIGTERM → worker drain path
                except OSError:  # pragma: no cover
                    pass
                process.join(self.config.drain_timeout_s)
            if process.is_alive():
                process.kill()
                process.join(5.0)
                unclean += 1
            elif (process.exitcode or 0) not in (0, -signal.SIGTERM):
                unclean += 1
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass
        if self._admin is not None:
            self._admin.shutdown()
            self._admin.server_close()
            self._admin = None
            if self._admin_thread is not None:
                self._admin_thread.join(5.0)
                self._admin_thread = None
        for sock in self._sockets:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        self._sockets = []
        return unclean

    def __enter__(self) -> "ClusterSupervisor":
        # Works both for ``with ClusterSupervisor(cfg) as s`` and for a
        # supervisor the caller already ``start()``-ed.
        if not self._handles:
            self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
