"""What runs inside one forked cluster replica.

:func:`worker_main` is the child-process entry point the supervisor
forks into.  Everything it needs — the :class:`WorkerSpec`, the
listening sockets, its end of the control pipe — arrives by fork
inheritance, never pickling, so sockets and callables travel for free.

Per-replica layout:

- its **own** :class:`~repro.serve.registry.ModelRegistry` over the
  shared directory and its own batching engine — replicas share
  *artifacts on disk*, never Python objects, which is what makes
  predictions bit-identical across them (same bytes in, same compiled
  kernel, same float ops);
- the **leader** (replica 0, and only it) arms the MLOps pipeline, so
  retrain/shadow/promote runs exactly once per cluster;
- every **follower** runs an :class:`~repro.cluster.watch.AliasWatcher`
  that warms freshly promoted champions (resolution itself re-reads
  alias files per request, so followers serve a promotion on their
  next request regardless);
- a **control thread** answers the supervisor's pipe requests (ping /
  status / metrics / stop) so health checks never touch the data
  plane's HTTP path;
- **SIGTERM** triggers the drain: stop accepting, answer everything
  already queued in the engine, flush telemetry, exit 0.  The drain is
  deliberately *bounded* — ``block_on_close`` is turned off so an idle
  keep-alive connection (a load generator holding a persistent socket,
  a dead client) cannot pin the worker in ``server_close`` forever;
  the supervisor's SIGKILL ladder backstops true stragglers.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.serve.engine import BatchConfig

__all__ = ["WorkerSpec", "worker_main"]

#: After the engine drain, how long a worker lingers so in-flight
#: handler threads finish writing their (already computed) responses.
RESPONSE_GRACE_S = 0.3


@dataclass
class WorkerSpec:
    """Everything one replica needs, passed across the fork."""

    index: int
    registry_dir: str
    host: str
    port: int
    socket_mode: str  # "reuseport" | "shared"
    batch: Optional[BatchConfig] = None
    monitor: bool = True
    pipeline: bool = False
    events_path: Optional[str] = None
    alias_poll_s: float = 0.5
    extra_server_kwargs: Dict[str, Any] = field(default_factory=dict)

    @property
    def leader(self) -> bool:
        return self.index == 0


def _own_socket(
    spec: WorkerSpec, sockets: List[socket.socket]
) -> socket.socket:
    """Keep this replica's listening socket, close the siblings'.

    Fork hands the child *every* socket the supervisor created.  In
    reuseport mode each replica must accept on exactly one of them —
    holding a sibling's socket open would both steal its kernel-hashed
    connections and keep the port alive after that sibling dies.  In
    shared mode there is only one socket and everyone keeps it.
    """
    if spec.socket_mode == "shared":
        return sockets[0]
    own = sockets[spec.index]
    for i, sock in enumerate(sockets):
        if i != spec.index:
            sock.close()
    return own


def worker_main(spec: WorkerSpec, sockets: List[socket.socket], conn) -> None:
    """Run one replica until SIGTERM or a ``stop`` control command."""
    # The metrics registry arrived pre-populated from the supervisor's
    # process; zero it so this replica reports only its own traffic.
    from repro.obs.metrics import get_registry
    from repro.serve.api import ModelServer
    from repro.serve.registry import ModelRegistry
    from repro.serve.status import build_status_document
    from repro.cluster.watch import AliasWatcher

    get_registry().reset()

    listen_socket = _own_socket(spec, sockets)
    registry = ModelRegistry(spec.registry_dir)
    server = ModelServer(
        registry,
        host=spec.host,
        port=spec.port,
        batch=spec.batch,
        monitor=spec.monitor,
        events_path=spec.events_path,
        events_per_pid=True,
        pipeline=spec.pipeline and spec.leader,
        listen_socket=listen_socket,
        replica={"index": spec.index, "leader": spec.leader},
        **spec.extra_server_kwargs,
    )
    # Bounded drain: never sit in server_close joining an idle
    # keep-alive reader; the engine drain below answers all real work.
    server._httpd.block_on_close = False

    watcher: Optional[AliasWatcher] = None
    if not spec.leader:
        watcher = AliasWatcher(registry, poll_s=spec.alias_poll_s).start()

    stop_event = threading.Event()

    def _on_sigterm(signum, frame) -> None:
        stop_event.set()

    signal.signal(signal.SIGTERM, _on_sigterm)
    signal.signal(signal.SIGINT, _on_sigterm)

    def _status_document() -> Dict[str, Any]:
        with server.stats_lock:
            recent = list(server.recent_latency)
        document = build_status_document(
            registry,
            server.engine,
            drift=server.drift,
            slo=server.slo,
            events=server.telemetry,
            recent_latency_s=recent,
            started_unix=server.started_unix,
            pipeline=server.pipeline,
            profiler=server.profiler,
            replica=server.replica,
        )
        if watcher is not None:
            document["alias_watch"] = watcher.report()
        return document

    def _control_loop() -> None:
        """Answer supervisor pipe requests until stop/EOF."""
        while not stop_event.is_set():
            try:
                if not conn.poll(0.2):
                    continue
                request = conn.recv()
            except (EOFError, OSError):
                # Supervisor went away: treat as a stop order rather
                # than running on as an unsupervised orphan.
                stop_event.set()
                return
            command = request.get("command")
            try:
                if command == "ping":
                    reply: Dict[str, Any] = {"ok": True, "pid": os.getpid()}
                elif command == "status":
                    reply = {"ok": True, "status": _status_document()}
                elif command == "metrics":
                    reply = {
                        "ok": True,
                        "records": get_registry().as_records(),
                    }
                elif command == "stop":
                    reply = {"ok": True, "pid": os.getpid()}
                    stop_event.set()
                else:
                    reply = {"ok": False, "error": f"unknown {command!r}"}
            except Exception as error:  # pragma: no cover - defensive
                reply = {"ok": False, "error": str(error)}
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):  # pragma: no cover
                stop_event.set()
                return

    control = threading.Thread(
        target=_control_loop, name="repro-cluster-control", daemon=True
    )
    control.start()

    # serve_forever blocks this (the main) thread; the shutdown trigger
    # must come from another one, and a signal handler cannot call
    # httpd.shutdown itself (it would deadlock waiting for the very
    # serve loop it interrupted), hence the waiter thread.
    def _shutdown_when_stopped() -> None:
        stop_event.wait()
        server._httpd.shutdown()

    threading.Thread(
        target=_shutdown_when_stopped,
        name="repro-cluster-drain",
        daemon=True,
    ).start()

    try:
        server.serve_forever()
    finally:
        stop_event.set()
        if watcher is not None:
            watcher.stop()
        # Drain: no new accepts (loop exited), answer the queued work,
        # flush telemetry, give in-flight response writes a beat.
        server._httpd.server_close()
        server.engine.stop()
        if server.telemetry is not None:
            server.telemetry.close()
        time.sleep(RESPONSE_GRACE_S)
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
