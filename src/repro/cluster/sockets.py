"""Listening-socket setup for the cluster: reuseport or shared.

Two ways N processes can accept on one host:port:

``reuseport``
    Every worker gets its *own* listening socket bound with
    ``SO_REUSEPORT``; the kernel hashes each incoming connection's
    4-tuple onto one of the sockets in the group.  This is the fast
    path — no shared accept queue, no thundering herd — and the
    default wherever the platform supports the option (Linux >= 3.9,
    modern BSDs).

``shared``
    The supervisor binds *one* listening socket before forking and
    every worker inherits it; the kernel wakes one blocked ``accept``
    per connection (round-robin-ish).  Slightly more accept contention
    but works everywhere ``fork`` does.

Either way the sockets are created in the *supervisor* before any
worker exists, for two reasons: an ephemeral-port request (``port=0``)
must resolve to one concrete port that all N sockets then share, and
the parent keeping its own copy of every socket means a crashed
worker's replacement re-inherits the very same socket — connections
queued while the worker was dead are accepted by its successor instead
of being reset.
"""

from __future__ import annotations

import socket
from typing import List, Tuple

__all__ = ["create_listen_sockets", "reuseport_available"]

#: accept() backlog per listening socket.
LISTEN_BACKLOG = 128


def reuseport_available() -> bool:
    """Can this platform bind N sockets to one port with SO_REUSEPORT?

    ``hasattr`` is necessary but not sufficient — some kernels expose
    the constant and fail the ``setsockopt`` — so probe with a real
    socket.
    """
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        return True
    except OSError:
        return False
    finally:
        probe.close()


def _bind_one(host: str, port: int, reuseport: bool) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuseport:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        sock.listen(LISTEN_BACKLOG)
        return sock
    except BaseException:
        sock.close()
        raise


def create_listen_sockets(
    host: str, port: int, workers: int
) -> Tuple[List[socket.socket], int, str]:
    """All listening sockets for a ``workers``-replica cluster.

    Returns ``(sockets, port, mode)``: one socket per worker and
    ``mode="reuseport"`` where the platform allows, else a single
    shared socket and ``mode="shared"``.  ``port=0`` is resolved by
    the first bind and the remaining sockets join that concrete port,
    so ephemeral-port clusters (tests) work the same as fixed-port
    ones.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1 or not reuseport_available():
        sock = _bind_one(host, port, reuseport=False)
        return [sock], sock.getsockname()[1], "shared"
    sockets: List[socket.socket] = []
    try:
        first = _bind_one(host, port, reuseport=True)
        sockets.append(first)
        bound_port = first.getsockname()[1]
        for _ in range(workers - 1):
            sockets.append(_bind_one(host, bound_port, reuseport=True))
        return sockets, bound_port, "reuseport"
    except BaseException:
        for sock in sockets:
            sock.close()
        raise
