"""Plain-text tables in the paper's layout.

``format_profile_table`` renders Tables II/IV (benchmark rows, LM
columns, 'Suite' and 'Average' footer rows, contributions above a
highlight threshold marked); ``format_similarity_table`` renders
Table III (pairwise differences plus the vs-suite row).
"""

from __future__ import annotations

from typing import Sequence

from repro.characterization.profile import SuiteProfile
from repro.characterization.similarity import SimilarityMatrix

__all__ = ["format_profile_table", "format_similarity_table"]


def _short(name: str, width: int) -> str:
    """Trim a benchmark name to fit a column."""
    return name if len(name) <= width else name[: width - 1] + "~"


def format_profile_table(
    profile: SuiteProfile,
    highlight: float = 20.0,
    name_width: int = 16,
) -> str:
    """Render a Table II/IV-style profile table.

    Shares at or above ``highlight`` percent are wrapped in ``*`` the
    way the paper bolds contributions above 20%.
    """
    lm_names = profile.lm_names
    cell = max(6, max(len(n) for n in lm_names) + 1)

    def fmt_row(label: str, shares) -> str:
        cells = []
        for lm in lm_names:
            value = shares.get(lm, 0.0)
            text = f"{value:.1f}"
            if value >= highlight:
                text = f"*{text}*"
            cells.append(text.rjust(cell))
        return _short(label, name_width).ljust(name_width) + "".join(cells)

    header = "".ljust(name_width) + "".join(n.rjust(cell) for n in lm_names)
    lines = [header]
    for bench in profile.benchmarks:
        lines.append(fmt_row(bench.benchmark, bench.shares))
    lines.append("-" * len(header))
    lines.append(fmt_row("Suite", profile.suite_row))
    lines.append(fmt_row("Average", profile.average_row))
    return "\n".join(lines)


def format_similarity_table(
    matrix: SimilarityMatrix,
    benchmarks: Sequence[str] = (),
    name_width: int = 16,
) -> str:
    """Render a Table III-style pairwise difference table."""
    names = list(benchmarks) if benchmarks else list(matrix.benchmark_names)
    cell = max(8, min(12, max(len(_short(n, 10)) for n in names) + 2))
    header = "".ljust(name_width) + "".join(
        _short(n, cell - 1).rjust(cell) for n in names
    )
    lines = [header]
    for a in names:
        row = [_short(a, name_width).ljust(name_width)]
        for b in names:
            row.append(f"{matrix.distance(a, b):.1f}".rjust(cell))
        lines.append("".join(row))
    lines.append("-" * len(header))
    suite_row = ["Suite".ljust(name_width)]
    for b in names:
        suite_row.append(f"{matrix.suite_distance(b):.1f}".rjust(cell))
    lines.append("".join(suite_row))
    return "\n".join(lines)
