"""Benchmark similarity via the L1 distance of leaf profiles.

Equation 4 of the paper:

    D_{j,k} = (1/2) * sum_i | s_{i,j} - s_{i,k} |

where ``s_{i,n}`` is the percentage of benchmark ``n``'s samples in
linear model ``i``.  The factor 1/2 normalizes to 0..100: identical
profiles give 0, disjoint ones 100.  Table III is this distance over
benchmark pairs, and the last row compares each benchmark to the
suite-weighted profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence, Tuple

import numpy as np

from repro.characterization.profile import SuiteProfile

__all__ = ["l1_difference", "SimilarityMatrix", "similarity_matrix"]


def l1_difference(
    shares_a: Mapping[str, float], shares_b: Mapping[str, float]
) -> float:
    """Equation 4: half the L1 distance between two share profiles."""
    lms = set(shares_a) | set(shares_b)
    return 0.5 * sum(
        abs(shares_a.get(lm, 0.0) - shares_b.get(lm, 0.0)) for lm in lms
    )


@dataclass(frozen=True)
class SimilarityMatrix:
    """Pairwise benchmark differences plus the vs-suite row."""

    benchmark_names: Tuple[str, ...]
    distances: np.ndarray  # (n, n), symmetric, zero diagonal
    vs_suite: np.ndarray  # (n,), distance of each benchmark to the suite row

    def distance(self, a: str, b: str) -> float:
        """D_{a,b} from Equation 4."""
        i = self.benchmark_names.index(a)
        j = self.benchmark_names.index(b)
        return float(self.distances[i, j])

    def suite_distance(self, name: str) -> float:
        """Distance of one benchmark's profile from the suite profile."""
        return float(self.vs_suite[self.benchmark_names.index(name)])

    def most_similar_pairs(self, k: int = 5) -> List[Tuple[str, str, float]]:
        """The k closest distinct benchmark pairs."""
        return self._ranked_pairs()[:k]

    def most_dissimilar_pairs(self, k: int = 5) -> List[Tuple[str, str, float]]:
        """The k most distant benchmark pairs."""
        return self._ranked_pairs()[::-1][:k]

    def _ranked_pairs(self) -> List[Tuple[str, str, float]]:
        pairs = []
        n = len(self.benchmark_names)
        for i in range(n):
            for j in range(i + 1, n):
                pairs.append(
                    (
                        self.benchmark_names[i],
                        self.benchmark_names[j],
                        float(self.distances[i, j]),
                    )
                )
        return sorted(pairs, key=lambda item: item[2])


def similarity_matrix(
    profile: SuiteProfile, benchmarks: Sequence[str] = ()
) -> SimilarityMatrix:
    """Compute Table III for all (or a subset of) benchmarks."""
    selected = list(benchmarks) if benchmarks else [
        p.benchmark for p in profile.benchmarks
    ]
    rows = [profile.benchmark(name) for name in selected]
    n = len(rows)
    distances = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = l1_difference(rows[i].shares, rows[j].shares)
            distances[i, j] = distances[j, i] = d
    vs_suite = np.array(
        [l1_difference(row.shares, profile.suite_row) for row in rows]
    )
    return SimilarityMatrix(
        benchmark_names=tuple(selected),
        distances=distances,
        vs_suite=vs_suite,
    )
