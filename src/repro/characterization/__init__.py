"""Characterization layer: leaf profiles and benchmark similarity.

Implements Section IV.B / V.B of the paper: classify every sample of a
data set into the linear models of a fitted tree, tabulate the
distribution per benchmark (Tables II and IV), and compare benchmarks
by the L1 (Manhattan) distance between their distributions (Table III,
Equation 4).
"""

from repro.characterization.profile import (
    BenchmarkProfile,
    SuiteProfile,
    profile_sample_set,
)
from repro.characterization.similarity import (
    SimilarityMatrix,
    l1_difference,
    similarity_matrix,
)
from repro.characterization.report import (
    format_profile_table,
    format_similarity_table,
)
from repro.characterization.salience import (
    SalientFeature,
    find_salient_features,
    render_salience,
)

__all__ = [
    "SalientFeature",
    "find_salient_features",
    "render_salience",
    "BenchmarkProfile",
    "SimilarityMatrix",
    "SuiteProfile",
    "format_profile_table",
    "format_similarity_table",
    "l1_difference",
    "profile_sample_set",
    "similarity_matrix",
]
