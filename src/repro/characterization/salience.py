"""Salient-profile detection — automating Section IV.B's narrative.

The paper walks Table II and calls out benchmarks "that have
particularly salient profiles": sole contributors to a linear model
(482.sphinx3 and LM18, 471.omnetpp and LM24), pairs of benchmarks that
own a model family (470.lbm / 436.cactusADM and the SIMD models), and
benchmarks that concentrate in one model.  This module finds those
stories mechanically so they can be asserted and regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.characterization.profile import SuiteProfile

__all__ = ["SalientFeature", "find_salient_features", "render_salience"]


@dataclass(frozen=True)
class SalientFeature:
    """One noteworthy fact about a benchmark/model relationship."""

    kind: str  # 'sole-contributor' | 'concentrated' | 'suite-like'
    benchmark: str
    lm_name: str
    share: float
    detail: str

    def __str__(self) -> str:
        return f"{self.benchmark}: {self.detail}"


def find_salient_features(
    profile: SuiteProfile,
    sole_threshold: float = 50.0,
    concentration_threshold: float = 70.0,
    suite_like_distance: float = 25.0,
) -> List[SalientFeature]:
    """Extract the Section IV.B-style observations from a profile.

    * ``sole-contributor``: a benchmark holds >= ``sole_threshold``
      percent of its samples in a model no other benchmark puts more
      than a fifth of that share into.
    * ``concentrated``: a benchmark puts >= ``concentration_threshold``
      percent of its samples into a single model.
    * ``suite-like``: a benchmark's profile is within
      ``suite_like_distance`` (Eq. 4) of the suite's own profile.
    """
    from repro.characterization.similarity import l1_difference

    features: List[SalientFeature] = []
    for bench in profile.benchmarks:
        top_lm, top_share = max(bench.shares.items(), key=lambda kv: kv[1])
        others = [
            p.share(top_lm)
            for p in profile.benchmarks
            if p.benchmark != bench.benchmark
        ]
        max_other = max(others) if others else 0.0
        if top_share >= sole_threshold and max_other <= top_share / 5.0:
            features.append(
                SalientFeature(
                    kind="sole-contributor",
                    benchmark=bench.benchmark,
                    lm_name=top_lm,
                    share=top_share,
                    detail=(
                        f"effectively the only workload in {top_lm} "
                        f"({top_share:.1f}% of its samples; no other "
                        f"benchmark exceeds {max_other:.1f}%), "
                        f"average CPI {bench.mean_cpi:.2f}"
                    ),
                )
            )
        elif top_share >= concentration_threshold:
            features.append(
                SalientFeature(
                    kind="concentrated",
                    benchmark=bench.benchmark,
                    lm_name=top_lm,
                    share=top_share,
                    detail=(
                        f"concentrates {top_share:.1f}% of its samples "
                        f"in {top_lm}, average CPI {bench.mean_cpi:.2f}"
                    ),
                )
            )
        distance = l1_difference(bench.shares, profile.suite_row)
        if distance <= suite_like_distance:
            features.append(
                SalientFeature(
                    kind="suite-like",
                    benchmark=bench.benchmark,
                    lm_name="",
                    share=distance,
                    detail=(
                        f"profile within {distance:.1f}% of the overall "
                        f"suite (a representative member)"
                    ),
                )
            )
    return features


def render_salience(features: List[SalientFeature]) -> str:
    """Bullet list grouped by kind, Section IV.B style."""
    sections: List[Tuple[str, str]] = [
        ("sole-contributor", "Benchmarks that own a linear model:"),
        ("concentrated", "Benchmarks concentrated in one model:"),
        ("suite-like", "Benchmarks most similar to the whole suite:"),
    ]
    lines: List[str] = []
    for kind, heading in sections:
        selected = [f for f in features if f.kind == kind]
        if not selected:
            continue
        lines.append(heading)
        for feature in selected:
            lines.append(f"  - {feature}")
    return "\n".join(lines)
