"""Event correlation analysis.

The related work the paper builds on ([19]) applies correlation
analysis to program attributes before modeling.  Two views:

* event-vs-CPI correlations — the zeroth-order answer to "what events
  correlate with changes in performance", useful as a sanity backdrop
  for the tree's split choices (a tree can exploit *conditional*
  structure that marginal correlations miss, which is the point of
  using model trees at all);
* the event-event correlation matrix — the collinearity (loads vs L1D
  misses, DTLB misses vs page walks) that makes single linear models
  hard to interpret and motivates PCA in the subsetting pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.datasets.dataset import SampleSet

__all__ = [
    "cpi_correlations",
    "event_correlation_matrix",
    "strongest_pairs",
    "format_cpi_correlations",
]


def cpi_correlations(data: SampleSet) -> Dict[str, float]:
    """Pearson correlation of each event density with CPI, sorted by |r|."""
    out = {}
    y = data.y
    sy = y.std()
    if sy == 0:
        raise ValueError("CPI is constant; correlations undefined")
    for name in data.feature_names:
        x = data.column(name)
        sx = x.std()
        if sx == 0:
            out[name] = 0.0
        else:
            out[name] = float(np.mean((x - x.mean()) * (y - y.mean())) / (sx * sy))
    return dict(sorted(out.items(), key=lambda kv: -abs(kv[1])))


def event_correlation_matrix(data: SampleSet) -> Tuple[Tuple[str, ...], np.ndarray]:
    """(feature names, correlation matrix) over the event densities.

    Constant columns get zero off-diagonal correlation (not NaN).
    """
    X = data.X
    stds = X.std(axis=0)
    safe = np.where(stds == 0.0, 1.0, stds)
    Z = (X - X.mean(axis=0)) / safe
    matrix = Z.T @ Z / X.shape[0]
    matrix[stds == 0.0, :] = 0.0
    matrix[:, stds == 0.0] = 0.0
    np.fill_diagonal(matrix, 1.0)
    return data.feature_names, matrix


def strongest_pairs(
    data: SampleSet, k: int = 10
) -> List[Tuple[str, str, float]]:
    """The k most correlated distinct event pairs, by |r|."""
    names, matrix = event_correlation_matrix(data)
    pairs = []
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            pairs.append((names[i], names[j], float(matrix[i, j])))
    return sorted(pairs, key=lambda p: -abs(p[2]))[:k]


def format_cpi_correlations(data: SampleSet, k: int = 12) -> str:
    """Text table of the top-k |r(event, CPI)| values."""
    correlations = cpi_correlations(data)
    lines = [f"{'event':16s} {'r(event, CPI)':>14s}", "-" * 31]
    for name, r in list(correlations.items())[:k]:
        lines.append(f"{name:16s} {r:+14.3f}")
    return "\n".join(lines)
