"""Sample-distribution profiles over a tree's linear models.

Once a model tree is built, "it can be used to characterize other sets
of sample data containing the same performance-monitoring events"
(Section IV.B): each sample is classified by the split points into one
leaf, and the per-benchmark distribution over leaves is the benchmark's
*profile*.  Tables II and IV of the paper are exactly these profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.datasets.dataset import SampleSet
from repro.mtree.tree import ModelTree

__all__ = ["BenchmarkProfile", "SuiteProfile", "profile_sample_set"]


@dataclass(frozen=True)
class BenchmarkProfile:
    """Distribution of one benchmark's samples over leaf models.

    ``shares`` maps LM name to the *percentage* (0-100) of the
    benchmark's samples classified into that model; ``mean_cpi`` is the
    benchmark's average measured CPI.
    """

    benchmark: str
    n_samples: int
    shares: Mapping[str, float]
    mean_cpi: float

    def share(self, lm_name: str) -> float:
        """Percentage of samples in the given LM (0 if none)."""
        return self.shares.get(lm_name, 0.0)

    def dominant(self, k: int = 3) -> List[Tuple[str, float]]:
        """The k most-populated linear models, largest first."""
        ranked = sorted(self.shares.items(), key=lambda item: -item[1])
        return [(name, share) for name, share in ranked[:k] if share > 0.0]


@dataclass(frozen=True)
class SuiteProfile:
    """All benchmark profiles plus the Suite and Average rows.

    ``suite_row`` weights each benchmark by its sample count (the paper
    weights by instruction count; with equal-size intervals they are
    the same thing).  ``average_row`` gives each benchmark equal weight.
    """

    lm_names: Tuple[str, ...]
    benchmarks: Tuple[BenchmarkProfile, ...]
    suite_row: Mapping[str, float]
    average_row: Mapping[str, float]

    def benchmark(self, name: str) -> BenchmarkProfile:
        for profile in self.benchmarks:
            if profile.benchmark == name:
                return profile
        raise KeyError(
            f"no profile for {name!r}; have "
            f"{[p.benchmark for p in self.benchmarks]}"
        )

    def as_matrix(self) -> np.ndarray:
        """(n_benchmarks, n_lms) share matrix in lm_names order."""
        return np.array(
            [
                [profile.share(lm) for lm in self.lm_names]
                for profile in self.benchmarks
            ],
            dtype=float,
        )


def profile_sample_set(tree: ModelTree, data: SampleSet) -> SuiteProfile:
    """Classify ``data`` through ``tree`` and tabulate per benchmark."""
    if len(data) == 0:
        raise ValueError("cannot profile an empty sample set")
    lm_names = tuple(tree.leaf_names())
    assignments = tree.assign_leaves(data.X)

    profiles: List[BenchmarkProfile] = []
    for name in data.benchmark_names():
        mask = data.benchmarks == name
        subset = assignments[mask]
        n = int(mask.sum())
        counts: Dict[str, int] = {}
        for lm in subset:
            counts[lm] = counts.get(lm, 0) + 1
        shares = {lm: 100.0 * counts.get(lm, 0) / n for lm in lm_names}
        profiles.append(
            BenchmarkProfile(
                benchmark=name,
                n_samples=n,
                shares=shares,
                mean_cpi=float(data.y[mask].mean()),
            )
        )

    total = len(data)
    suite_row = {
        lm: 100.0 * float(np.sum(assignments == lm)) / total for lm in lm_names
    }
    average_row = {
        lm: float(np.mean([p.share(lm) for p in profiles])) for lm in lm_names
    }
    return SuiteProfile(
        lm_names=lm_names,
        benchmarks=tuple(profiles),
        suite_row=suite_row,
        average_row=average_row,
    )
