"""Run provenance manifests.

A manifest is a single JSON object that fully reconstructs how a run
was produced: the experiment configuration (seed, sample counts,
splits, tree hyperparameters, collector and noise models), the exact
invocation, and the software platform it ran on.  It is written as the
first line of every trace JSONL file and validated by the schema here,
so a trace found on disk months later still answers "what produced
these numbers?".

The schema check is hand-rolled (the container has no ``jsonschema``):
:data:`MANIFEST_SCHEMA` declares required fields and types in a small
JSON-Schema-like dialect and :func:`validate_manifest` enforces it.
"""

from __future__ import annotations

import dataclasses
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "MANIFEST_SCHEMA",
    "build_manifest",
    "validate_manifest",
    "manifest_errors",
    "build_info",
]

MANIFEST_VERSION = "repro-manifest-v1"

#: Schema versions of every on-disk artifact this package writes, in
#: one place so ``/healthz``, ``/v1/status`` and the run manifest all
#: report the same provenance.  Values are kept as literals (rather
#: than imported) to avoid obs -> serve import cycles.
SCHEMA_VERSIONS: Dict[str, Any] = {
    "manifest": MANIFEST_VERSION,
    "model_record": "repro-model-record-v1",
    "tree_artifact": 2,
    "events": "repro-events-v1",
    "telemetry": "repro-telemetry-v1",
    "status": "repro-status-v1",
    "profile": "repro-profile-v1",
    "ledger": "repro-ledger-v1",
}

#: Required shape of a manifest.  ``type`` names follow JSON Schema
#: (object/array/string/number/integer); nested ``properties`` entries
#: are themselves required.
MANIFEST_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "properties": {
        "schema": {"type": "string", "const": MANIFEST_VERSION},
        "created_unix": {"type": "number"},
        "created_iso": {"type": "string"},
        "argv": {"type": "array", "items": {"type": "string"}},
        "experiments": {"type": "array", "items": {"type": "string"}},
        "config": {
            "type": "object",
            "properties": {
                "seed": {"type": "integer"},
                "cpu_samples": {"type": "integer"},
                "omp_samples": {"type": "integer"},
                "train_fraction": {"type": "number"},
                "test_fraction": {"type": "number"},
                "tree": {"type": "object"},
                "collector": {"type": "object"},
                "noise": {"type": "object"},
            },
        },
        "platform": {
            "type": "object",
            "properties": {
                "python": {"type": "string"},
                "implementation": {"type": "string"},
                "machine": {"type": "string"},
                "system": {"type": "string"},
                "release": {"type": "string"},
            },
        },
        "packages": {"type": "object"},
    },
}


def _package_versions() -> Dict[str, str]:
    versions: Dict[str, str] = {
        "python": platform.python_version(),
    }
    try:
        import numpy

        versions["numpy"] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    try:
        from importlib.metadata import PackageNotFoundError, version

        try:
            versions["repro"] = version("repro")
        except PackageNotFoundError:
            pass
    except ImportError:  # pragma: no cover - py>=3.8 always has it
        pass
    return versions


def _git_describe() -> Optional[str]:
    """``git describe --always --dirty`` of the source tree, if any.

    Installed (non-checkout) copies and containers without git simply
    report None; provenance is best-effort by design.
    """
    try:
        result = subprocess.run(
            ["git", "describe", "--tags", "--always", "--dirty"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=2.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if result.returncode != 0:
        return None
    described = result.stdout.strip()
    return described or None


_BUILD_INFO: Optional[Dict[str, Any]] = None


def build_info() -> Dict[str, Any]:
    """Build/version provenance: package version, git state, schemas.

    Computed once per process (the git subprocess is not free) and
    returned as a fresh copy each call so callers may annotate it.
    """
    global _BUILD_INFO
    if _BUILD_INFO is None:
        version: Optional[str] = None
        try:
            from importlib.metadata import PackageNotFoundError
            from importlib.metadata import version as package_version

            try:
                version = package_version("repro")
            except PackageNotFoundError:
                version = None
        except ImportError:  # pragma: no cover - py>=3.8 always has it
            version = None
        _BUILD_INFO = {
            "package": "repro",
            "version": version,
            "git": _git_describe(),
            "python": platform.python_version(),
            "schemas": dict(SCHEMA_VERSIONS),
        }
    return {**_BUILD_INFO, "schemas": dict(_BUILD_INFO["schemas"])}


def build_manifest(
    config: Any,
    experiments: Sequence[str] = (),
    argv: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a schema-valid manifest for one run.

    ``config`` is an :class:`~repro.experiments.config.ExperimentConfig`
    (any dataclass with the same field names works — the manifest
    stores its full ``asdict`` expansion, so nothing about the run has
    to be re-derived from defaults later).
    """
    now = time.time()
    config_dict = dataclasses.asdict(config)
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_VERSION,
        "created_unix": now,
        "created_iso": time.strftime(
            "%Y-%m-%dT%H:%M:%S%z", time.localtime(now)
        ),
        "argv": list(argv if argv is not None else sys.argv),
        "experiments": [str(e) for e in experiments],
        "config": config_dict,
        "platform": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
            "release": platform.release(),
        },
        "packages": _package_versions(),
        "build": build_info(),
    }
    if jobs is not None:
        manifest["jobs"] = jobs
    if cache_dir is not None:
        manifest["cache_dir"] = str(cache_dir)
    if extra:
        manifest.update(extra)
    return manifest


_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
}


def _check(value: Any, schema: Dict[str, Any], path: str, errors: List[str]) -> None:
    expected = schema.get("type")
    if expected is not None and not _TYPE_CHECKS[expected](value):
        errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
        return
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
    for key, sub in schema.get("properties", {}).items():
        if key not in value:
            errors.append(f"{path}.{key}: missing")
        else:
            _check(value[key], sub, f"{path}.{key}", errors)
    items = schema.get("items")
    if items is not None and isinstance(value, list):
        for index, element in enumerate(value):
            _check(element, items, f"{path}[{index}]", errors)


def manifest_errors(manifest: Any) -> List[str]:
    """All schema violations (empty list means the manifest is valid)."""
    errors: List[str] = []
    _check(manifest, MANIFEST_SCHEMA, "manifest", errors)
    return errors


def validate_manifest(manifest: Any) -> Dict[str, Any]:
    """Return the manifest if schema-valid, else raise ``ValueError``."""
    errors = manifest_errors(manifest)
    if errors:
        raise ValueError(
            "invalid run manifest:\n  " + "\n  ".join(errors)
        )
    return manifest
