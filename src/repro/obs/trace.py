"""Hierarchical span tracing with zero overhead when disabled.

A :class:`Span` records one timed region of the pipeline — wall time,
CPU time, peak-RSS growth and an arbitrary domain payload — and spans
nest: entering a span while another is open makes it a child, so one
battery run produces a single tree rooted at the CLI (or the
:class:`~repro.experiments.runner.ParallelRunner` battery span) with
experiments, pipeline stages, tree fits and split searches below it.

Tracing is *opt-in* and off by default.  The instrumentation sites all
call the module-level :func:`span` helper, which returns a shared
no-op context manager when no tracer is installed: no :class:`Span`
objects (or any other per-call objects beyond the caller's keyword
dict) are allocated, so hot paths such as the per-node split search
pay only a global load and a ``None`` check.  Enable with::

    tracer = Tracer()
    with use_tracer(tracer):
        run_experiment("E3", ctx)
    tracer.write_jsonl("trace.jsonl", manifest=build_manifest(...))

Worker processes build their own tracers and ship serialized spans
back; :meth:`Tracer.adopt` re-parents them under a span of the
receiving tracer so a parallel battery still exports one tree.

The sampling profiler (:mod:`repro.obs.prof`) consumes a second,
lighter signal from this module: *span attribution*.  While a
profiler is running, every :func:`span` call — with or without a full
tracer installed — pushes its name onto a per-thread stack that
:func:`thread_span_names` snapshots, so each profile sample can be
joined to the innermost open span of the thread it came from.  Like
tracing, attribution costs nothing when off: the disabled
:func:`span` path is still two global loads and two falsy checks.
"""

from __future__ import annotations

import json
import resource
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

__all__ = [
    "Span",
    "Tracer",
    "span",
    "current_tracer",
    "set_tracer",
    "use_tracer",
    "tracing_enabled",
    "enable_span_attribution",
    "disable_span_attribution",
    "span_attribution_enabled",
    "thread_span_names",
]

#: Number of Span objects ever constructed in this process.  Tests use
#: this to prove the disabled path allocates no spans.
SPANS_CREATED = 0


def _maxrss_kb() -> int:
    """Current high-water RSS of this process in KiB."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


class Span:
    """One timed, named region with payload and children."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "payload",
        "children",
        "start_wall",
        "wall_s",
        "cpu_s",
        "rss_delta_kb",
        "_t0",
        "_cpu0",
        "_rss0",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        payload: Dict[str, Any],
    ) -> None:
        global SPANS_CREATED
        SPANS_CREATED += 1
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.payload = payload
        self.children: List["Span"] = []
        self.start_wall = 0.0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.rss_delta_kb = 0
        self._t0 = 0.0
        self._cpu0 = 0.0
        self._rss0 = 0

    def note(self, **payload: Any) -> None:
        """Attach (or overwrite) payload entries while the span is open."""
        self.payload.update(payload)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_wall": self.start_wall,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "rss_delta_kb": self.rss_delta_kb,
            "payload": self.payload,
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, wall={self.wall_s * 1e3:.2f}ms, "
            f"children={len(self.children)})"
        )


class _NullSpan:
    """Shared do-nothing stand-in used while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def note(self, **payload: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()

# -- span attribution (consumed by repro.obs.prof) -------------------------

#: Count of active attribution consumers (profilers).  Guarded by the
#: GIL: enable/disable are rare, and a stale read in ``span()`` only
#: means one span is (or is not) registered for attribution — never an
#: error.
_ATTRIB_CONSUMERS = 0

#: thread ident -> stack of currently-open span names on that thread.
#: Only populated while attribution is enabled.
_THREAD_SPANS: Dict[int, List[str]] = {}


def enable_span_attribution() -> None:
    """Start registering open span names per thread (profiler support)."""
    global _ATTRIB_CONSUMERS
    _ATTRIB_CONSUMERS += 1


def disable_span_attribution() -> None:
    """Undo one :func:`enable_span_attribution`; clears state at zero."""
    global _ATTRIB_CONSUMERS
    _ATTRIB_CONSUMERS = max(0, _ATTRIB_CONSUMERS - 1)
    if _ATTRIB_CONSUMERS == 0:
        _THREAD_SPANS.clear()


def span_attribution_enabled() -> bool:
    return _ATTRIB_CONSUMERS > 0


def thread_span_names() -> Dict[int, str]:
    """Snapshot of thread ident -> innermost open span name.

    Taken by the profiler's sampling thread; races with concurrent
    span entry/exit are benign (a sample lands on one side of the
    boundary or the other).
    """
    snapshot: Dict[int, str] = {}
    for ident, stack in list(_THREAD_SPANS.items()):
        tail = stack[-1:]  # atomic slice: never IndexErrors on a pop race
        if tail:
            snapshot[ident] = tail[0]
    return snapshot


def _attrib_push(name: str) -> int:
    ident = threading.get_ident()
    stack = _THREAD_SPANS.get(ident)
    if stack is None:
        stack = _THREAD_SPANS[ident] = []
    stack.append(name)
    return ident


def _attrib_pop(ident: int, name: str) -> None:
    stack = _THREAD_SPANS.get(ident)
    if stack and stack[-1] == name:
        stack.pop()
        if not stack:
            _THREAD_SPANS.pop(ident, None)


class _AttribSpan:
    """Name-only span used when a profiler runs without a tracer.

    Registers the span name for per-thread attribution but records no
    timing and builds no tree — the cheapest object that still lets
    the sampler say *which* span a sample landed in.
    """

    __slots__ = ("name", "payload", "_ident")

    def __init__(self, name: str, payload: Dict[str, Any]) -> None:
        self.name = name
        self.payload = payload
        self._ident = 0

    def __enter__(self) -> "_AttribSpan":
        self._ident = _attrib_push(self.name)
        return self

    def __exit__(self, *exc: object) -> bool:
        _attrib_pop(self._ident, self.name)
        return False

    def note(self, **payload: Any) -> None:
        self.payload.update(payload)


class _OpenSpan:
    """Context manager driving one Span's lifecycle inside a Tracer."""

    __slots__ = ("tracer", "span", "_attrib_ident")

    def __init__(self, tracer: "Tracer", span_obj: Span) -> None:
        self.tracer = tracer
        self.span = span_obj
        self._attrib_ident = 0

    def __enter__(self) -> Span:
        tracer, span_obj = self.tracer, self.span
        parent = tracer._stack[-1] if tracer._stack else None
        span_obj.parent_id = parent.span_id if parent else None
        if parent is not None:
            parent.children.append(span_obj)
        else:
            tracer.roots.append(span_obj)
        tracer._stack.append(span_obj)
        if _ATTRIB_CONSUMERS:
            self._attrib_ident = _attrib_push(span_obj.name)
        span_obj.start_wall = time.time()
        span_obj._rss0 = _maxrss_kb()
        span_obj._cpu0 = time.process_time()
        span_obj._t0 = time.perf_counter()
        return span_obj

    def __exit__(self, *exc: object) -> bool:
        span_obj = self.span
        span_obj.wall_s = time.perf_counter() - span_obj._t0
        span_obj.cpu_s = time.process_time() - span_obj._cpu0
        span_obj.rss_delta_kb = max(0, _maxrss_kb() - span_obj._rss0)
        if self._attrib_ident:
            _attrib_pop(self._attrib_ident, span_obj.name)
        stack = self.tracer._stack
        if stack and stack[-1] is span_obj:
            stack.pop()
        return False


class Tracer:
    """Collects a forest of spans (usually a single root)."""

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 0

    # -- recording -------------------------------------------------------

    def span(self, name: str, **payload: Any) -> _OpenSpan:
        self._next_id += 1
        return _OpenSpan(self, Span(self._next_id, None, name, payload))

    @property
    def open_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def adopt(
        self,
        records: List[Dict[str, Any]],
        parent: Optional[Span] = None,
        **extra_payload: Any,
    ) -> List[Span]:
        """Graft serialized spans (from another process) into this tree.

        ``records`` is a list of :meth:`Span.to_dict` outputs forming a
        self-consistent forest.  Ids are rewritten into this tracer's
        sequence; spans whose parent is not in ``records`` attach under
        ``parent`` (default: the innermost open span, else a new root).
        ``extra_payload`` is merged into each adopted root span —
        e.g. ``worker_pid=...`` to mark where it ran.
        """
        if parent is None:
            parent = self.open_span
        by_old_id: Dict[int, Span] = {}
        adopted_roots: List[Span] = []
        for record in records:
            self._next_id += 1
            span_obj = Span(
                self._next_id, None, record["name"], dict(record["payload"])
            )
            span_obj.start_wall = record["start_wall"]
            span_obj.wall_s = record["wall_s"]
            span_obj.cpu_s = record["cpu_s"]
            span_obj.rss_delta_kb = record["rss_delta_kb"]
            by_old_id[record["id"]] = span_obj
        for record in records:
            span_obj = by_old_id[record["id"]]
            old_parent = record.get("parent")
            if old_parent in by_old_id:
                new_parent = by_old_id[old_parent]
                span_obj.parent_id = new_parent.span_id
                new_parent.children.append(span_obj)
            else:
                span_obj.payload.update(extra_payload)
                adopted_roots.append(span_obj)
                if parent is not None:
                    span_obj.parent_id = parent.span_id
                    parent.children.append(span_obj)
                else:
                    self.roots.append(span_obj)
        return adopted_roots

    # -- export ----------------------------------------------------------

    def span_records(self) -> List[Dict[str, Any]]:
        """All spans, depth-first, as JSON-ready dicts."""
        records: List[Dict[str, Any]] = []

        def visit(span_obj: Span) -> None:
            records.append(span_obj.to_dict())
            for child in span_obj.children:
                visit(child)

        for root in self.roots:
            visit(root)
        return records

    def write_jsonl(
        self,
        path: Union[str, Path],
        manifest: Optional[Dict[str, Any]] = None,
        metrics: Optional[List[Dict[str, Any]]] = None,
    ) -> Path:
        """Write manifest + spans (+ metrics) as one JSONL trace file."""
        path = Path(path)
        lines: List[str] = []
        if manifest is not None:
            lines.append(json.dumps({"type": "manifest", **manifest}))
        for record in self.span_records():
            lines.append(json.dumps({"type": "span", **record}))
        for metric in metrics or []:
            lines.append(json.dumps({"type": "metric", **metric}))
        path.write_text("\n".join(lines) + "\n")
        return path


# -- module-level switch --------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    """The installed tracer, or None while tracing is disabled."""
    return _ACTIVE


def tracing_enabled() -> bool:
    return _ACTIVE is not None


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or with None, remove) the process-wide tracer."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


@contextmanager
def use_tracer(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Scoped :func:`set_tracer`; restores the previous tracer on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span(
    name: str, **payload: Any
) -> Union[_OpenSpan, _AttribSpan, _NullSpan]:
    """Open a span on the active tracer, or a shared no-op when disabled.

    The disabled path allocates no Span (nor any helper object): it
    returns the module's singleton null context manager, making
    instrumentation safe to leave in hot loops.  While a profiler has
    span attribution enabled but no tracer is installed, a minimal
    name-only span is returned instead so samples can still be joined
    to the innermost open span.
    """
    tracer = _ACTIVE
    if tracer is not None:
        return tracer.span(name, **payload)
    if _ATTRIB_CONSUMERS:
        return _AttribSpan(name, payload)
    return _NULL_SPAN
