"""Span-attributed sampling CPU profiler — ``repro.obs.prof``.

The paper characterizes *workloads* by where they spend machine
resources; this module applies the same treatment to the library
itself.  A daemon-thread sampler walks :func:`sys._current_frames` at
a configurable rate (default 99 Hz — the classic off-by-one from 100
that avoids lockstep with 10 ms schedulers), folds each thread's
Python stack into a ``module:function`` frame list, and aggregates
counts keyed by three coordinates:

* **thread role** — derived from the thread name (``main``, the
  serving ``http`` handlers, the engine ``batcher`` worker, ...), so
  a serving profile separates request handling from kernel work;
* **innermost open span** — joined live from
  :mod:`repro.obs.trace`'s per-thread attribution stacks, so profiles
  slice by the same names the tracer exports (``mtree.fit``,
  ``serve.batch``, ``experiment.E7``, pipeline stages);
* **the folded stack itself** — root-first, flamegraph.pl's
  collapsed-stack grammar (``frame;frame;frame count``).

Sampling is wall-clock; samples whose leaf frame is a known blocking
call (lock waits, socket accept/select, ``time.sleep``) are counted
separately as *idle* and excluded from the CPU profile by default, so
a mostly-parked serving process does not drown the flame graph in
``wait`` frames.

Overhead discipline matches the tracer: **zero when not started** (no
thread, no allocation — importing this module does nothing), and the
sampler's own cost is measured per pass and exported through the
metrics registry (``obs.prof.sample_cost_s``) so a profile always
carries the evidence of what collecting it cost.  The measured
serving cost at 99 Hz is guarded at <= 5% of batch-64 throughput by
``benchmarks/conftest.py``.

Three renderers sit on top of a captured :class:`Profile`:
:meth:`Profile.folded` (flamegraph.pl-compatible collapsed output),
:func:`render_profile_table` (ASCII top-N self/cumulative, the
``repro profile-summary`` view) and :func:`render_flamegraph_html`
(a self-contained no-JS icicle flame graph, embedded in the serving
``/dashboard`` and served by ``GET /v1/profile/cpu?format=html``).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from html import escape as _escape_html
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.manifest import build_info
from repro.obs.metrics import counter, gauge, histogram
from repro.obs.trace import (
    disable_span_attribution,
    enable_span_attribution,
    thread_span_names,
)

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "Profile",
    "SamplingProfiler",
    "render_profile_table",
    "render_flamegraph_html",
    "flamegraph_fragment",
    "load_profile",
]

PROFILE_SCHEMA_VERSION = "repro-profile-v1"

DEFAULT_HZ = 99
MAX_HZ = 500
MAX_STACK_DEPTH = 128

#: Span label for samples taken while no span was open on the thread.
UNATTRIBUTED = "unattributed"

_SAMPLES = counter("obs.prof.samples")
_STACKS = counter("obs.prof.stacks")
_IDLE_STACKS = counter("obs.prof.idle_stacks")
_ERRORS = counter("obs.prof.errors")
_RUNNING = gauge("obs.prof.running")
_HZ = gauge("obs.prof.hz")
_SAMPLE_COST = histogram("obs.prof.sample_cost_s")

#: (module prefix, function name) pairs whose presence as the *leaf*
#: frame marks a sample as blocked rather than burning CPU.  Coarse on
#: purpose: the goal is to keep parked server threads out of the CPU
#: flame graph, not to be a scheduler.  A bias this table cannot fix:
#: a thread blocked inside a *C-implemented* call (``time.sleep``,
#: ``queue.SimpleQueue.get``, ``lock.acquire``) shows its Python
#: *caller* as the leaf, indistinguishable from that caller burning
#: CPU — hence the entries below for known pure-wait callers of C
#: blocking primitives (see docs/OBSERVABILITY.md, "sampling bias").
_IDLE_LEAVES = {
    ("threading", "wait"),
    ("threading", "_wait_for_tstate_lock"),
    ("selectors", "select"),
    ("socket", "accept"),
    # SocketIO.readinto: blocked in C recv_into waiting for bytes.
    ("socket", "readinto"),
    ("socketserver", "serve_forever"),
    ("time", "sleep"),
    ("queue", "get"),
    ("subprocess", "_try_wait"),
    ("multiprocessing.connection", "poll"),
    ("concurrent.futures._base", "result"),
    # The batching worker parks in C-level SimpleQueue.get between
    # batches, leaving its loop body as the visible leaf.
    ("repro.serve.engine", "_run"),
}

#: Thread-name prefixes mapped to stable role labels; anything else
#: reports as ``other`` so role cardinality stays bounded.
_ROLE_PREFIXES = (
    ("MainThread", "main"),
    ("repro-serve-http", "http"),
    ("repro-serve-batcher", "engine"),
    ("repro-pipeline", "pipeline"),
    ("repro-prof", "profiler"),
    ("Thread-", "http"),  # ThreadingHTTPServer per-connection handlers
)


def _thread_role(name: str) -> str:
    for prefix, role in _ROLE_PREFIXES:
        if name.startswith(prefix):
            return role
    return "other"


def _frame_label(frame) -> str:
    """One folded-stack frame: ``module:function``, grammar-safe.

    flamegraph.pl's collapsed format reserves space (the count
    separator) and semicolon (the frame separator); both are replaced
    defensively, though real module/function names contain neither.
    """
    module = frame.f_globals.get("__name__", "?")
    label = f"{module}:{frame.f_code.co_name}"
    if " " in label or ";" in label:
        label = label.replace(" ", "_").replace(";", "_")
    return label


def _walk_stack(frame) -> List[str]:
    """Root-first frame labels for one thread, depth-capped."""
    labels: List[str] = []
    depth = 0
    while frame is not None and depth < MAX_STACK_DEPTH:
        labels.append(_frame_label(frame))
        frame = frame.f_back
        depth += 1
    labels.reverse()
    return labels


def _is_idle(frame) -> bool:
    module = frame.f_globals.get("__name__", "")
    name = frame.f_code.co_name
    for idle_module, idle_name in _IDLE_LEAVES:
        if name == idle_name and (
            module == idle_module or module.startswith(idle_module + ".")
        ):
            return True
    return False


class Profile:
    """One captured profile: aggregated folded stacks plus metadata.

    ``stacks`` maps ``(role, span, frames_tuple)`` to sample counts;
    ``idle`` maps the same key shape for samples classified as
    blocked.  ``samples`` counts sampler *passes* (ticks), while the
    per-thread stack counts can exceed it on multi-threaded processes
    — every running thread contributes one stack per pass.
    """

    def __init__(self, hz: int) -> None:
        self.hz = hz
        self.duration_s = 0.0
        self.samples = 0
        self.sample_cost_s = 0.0
        self.started_unix = time.time()
        self.stacks: Dict[Tuple[str, str, Tuple[str, ...]], int] = {}
        self.idle: Dict[Tuple[str, str, Tuple[str, ...]], int] = {}

    # -- aggregate views --------------------------------------------------

    @property
    def busy_count(self) -> int:
        return sum(self.stacks.values())

    @property
    def idle_count(self) -> int:
        return sum(self.idle.values())

    def by_span(self, include_idle: bool = False) -> Dict[str, int]:
        """Sample counts grouped by innermost-span name, largest first."""
        totals: Dict[str, int] = {}
        sources = [self.stacks] + ([self.idle] if include_idle else [])
        for source in sources:
            for (_, span_name, _), count in source.items():
                totals[span_name] = totals.get(span_name, 0) + count
        return dict(
            sorted(totals.items(), key=lambda item: (-item[1], item[0]))
        )

    def by_role(self, include_idle: bool = False) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        sources = [self.stacks] + ([self.idle] if include_idle else [])
        for source in sources:
            for (role, _, _), count in source.items():
                totals[role] = totals.get(role, 0) + count
        return dict(
            sorted(totals.items(), key=lambda item: (-item[1], item[0]))
        )

    def attributed_fraction(self) -> float:
        """Share of busy samples carrying a real span name (0 when empty)."""
        busy = self.busy_count
        if not busy:
            return 0.0
        attributed = sum(
            count
            for (_, span_name, _), count in self.stacks.items()
            if span_name != UNATTRIBUTED
        )
        return attributed / busy

    # -- renderers --------------------------------------------------------

    def folded(self, include_idle: bool = False) -> str:
        """flamegraph.pl collapsed-stack output.

        One line per distinct stack: semicolon-joined frames, one
        space, the sample count.  The stack is rooted at
        ``<role>;<span>`` so flame graphs group by thread role and
        span before code — exactly the slicing the tentpole asks for.
        Feed directly to ``flamegraph.pl`` or any compatible renderer.
        """
        merged: Dict[Tuple[str, str, Tuple[str, ...]], int] = dict(
            self.stacks
        )
        if include_idle:
            for key, count in self.idle.items():
                merged[key] = merged.get(key, 0) + count
        lines = []
        for (role, span_name, frames), count in sorted(merged.items()):
            stack = ";".join((role, f"span:{span_name}") + frames)
            lines.append(f"{stack} {count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def function_totals(
        self,
    ) -> List[Tuple[str, int, int]]:
        """(frame, self_count, cumulative_count) over busy stacks.

        Cumulative counts each stack once per frame even when the
        frame recurses within it.
        """
        self_counts: Dict[str, int] = {}
        cumulative: Dict[str, int] = {}
        for (_, _, frames), count in self.stacks.items():
            if not frames:
                continue
            leaf = frames[-1]
            self_counts[leaf] = self_counts.get(leaf, 0) + count
            for frame in set(frames):
                cumulative[frame] = cumulative.get(frame, 0) + count
        return sorted(
            (
                (frame, self_counts.get(frame, 0), cumulative[frame])
                for frame in cumulative
            ),
            key=lambda item: (-item[1], -item[2], item[0]),
        )

    # -- persistence ------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        def encode(source):
            return [
                {
                    "role": role,
                    "span": span_name,
                    "frames": list(frames),
                    "count": count,
                }
                for (role, span_name, frames), count in sorted(source.items())
            ]

        return {
            "schema": PROFILE_SCHEMA_VERSION,
            "hz": self.hz,
            "duration_s": self.duration_s,
            "samples": self.samples,
            "busy_stacks": self.busy_count,
            "idle_stacks": self.idle_count,
            "sample_cost_s": self.sample_cost_s,
            "attributed_fraction": self.attributed_fraction(),
            "started_unix": self.started_unix,
            "build": build_info(),
            "stacks": encode(self.stacks),
            "idle": encode(self.idle),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Profile":
        if payload.get("schema") != PROFILE_SCHEMA_VERSION:
            raise ValueError(
                f"not a {PROFILE_SCHEMA_VERSION} profile: "
                f"schema={payload.get('schema')!r}"
            )
        profile = cls(int(payload.get("hz", DEFAULT_HZ)))
        profile.duration_s = float(payload.get("duration_s", 0.0))
        profile.samples = int(payload.get("samples", 0))
        profile.sample_cost_s = float(payload.get("sample_cost_s", 0.0))
        profile.started_unix = float(
            payload.get("started_unix", profile.started_unix)
        )
        for target, field in ((profile.stacks, "stacks"), (profile.idle, "idle")):
            for record in payload.get(field, []):
                key = (
                    str(record["role"]),
                    str(record["span"]),
                    tuple(record["frames"]),
                )
                target[key] = target.get(key, 0) + int(record["count"])
        return profile

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        return path


def load_profile(path: Union[str, Path]) -> Profile:
    """Load a profile written by :meth:`Profile.save`."""
    return Profile.from_dict(json.loads(Path(path).read_text()))


class SamplingProfiler:
    """Daemon-thread wall-clock sampler over ``sys._current_frames``.

    ``start``/``stop`` are idempotent: starting a running profiler is
    a no-op returning self, stopping a stopped one returns the last
    captured profile (or an empty one).  Only the profiler's own
    thread is excluded from sampling.  The sampler enables span
    attribution in :mod:`repro.obs.trace` for its lifetime so
    instrumented code registers open span names even without a full
    tracer installed.
    """

    def __init__(self, hz: int = DEFAULT_HZ) -> None:
        if not 1 <= hz <= MAX_HZ:
            raise ValueError(f"hz must be in [1, {MAX_HZ}], got {hz}")
        self.hz = hz
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._profile = Profile(hz)
        self._started_at = 0.0

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        self._profile = Profile(self.hz)
        self._stop.clear()
        enable_span_attribution()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-prof-sampler", daemon=True
        )
        _RUNNING.set(1.0)
        _HZ.set(float(self.hz))
        self._thread.start()
        return self

    def stop(self) -> Profile:
        thread = self._thread
        if thread is None:
            return self._profile
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        disable_span_attribution()
        _RUNNING.set(0.0)
        self._profile.duration_s = time.perf_counter() - self._started_at
        return self._profile

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- the sampling loop ------------------------------------------------

    def _run(self) -> None:
        interval = 1.0 / self.hz
        profile = self._profile
        own_ident = threading.get_ident()
        next_tick = time.perf_counter() + interval
        while not self._stop.wait(
            max(0.0, next_tick - time.perf_counter())
        ):
            t0 = time.perf_counter()
            # A pass that fell behind resynchronizes rather than
            # bursting to catch up — burst samples would all see the
            # same stacks and bias the profile toward whatever caused
            # the stall.
            next_tick = max(next_tick + interval, t0 + 0.25 * interval)
            try:
                self._sample_once(profile, own_ident)
            except Exception:  # pragma: no cover - defensive
                _ERRORS.inc()
            cost = time.perf_counter() - t0
            profile.sample_cost_s += cost
            _SAMPLE_COST.observe(cost)

    @staticmethod
    def _sample_once(profile: Profile, own_ident: int) -> None:
        frames = sys._current_frames()
        try:
            names = {
                thread.ident: thread.name for thread in threading.enumerate()
            }
            spans = thread_span_names()
            profile.samples += 1
            _SAMPLES.inc()
            for ident, frame in frames.items():
                if ident == own_ident:
                    continue
                role = _thread_role(names.get(ident, "?"))
                span_name = spans.get(ident, UNATTRIBUTED)
                key = (role, span_name, tuple(_walk_stack(frame)))
                if _is_idle(frame):
                    profile.idle[key] = profile.idle.get(key, 0) + 1
                    _IDLE_STACKS.inc()
                else:
                    profile.stacks[key] = profile.stacks.get(key, 0) + 1
                    _STACKS.inc()
        finally:
            # Frames hold every local in every thread alive; drop the
            # mapping before doing anything else.
            del frames


# -- renderers -------------------------------------------------------------


def render_profile_table(profile: Profile, top: int = 20) -> str:
    """ASCII top-N self/cumulative table (``repro profile-summary``)."""
    busy = profile.busy_count
    lines = [
        f"profile: {profile.samples} passes at {profile.hz} Hz over "
        f"{profile.duration_s:.2f}s — {busy} busy stack samples, "
        f"{profile.idle_count} idle",
        f"span attribution: {profile.attributed_fraction() * 100:.1f}% "
        "of busy samples inside a named span",
        f"sampler self-cost: {profile.sample_cost_s * 1e3:.1f} ms total",
    ]
    spans = profile.by_span()
    if spans:
        lines.append("")
        lines.append("by span:")
        for span_name, count in list(spans.items())[:top]:
            share = 100.0 * count / busy if busy else 0.0
            lines.append(f"  {span_name:42s} {count:>8d}  {share:5.1f}%")
    totals = profile.function_totals()
    if totals:
        lines.append("")
        lines.append(
            f"  {'function':58s} {'self':>8s} {'self%':>6s} "
            f"{'cumul':>8s} {'cumul%':>6s}"
        )
        for frame, self_count, cumulative in totals[:top]:
            self_pct = 100.0 * self_count / busy if busy else 0.0
            cumulative_pct = 100.0 * cumulative / busy if busy else 0.0
            lines.append(
                f"  {frame:58s} {self_count:>8d} {self_pct:>5.1f}% "
                f"{cumulative:>8d} {cumulative_pct:>5.1f}%"
            )
    if not totals and not spans:
        lines.append("(no busy samples captured)")
    return "\n".join(lines)


class _FlameNode:
    __slots__ = ("name", "count", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.children: Dict[str, "_FlameNode"] = {}


def _flame_tree(profile: Profile) -> _FlameNode:
    root = _FlameNode("all")
    for (role, span_name, frames), count in profile.stacks.items():
        root.count += count
        node = root
        for label in (role, f"span:{span_name}") + frames:
            child = node.children.get(label)
            if child is None:
                child = node.children[label] = _FlameNode(label)
            child.count += count
            node = child
    return root


#: Warm flame-graph palette cycled by depth; inline so the page stays
#: self-contained.
_FLAME_COLORS = ("#c35b4e", "#d98445", "#ddb052", "#b0a160", "#8f9a6d")


def _render_flame_node(
    node: _FlameNode, total: int, depth: int, parts: List[str]
) -> None:
    for child in sorted(
        node.children.values(), key=lambda n: (-n.count, n.name)
    ):
        width = 100.0 * child.count / node.count if node.count else 0.0
        share = 100.0 * child.count / total if total else 0.0
        color = _FLAME_COLORS[depth % len(_FLAME_COLORS)]
        label = _escape_html(child.name)
        parts.append(
            f'<div class="fnode" style="width:{width:.4f}%">'
            f'<div class="fbox" style="background:{color}" '
            f'title="{label} — {child.count} samples ({share:.1f}%)">'
            f"{label}</div>"
        )
        if child.children:
            parts.append('<div class="frow">')
            _render_flame_node(child, total, depth + 1, parts)
            parts.append("</div>")
        parts.append("</div>")


def flamegraph_fragment(profile: Profile) -> str:
    """The flame graph as an embeddable ``<div>`` (used by /dashboard).

    An *icicle* layout (root on top) built from nested flexbox rows —
    no JavaScript, no external assets; hover shows exact counts via
    ``title`` tooltips.
    """
    total = profile.busy_count
    if total == 0:
        return '<p class="muted">no busy samples captured</p>'
    root = _flame_tree(profile)
    parts = [
        "<style>"
        ".flame { font: 10px monospace; }"
        ".frow { display: flex; width: 100%; }"
        ".fnode { overflow: hidden; }"
        ".fbox { color: #15181c; border: 1px solid #15181c; height: 14px;"
        " overflow: hidden; white-space: nowrap; text-overflow: ellipsis;"
        " padding: 0 2px; box-sizing: border-box; }"
        "</style>",
        '<div class="flame"><div class="frow">',
    ]
    _render_flame_node(root, total, 0, parts)
    parts.append("</div></div>")
    return "".join(parts)


def render_flamegraph_html(profile: Profile, title: str = "CPU profile") -> str:
    """A complete self-contained flame-graph page (``format=html``)."""
    spans = profile.by_span()
    busy = profile.busy_count
    span_rows = "".join(
        f"<tr><td>{_escape_html(name)}</td><td>{count}</td>"
        f"<td>{100.0 * count / busy:.1f}%</td></tr>"
        for name, count in list(spans.items())[:12]
        if busy
    )
    return (
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">"
        f"<title>{_escape_html(title)}</title>"
        "<style>body { font-family: monospace; background: #101418;"
        " color: #d8dee9; margin: 1.5em; }"
        " h1 { font-size: 1.1em; } table { border-collapse: collapse; }"
        " td, th { border: 1px solid #3b4252; padding: 2px 8px; }"
        "</style></head><body>"
        f"<h1>{_escape_html(title)}</h1>"
        f"<p>{profile.samples} passes at {profile.hz} Hz over "
        f"{profile.duration_s:.2f}s &middot; {busy} busy / "
        f"{profile.idle_count} idle stack samples &middot; "
        f"{profile.attributed_fraction() * 100:.1f}% span-attributed</p>"
        + (
            "<table><tr><th>span</th><th>samples</th><th>share</th></tr>"
            + span_rows
            + "</table>"
            if span_rows
            else ""
        )
        + flamegraph_fragment(profile)
        + "</body></html>"
    )
