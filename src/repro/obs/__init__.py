"""repro.obs — observability: tracing, metrics, and run provenance.

Cooperating pieces (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.trace` — a hierarchical span tracer with a
  zero-overhead disabled mode; instrumentation sites call
  :func:`repro.obs.span` and pay a global load + None check until a
  tracer is installed.
* :mod:`repro.obs.metrics` — an always-on process-wide registry of
  counters, gauges, log2 histograms and quantile summaries
  (``repro.obs.counter(...)`` etc.).
* :mod:`repro.obs.manifest` — run manifests (seed, config, package
  versions, platform, build provenance) with schema validation,
  written as the first line of every exported trace.
* :mod:`repro.obs.telemetry` — request-scoped traces for the serving
  stack: ``X-Repro-Trace`` propagation, cross-thread stage timing and
  span-tree reconstruction from the event log.
* :mod:`repro.obs.events` — the bounded, size-rotated JSONL event log
  those traces are shipped to.
* :mod:`repro.obs.slo` — latency/availability SLO tracking with error
  budgets and burn-rate gauges.
* :mod:`repro.obs.prof` — a span-attributed sampling CPU profiler
  (daemon-thread ``sys._current_frames()`` walker, folded-stack
  aggregation, flame-graph renderers) with zero overhead when not
  started.
* :mod:`repro.obs.ledger` — the append-only benchmark performance
  ledger (``benchmarks/LEDGER.jsonl``) and its noise-aware
  regression checker.

Typical CLI-driven use is ``repro E7 --trace trace.jsonl`` followed by
``repro trace-summary trace.jsonl``; programmatic use::

    from repro import obs

    tracer = obs.Tracer()
    with obs.use_tracer(tracer):
        with obs.span("my.stage", items=3):
            ...
    tracer.write_jsonl("trace.jsonl",
                       manifest=obs.build_manifest(config),
                       metrics=obs.get_registry().as_records())
"""

from repro.obs.events import EventLog, read_events
from repro.obs.ledger import (
    CheckConfig,
    Finding,
    PerfLedger,
    check_ledger,
    headline_metrics,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_info,
    build_manifest,
    manifest_errors,
    validate_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Summary,
    counter,
    counter_delta,
    gauge,
    get_registry,
    histogram,
    summary,
)
from repro.obs.prof import (
    Profile,
    SamplingProfiler,
    load_profile,
    render_flamegraph_html,
    render_profile_table,
)
from repro.obs.slo import SloConfig, SloTracker
from repro.obs.summary import (
    escape_label_value,
    format_metrics_table,
    read_trace,
    render_prometheus,
    render_trace_summary,
)
from repro.obs.telemetry import (
    TRACE_HEADER,
    RequestTrace,
    TraceView,
    load_trace,
    new_trace_id,
    normalize_trace_id,
    reconstruct_traces,
)
from repro.obs.trace import (
    Span,
    Tracer,
    current_tracer,
    set_tracer,
    span,
    tracing_enabled,
    use_tracer,
)

__all__ = [
    "MANIFEST_SCHEMA",
    "build_info",
    "build_manifest",
    "manifest_errors",
    "validate_manifest",
    "Counter",
    "Gauge",
    "Histogram",
    "Summary",
    "MetricsRegistry",
    "counter",
    "counter_delta",
    "gauge",
    "get_registry",
    "histogram",
    "summary",
    "EventLog",
    "read_events",
    "CheckConfig",
    "Finding",
    "PerfLedger",
    "check_ledger",
    "headline_metrics",
    "Profile",
    "SamplingProfiler",
    "load_profile",
    "render_flamegraph_html",
    "render_profile_table",
    "SloConfig",
    "SloTracker",
    "escape_label_value",
    "format_metrics_table",
    "read_trace",
    "render_prometheus",
    "render_trace_summary",
    "TRACE_HEADER",
    "RequestTrace",
    "TraceView",
    "load_trace",
    "new_trace_id",
    "normalize_trace_id",
    "reconstruct_traces",
    "Span",
    "Tracer",
    "current_tracer",
    "set_tracer",
    "span",
    "tracing_enabled",
    "use_tracer",
]
