"""repro.obs — observability: tracing, metrics, and run provenance.

Three cooperating pieces (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.trace` — a hierarchical span tracer with a
  zero-overhead disabled mode; instrumentation sites call
  :func:`repro.obs.span` and pay a global load + None check until a
  tracer is installed.
* :mod:`repro.obs.metrics` — an always-on process-wide registry of
  counters, gauges and histograms (``repro.obs.counter(...)`` etc.).
* :mod:`repro.obs.manifest` — run manifests (seed, config, package
  versions, platform) with schema validation, written as the first
  line of every exported trace.

Typical CLI-driven use is ``repro E7 --trace trace.jsonl`` followed by
``repro trace-summary trace.jsonl``; programmatic use::

    from repro import obs

    tracer = obs.Tracer()
    with obs.use_tracer(tracer):
        with obs.span("my.stage", items=3):
            ...
    tracer.write_jsonl("trace.jsonl",
                       manifest=obs.build_manifest(config),
                       metrics=obs.get_registry().as_records())
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    manifest_errors,
    validate_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    counter_delta,
    gauge,
    get_registry,
    histogram,
)
from repro.obs.summary import (
    format_metrics_table,
    read_trace,
    render_prometheus,
    render_trace_summary,
)
from repro.obs.trace import (
    Span,
    Tracer,
    current_tracer,
    set_tracer,
    span,
    tracing_enabled,
    use_tracer,
)

__all__ = [
    "MANIFEST_SCHEMA",
    "build_manifest",
    "manifest_errors",
    "validate_manifest",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "counter_delta",
    "gauge",
    "get_registry",
    "histogram",
    "format_metrics_table",
    "read_trace",
    "render_prometheus",
    "render_trace_summary",
    "Span",
    "Tracer",
    "current_tracer",
    "set_tracer",
    "span",
    "tracing_enabled",
    "use_tracer",
]
