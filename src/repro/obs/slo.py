"""Serving SLOs: latency and availability error budgets with burn rates.

An SLO here is the standard two-part statement: a *latency objective*
("99% of requests answer within 100 ms") and an *availability
objective* ("99.9% of requests do not 5xx").  The tracker turns each
request outcome into budget arithmetic:

* **error budget** — over the tracker's lifetime, the objective allows
  a ``1 - target`` fraction of bad events; the budget *consumed* is
  the observed bad fraction over that allowance (1.0 = budget gone).
* **burn rate** — the same ratio over only the most recent
  ``burn_window`` requests.  1.0 means errors arrive exactly at the
  sustainable rate; 10 means the recent traffic burns budget ten times
  too fast — the standard paging signal.

Every :meth:`SloTracker.record` updates gauges in the process-wide
metrics registry (``serve.slo.latency.burn_rate`` etc.), so ``/metrics``
scrapes and the ``/dashboard`` page read the same numbers.  The
tracker itself is a few counters and two bounded deques — cheap enough
to sit on the request path unconditionally.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict

from repro.obs.metrics import gauge

__all__ = ["SloConfig", "SloTracker"]


@dataclass(frozen=True)
class SloConfig:
    """Targets for one serving process.

    ``latency_threshold_s`` is the "fast enough" line; ``latency_target``
    the fraction of requests that must beat it.  ``availability_target``
    is the fraction that must not fail server-side (5xx).
    """

    latency_threshold_s: float = 0.1
    latency_target: float = 0.99
    availability_target: float = 0.999
    burn_window: int = 512

    def __post_init__(self) -> None:
        if self.latency_threshold_s <= 0:
            raise ValueError(
                f"latency_threshold_s must be positive, "
                f"got {self.latency_threshold_s}"
            )
        for name in ("latency_target", "availability_target"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ValueError(f"{name} must be in (0, 1), got {value}")
        if self.burn_window < 1:
            raise ValueError(
                f"burn_window must be >= 1, got {self.burn_window}"
            )


class _Objective:
    """Lifetime + windowed good/bad accounting for one objective."""

    __slots__ = (
        "name",
        "target",
        "total",
        "bad",
        "recent",
        "_g_remaining",
        "_g_burn",
    )

    def __init__(self, name: str, target: float, window: int) -> None:
        self.name = name
        self.target = target
        self.total = 0
        self.bad = 0
        self.recent: Deque[bool] = deque(maxlen=window)
        self._g_remaining = gauge(f"serve.slo.{name}.budget_remaining")
        self._g_burn = gauge(f"serve.slo.{name}.burn_rate")

    def record(self, good: bool) -> None:
        self.total += 1
        if not good:
            self.bad += 1
        self.recent.append(good)
        self._g_remaining.set(self._budget_remaining())
        self._g_burn.set(self._burn_rate())

    @property
    def allowance(self) -> float:
        return 1.0 - self.target

    def _bad_fraction(self) -> float:
        return self.bad / self.total if self.total else 0.0

    def _budget_remaining(self) -> float:
        """Fraction of the error budget still unspent (can go negative)."""
        return 1.0 - self._bad_fraction() / self.allowance

    def _burn_rate(self) -> float:
        if not self.recent:
            return 0.0
        recent_bad = self.recent.count(False) / len(self.recent)
        return recent_bad / self.allowance

    def report(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "events": self.total,
            "bad_events": self.bad,
            "bad_fraction": self._bad_fraction(),
            "budget_remaining": self._budget_remaining(),
            "burn_rate": self._burn_rate(),
            "burn_window": self.recent.maxlen,
        }


class SloTracker:
    """Feeds request outcomes into both objectives; thread-safe."""

    def __init__(self, config: SloConfig = SloConfig()) -> None:
        self.config = config
        self._lock = threading.Lock()
        self._latency = _Objective(
            "latency", config.latency_target, config.burn_window
        )
        self._availability = _Objective(
            "availability", config.availability_target, config.burn_window
        )

    def record(self, latency_s: float, status: int) -> None:
        """One finished request: its wall time and HTTP status.

        A request the server failed (5xx) counts against availability;
        only *successful* requests count toward the latency objective,
        so a fast error cannot buy back latency budget.
        """
        available = status < 500
        with self._lock:
            self._availability.record(available)
            if available:
                self._latency.record(
                    latency_s <= self.config.latency_threshold_s
                )

    def report(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "latency": {
                    "threshold_s": self.config.latency_threshold_s,
                    **self._latency.report(),
                },
                "availability": self._availability.report(),
            }
