"""Append-only performance ledger — ``repro.obs.ledger``.

The four ``benchmarks/run_*bench.py`` harnesses write point-in-time
``BENCH_*.json`` snapshots; this module turns their headline numbers
into a *time series*.  Every benchmark run appends one JSON line to
``benchmarks/LEDGER.jsonl``, stamped with a lightweight manifest (git
describe, platform, package versions) so any entry still answers
"what produced these numbers?" months later — the same provenance
discipline :mod:`repro.obs.manifest` applies to experiment traces,
applied to the benchmark stream.

On top of the stream, :func:`check_ledger` does *noise-aware*
regression detection, the way arXiv:2401.16690 treats SPEC result
streams as statistical series rather than single points:

* the baseline for a metric is the **median** of its historical
  values (each of which is already a best-of-N or paired-median
  figure from the harness, so single-run jitter is pre-suppressed);
* the tolerance band is ``max(k * 1.4826 * MAD, rel_floor * |median|,
  abs_floor)`` — the MAD term adapts to however noisy this metric has
  actually been on this box, the relative floor keeps near-constant
  histories from producing zero-width bands, and the absolute floor
  keeps already-tiny percentage metrics (paired overhead ratios that
  hover around 0%) from tripping on arithmetic dust;
* direction is inferred from the metric name: ``*_s``/``*_ms``/
  ``*_us``/``*_pct`` regress upward, ``*_per_s``/``*speedup*``
  regress downward — a value *better* than the band is reported as an
  improvement, never a failure.

``repro perf record|log|check`` are the CLI surface; the benchmarks
conftest runs :func:`check_ledger` as a session guard so a regression
fails the bench suite the same way a broken test would.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.obs.manifest import build_info
from repro.obs.metrics import counter

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "DEFAULT_LEDGER_PATH",
    "BENCH_SNAPSHOTS",
    "PerfLedger",
    "CheckConfig",
    "Finding",
    "headline_metrics",
    "check_ledger",
    "render_ledger_log",
    "render_findings",
]

LEDGER_SCHEMA_VERSION = "repro-ledger-v1"

#: Repo-relative home of the committed ledger.
DEFAULT_LEDGER_PATH = Path(__file__).resolve().parents[3] / "benchmarks" / "LEDGER.jsonl"

_APPENDS = counter("obs.ledger.appends")
_READ_ERRORS = counter("obs.ledger.read_errors")
_CHECKS = counter("obs.ledger.checks")
_REGRESSIONS = counter("obs.ledger.regressions")

#: bench name -> committed snapshot filename, for ``repro perf record``.
BENCH_SNAPSHOTS = {
    "microperf": "BENCH_microperf.json",
    "serve": "BENCH_serve.json",
    "drift": "BENCH_drift.json",
    "pipeline": "BENCH_pipeline.json",
    "loadbench": "BENCH_loadbench.json",
}


def _manifest_lite() -> Dict[str, Any]:
    info = build_info()
    return {
        "git": info.get("git"),
        "version": info.get("version"),
        "python": info.get("python"),
        "machine": platform.machine(),
        "system": platform.system(),
        "release": platform.release(),
    }


class PerfLedger:
    """One append-only JSONL file of benchmark headline metrics.

    Appends are atomic at the line level (single ``write`` of one
    ``\\n``-terminated line on a file opened in append mode); reads
    tolerate a truncated final line — the torn tail is skipped and
    counted on ``obs.ledger.read_errors``, matching the event log's
    crash-tolerance posture.
    """

    def __init__(self, path: Union[str, Path] = DEFAULT_LEDGER_PATH) -> None:
        self.path = Path(path)

    def append(
        self,
        bench: str,
        metrics: Dict[str, float],
        meta: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Append one entry; returns the record as written."""
        if not metrics:
            raise ValueError(f"refusing to append empty metrics for {bench!r}")
        now = time.time()
        record: Dict[str, Any] = {
            "schema": LEDGER_SCHEMA_VERSION,
            "unix": now,
            "iso": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime(now)),
            "bench": bench,
            "metrics": {k: float(v) for k, v in sorted(metrics.items())},
            "manifest": _manifest_lite(),
        }
        if meta:
            record["meta"] = meta
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        _APPENDS.inc()
        return record

    def entries(self, bench: Optional[str] = None) -> List[Dict[str, Any]]:
        """All parseable entries, oldest first, optionally one bench."""
        if not self.path.exists():
            return []
        out: List[Dict[str, Any]] = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                _READ_ERRORS.inc()
                continue
            if not isinstance(record, dict) or "bench" not in record:
                _READ_ERRORS.inc()
                continue
            if bench is None or record["bench"] == bench:
                out.append(record)
        return out

    def latest(self, bench: str) -> Optional[Dict[str, Any]]:
        entries = self.entries(bench)
        return entries[-1] if entries else None

    def benches(self) -> List[str]:
        seen: Dict[str, None] = {}
        for record in self.entries():
            seen.setdefault(str(record["bench"]), None)
        return list(seen)


# -- headline extraction ---------------------------------------------------


def _get(snapshot: Dict[str, Any], *path: str) -> Optional[float]:
    node: Any = snapshot
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    try:
        return float(node)
    except (TypeError, ValueError):
        return None


def headline_metrics(bench: str, snapshot: Dict[str, Any]) -> Dict[str, float]:
    """The ledger-worthy numbers of one ``BENCH_*.json`` snapshot.

    Shared by the benchmark runners (append as they write the
    snapshot) and ``repro perf record`` (derive from a committed
    snapshot), so both paths produce identical entries.
    """
    out: Dict[str, float] = {}

    def put(name: str, value: Optional[float]) -> None:
        if value is not None:
            out[name] = value

    if bench == "microperf":
        put("tree_fit_s", _get(snapshot, "results", "tree_fit", "best_s"))
        put(
            "suite_generation_s",
            _get(snapshot, "results", "suite_generation", "best_s"),
        )
        put(
            "predict_compiled_s",
            _get(snapshot, "results", "predict_compiled", "best_s"),
        )
        put(
            "predict_recursive_s",
            _get(snapshot, "results", "predict_recursive", "best_s"),
        )
        # {"64": {"speedup": ...}, ...}; older snapshots nest the
        # sweep inside "results" instead of beside it.
        results = snapshot.get("results")
        sweep = snapshot.get("compiled_sweep") or (
            results.get("compiled_sweep")
            if isinstance(results, dict)
            else None
        )
        for batch in ("64", "256"):
            speedup = _get(sweep or {}, batch, "speedup")
            if speedup is not None:
                out[f"compiled_speedup_b{batch}"] = float(speedup)
    elif bench == "serve":
        # Unit suffix last so metric_direction can judge it.
        put("p50_b64_ms", _get(snapshot, "results", "64", "p50_ms"))
        put("rows_per_s_b64", _get(snapshot, "results", "64", "rows_per_s"))
        put(
            "telemetry_overhead_pct",
            _get(snapshot, "telemetry_overhead", "overhead_pct"),
        )
        put(
            "profiler_overhead_pct",
            _get(snapshot, "profiler_overhead", "overhead_pct"),
        )
    elif bench == "drift":
        put(
            "monitor_per_record_us",
            _get(snapshot, "monitor_overhead", "per_record_us"),
        )
        put(
            "serving_overhead_pct",
            _get(snapshot, "serving_throughput", "overhead_pct"),
        )
    elif bench == "pipeline":
        put("loop_closure_wall_s", _get(snapshot, "loop_closure", "wall_s"))
        put(
            "serving_overhead_pct",
            _get(snapshot, "serving_throughput", "overhead_pct"),
        )
    elif bench == "loadbench":
        # The saturation curve keys points by worker count; headline
        # the single-process baseline, the widest point, and the
        # scaling ratio between them (a *_speedup, so higher-better).
        curve = snapshot.get("saturation") or {}
        counts = sorted(int(k) for k in curve)
        if counts:
            low, high = str(counts[0]), str(counts[-1])
            put(
                "rows_per_s_w1",
                _get(curve, low, "result", "achieved_rows_per_s"),
            )
            put(
                f"rows_per_s_w{high}",
                _get(curve, high, "result", "achieved_rows_per_s"),
            )
            put(
                "p99_closed_ms",
                _get(curve, low, "result", "latency_p99_ms"),
            )
            low_rate = _get(curve, low, "result", "achieved_rows_per_s")
            high_rate = _get(curve, high, "result", "achieved_rows_per_s")
            if low_rate and high_rate:
                put("cluster_speedup", float(high_rate) / float(low_rate))
        put(
            "open_loop_p99_ms",
            _get(snapshot, "open_loop", "latency_p99_ms"),
        )
    else:
        raise ValueError(f"unknown bench {bench!r}")
    return out


# -- regression checking ---------------------------------------------------

#: Name suffixes where smaller is better.
_LOWER_BETTER = ("_s", "_ms", "_us", "_pct")
#: Name fragments where larger is better.
_HIGHER_BETTER = ("_per_s", "speedup")


def metric_direction(name: str) -> str:
    """'lower' | 'higher' | 'none' — which way this metric regresses."""
    for fragment in _HIGHER_BETTER:
        if fragment in name:
            return "higher"
    for suffix in _LOWER_BETTER:
        if name.endswith(suffix):
            return "lower"
    return "none"


def _median(values: List[float]) -> float:
    ranked = sorted(values)
    mid = len(ranked) // 2
    if len(ranked) % 2:
        return ranked[mid]
    return 0.5 * (ranked[mid - 1] + ranked[mid])


def _mad(values: List[float], center: float) -> float:
    return _median([abs(v - center) for v in values])


@dataclass
class CheckConfig:
    """Tunables for noise-aware regression detection.

    Defaults are deliberately loose: on a shared/virtualized box the
    run-to-run spread of wall-clock benchmarks is 25-35%, so the
    relative floor sits at the top of that range and the MAD band
    widens further for metrics that have historically been noisier.
    """

    #: Entries (including the candidate) needed before judging.
    min_history: int = 3
    #: MAD multiplier; 4 sigma-equivalents once scaled by 1.4826.
    mad_k: float = 4.0
    #: Relative band floor as a fraction of |median|.
    min_rel: float = 0.35
    #: Absolute band floor for ``*_pct`` metrics, in points — paired
    #: overhead ratios legitimately wander a few points around zero.
    pct_floor: float = 3.0


@dataclass
class Finding:
    """One metric's verdict against its baseline band."""

    bench: str
    metric: str
    status: str  # "ok" | "regression" | "improvement" | "insufficient"
    value: float
    baseline: Optional[float] = None
    band: Optional[float] = None
    history: int = 0
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "bench": self.bench,
            "metric": self.metric,
            "status": self.status,
            "value": self.value,
            "baseline": self.baseline,
            "band": self.band,
            "history": self.history,
            "detail": self.detail,
        }


def _check_metric(
    bench: str,
    name: str,
    history: List[float],
    candidate: float,
    config: CheckConfig,
) -> Finding:
    direction = metric_direction(name)
    if direction == "none":
        return Finding(
            bench, name, "ok", candidate, detail="no direction; not judged"
        )
    if len(history) + 1 < config.min_history:
        return Finding(
            bench,
            name,
            "insufficient",
            candidate,
            history=len(history) + 1,
            detail=(
                f"need {config.min_history} entries, have {len(history) + 1}"
            ),
        )
    baseline = _median(history)
    band = max(
        config.mad_k * 1.4826 * _mad(history, baseline),
        config.min_rel * abs(baseline),
    )
    if name.endswith("_pct"):
        band = max(band, config.pct_floor)
    delta = candidate - baseline
    regressed = delta > band if direction == "lower" else delta < -band
    improved = delta < -band if direction == "lower" else delta > band
    status = "regression" if regressed else ("improvement" if improved else "ok")
    detail = (
        f"{candidate:.6g} vs baseline {baseline:.6g} "
        f"(band +/-{band:.3g}, n={len(history)}, {direction} is better)"
    )
    return Finding(
        bench,
        name,
        status,
        candidate,
        baseline=baseline,
        band=band,
        history=len(history) + 1,
        detail=detail,
    )


def check_ledger(
    path: Union[str, Path] = DEFAULT_LEDGER_PATH,
    config: Optional[CheckConfig] = None,
    bench: Optional[str] = None,
) -> List[Finding]:
    """Judge the newest entry of each bench against its history.

    The newest entry is the candidate; every older entry of the same
    bench contributes to the baseline.  Returns one finding per
    (bench, metric); callers decide what exit status "regression"
    earns — ``repro perf check`` and the benchmarks session guard
    both fail on any.
    """
    config = config or CheckConfig()
    ledger = PerfLedger(path)
    findings: List[Finding] = []
    _CHECKS.inc()
    benches = [bench] if bench else ledger.benches()
    for bench_name in benches:
        entries = ledger.entries(bench_name)
        if not entries:
            continue
        candidate = entries[-1]
        older = entries[:-1]
        for name, value in candidate.get("metrics", {}).items():
            history = [
                float(entry["metrics"][name])
                for entry in older
                if name in entry.get("metrics", {})
            ]
            finding = _check_metric(
                bench_name, name, history, float(value), config
            )
            findings.append(finding)
            if finding.status == "regression":
                _REGRESSIONS.inc()
    return findings


# -- rendering -------------------------------------------------------------


def render_ledger_log(
    ledger: PerfLedger, bench: Optional[str] = None, last: int = 10
) -> str:
    """Human view of the tail of the ledger (``repro perf log``)."""
    entries = ledger.entries(bench)
    if not entries:
        return f"ledger {ledger.path}: empty"
    lines = [f"ledger {ledger.path}: {len(entries)} entries"]
    for record in entries[-last:]:
        manifest = record.get("manifest", {})
        metrics = record.get("metrics", {})
        rendered = ", ".join(
            f"{name}={value:.6g}" for name, value in metrics.items()
        )
        lines.append(
            f"  {record.get('iso', '?'):25s} {record.get('bench', '?'):10s}"
            f" [{manifest.get('git') or 'no-git'}] {rendered}"
        )
    return "\n".join(lines)


_STATUS_MARKS = {
    "ok": " ok ",
    "improvement": "BETTER",
    "regression": "REGRESSED",
    "insufficient": "n/a",
}


def render_findings(findings: Iterable[Finding]) -> str:
    """Human view of a check pass (``repro perf check``)."""
    findings = list(findings)
    if not findings:
        return "perf check: ledger empty — nothing to judge"
    lines = []
    regressions = 0
    for finding in findings:
        if finding.status == "regression":
            regressions += 1
        mark = _STATUS_MARKS.get(finding.status, finding.status)
        lines.append(
            f"  [{mark:>9s}] {finding.bench}.{finding.metric}: "
            f"{finding.detail or finding.value}"
        )
    verdict = (
        f"perf check: {regressions} regression(s) across "
        f"{len(findings)} metric(s)"
        if regressions
        else f"perf check: ok ({len(findings)} metric(s) within bands)"
    )
    return verdict + "\n" + "\n".join(lines)
