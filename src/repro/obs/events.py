"""Bounded structured JSONL event log with size-based rotation.

The serving telemetry layer (:mod:`repro.obs.telemetry`) emits one
small JSON record per HTTP request plus one per engine flush; left
unchecked, a busy server would grow that file forever.  An
:class:`EventLog` appends newline-delimited JSON and rotates when the
active file would exceed ``max_bytes``: ``events.jsonl`` becomes
``events.jsonl.1``, ``.1`` becomes ``.2`` and so on up to ``backups``
generations, so total disk use is bounded at roughly
``max_bytes * (backups + 1)``.

Writes are serialized under one lock, so handler threads and the
batching worker can share a log, and flushed in small batches — every
16 records or 250 ms of wall time, whichever comes first — because a
per-record ``flush`` costs 5-10 us on the request hot path while a
batched one amortizes to well under 1 us.  ``tail -f`` sees records
within a quarter second regardless of traffic: a write that leaves
records pending arms a one-shot daemon timer, so the 250 ms bound
holds even when the server goes quiescent right after (previously a
sub-batch tail sat unflushed until the *next* write arrived).
Callers that need exact durability *now* (tests, shutdown) use
:meth:`EventLog.flush` or :meth:`EventLog.close`.  Serialization reuses one
:class:`json.JSONEncoder` (building a fresh encoder per record is
measurably slower) and happens outside the lock.  Every record gains
a ``unix`` timestamp if the caller did not supply one.  Serialization
failures are counted (``obs.events.serialize_errors``), never raised:
losing one telemetry record must not take a request down with it.

The lock serializes *threads*; it cannot serialize *processes*.  Two
processes appending to one path would interleave buffered writes and
race the rotation renames, corrupting records — so multi-process use
(the :mod:`repro.cluster` workers) passes ``per_pid=True``, which
suffixes the filename with the writing PID (``events.jsonl`` becomes
``events.pid-4242.jsonl``) so every process owns its file exclusively.
As a safety net, every append re-checks ``os.getpid()``: a process
that forked with an open log silently re-homes onto its own per-PID
file instead of scribbling over the parent's.  :func:`read_events`
merges the per-PID siblings of a base path (plus all their rotation
backups) into one timeline ordered by the ``unix`` stamp, so readers
never need to know how many processes wrote.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.obs.metrics import counter

__all__ = ["EventLog", "read_events", "EVENTS_SCHEMA_VERSION"]

EVENTS_SCHEMA_VERSION = "repro-events-v1"

_WRITTEN = counter("obs.events.written")
_ROTATIONS = counter("obs.events.rotations")
_SERIALIZE_ERRORS = counter("obs.events.serialize_errors")

DEFAULT_MAX_BYTES = 8 * 1024 * 1024
DEFAULT_BACKUPS = 2

#: Flush after this many unflushed records ...
_FLUSH_EVERY = 16
#: ... or once this much wall time has passed since the last flush.
_FLUSH_INTERVAL_S = 0.25

#: One shared encoder: ``json.dumps(..., separators=...)`` constructs a
#: new encoder per call, which costs ~20% of the serialization budget
#: on the request hot path.
_ENCODER = json.JSONEncoder(separators=(",", ":"), check_circular=False)


def _pid_path(base: Path, pid: int) -> Path:
    """The per-PID sibling of ``base``: events.jsonl -> events.pid-N.jsonl."""
    return base.with_name(f"{base.stem}.pid-{pid}{base.suffix}")


class EventLog:
    """Append-only JSONL sink with size-based rotation."""

    def __init__(
        self,
        path: Union[str, Path],
        max_bytes: int = DEFAULT_MAX_BYTES,
        backups: int = DEFAULT_BACKUPS,
        clock=None,
        per_pid: bool = False,
    ) -> None:
        if max_bytes < 1024:
            raise ValueError(f"max_bytes must be >= 1024, got {max_bytes}")
        if backups < 0:
            raise ValueError(f"backups must be >= 0, got {backups}")
        self.base_path = Path(path)
        self.per_pid = per_pid
        self._pid = os.getpid()
        self.path = (
            _pid_path(self.base_path, self._pid)
            if per_pid
            else self.base_path
        )
        self.max_bytes = max_bytes
        self.backups = backups
        self._clock = clock
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._bytes = self.path.stat().st_size
        self.written = 0
        self.rotations = 0
        self._pending = 0
        self._last_flush = time.monotonic()
        self._timer: Any = None

    # -- writing ---------------------------------------------------------

    def _rehome_after_fork(self) -> None:
        """Move a forked child onto its own per-PID file.

        Without this, a child inheriting an open log would append into
        the parent's file — two processes sharing one file description,
        interleaving buffered writes and racing rotations.  Closing the
        inherited handle flushes at most one sub-batch of whole lines
        the parent also holds (benign duplicates in the old file, never
        torn records); everything after lands in this PID's own file.
        """
        with self._lock:
            if os.getpid() == self._pid:
                return  # another thread already re-homed us
            self._pid = os.getpid()
            self.per_pid = True
            self.path = _pid_path(self.base_path, self._pid)
            if self._timer is not None:
                # The timer thread did not survive the fork; drop it.
                self._timer.cancel()
                self._timer = None
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
            self._handle = open(self.path, "a", encoding="utf-8")
            self._bytes = self.path.stat().st_size
            self._pending = 0
            self._last_flush = time.monotonic()

    def append(self, record: Dict[str, Any]) -> None:
        """Serialize one record and append it (rotating first if needed)."""
        if os.getpid() != self._pid:
            self._rehome_after_fork()
        if "unix" not in record:
            clock = self._clock
            record = {**record, "unix": (clock or time.time)()}
        try:
            line = _ENCODER.encode(record) + "\n"
        except (TypeError, ValueError):
            _SERIALIZE_ERRORS.inc()
            return
        encoded_length = len(line.encode("utf-8"))
        with self._lock:
            if self._handle is None:
                return  # closed; drop silently (shutdown race)
            if self._bytes and self._bytes + encoded_length > self.max_bytes:
                self._rotate_locked()
            self._handle.write(line)
            self._bytes += encoded_length
            self.written += 1
            self._pending += 1
            now = time.monotonic()
            if (
                self._pending >= _FLUSH_EVERY
                or now - self._last_flush >= _FLUSH_INTERVAL_S
            ):
                self._handle.flush()
                self._pending = 0
                self._last_flush = now
            elif self._timer is None:
                # Idle-flush backstop: without it, a tail below the
                # batch threshold stays buffered until the next write.
                self._timer = threading.Timer(
                    _FLUSH_INTERVAL_S, self._timer_flush
                )
                self._timer.daemon = True
                self._timer.start()
            _WRITTEN.inc()

    def _timer_flush(self) -> None:
        with self._lock:
            self._timer = None
            if self._handle is not None and self._pending:
                self._handle.flush()
                self._pending = 0
                self._last_flush = time.monotonic()

    def _rotate_locked(self) -> None:
        self._handle.close()
        if self.backups == 0:
            self.path.unlink(missing_ok=True)
        else:
            oldest = self.path.with_name(f"{self.path.name}.{self.backups}")
            oldest.unlink(missing_ok=True)
            for index in range(self.backups - 1, 0, -1):
                source = self.path.with_name(f"{self.path.name}.{index}")
                if source.exists():
                    os.replace(
                        source,
                        self.path.with_name(f"{self.path.name}.{index + 1}"),
                    )
            os.replace(self.path, self.path.with_name(f"{self.path.name}.1"))
        self._handle = open(self.path, "a", encoding="utf-8")
        self._bytes = 0
        self._pending = 0
        self._last_flush = time.monotonic()
        self.rotations += 1
        _ROTATIONS.inc()

    # -- lifecycle / reading ---------------------------------------------

    def flush(self) -> None:
        with self._lock:
            self._cancel_timer_locked()
            if self._handle is not None:
                self._handle.flush()
                self._pending = 0
                self._last_flush = time.monotonic()

    def close(self) -> None:
        with self._lock:
            self._cancel_timer_locked()
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def _cancel_timer_locked(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def stats(self) -> Dict[str, Any]:
        """JSON-ready state for the ``/v1/status`` document."""
        with self._lock:
            return {
                "schema": EVENTS_SCHEMA_VERSION,
                "path": str(self.path),
                "per_pid": self.per_pid,
                "pid": self._pid,
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "backups": self.backups,
                "written": self.written,
                "rotations": self.rotations,
            }


def _chain_candidates(path: Path, include_backups: bool) -> List[Path]:
    """One file's read order: oldest rotation backup first, live file last."""
    candidates: List[Path] = []
    if include_backups:
        index = 1
        backups: List[Path] = []
        while True:
            backup = path.with_name(f"{path.name}.{index}")
            if not backup.exists():
                break
            backups.append(backup)
            index += 1
        candidates.extend(reversed(backups))
    candidates.append(path)
    return candidates


def _parse_file(path: Path, records: List[Dict[str, Any]]) -> None:
    if not path.exists():
        return
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict):
            records.append(record)


def read_events(
    path: Union[str, Path],
    include_backups: bool = True,
) -> List[Dict[str, Any]]:
    """Load every parseable record, oldest first, tolerating truncation.

    Rotation and process crashes can leave a final partial line; it is
    skipped rather than raised, because an event log is diagnostic data
    — best effort by design.

    ``path`` is the *base* path handed to the writers.  When per-PID
    siblings exist (``per_pid=True`` writers, e.g. cluster workers),
    their records — and each sibling's rotation backups — are merged
    with the base file's into one stream ordered by the ``unix``
    timestamp every record carries, so a multi-process serving run
    reads back as a single timeline.  With no siblings the single-file
    read order (and any caller expectations built on it) is unchanged.
    """
    path = Path(path)
    records: List[Dict[str, Any]] = []
    for candidate in _chain_candidates(path, include_backups):
        _parse_file(candidate, records)
    siblings = sorted(
        p
        for p in path.parent.glob(f"{path.stem}.pid-*{path.suffix}")
        if p != path
    )
    if not siblings:
        return records
    for sibling in siblings:
        for candidate in _chain_candidates(sibling, include_backups):
            _parse_file(candidate, records)
    # One timeline across processes: the per-file streams are already
    # oldest-first, so a stable sort on the stamp keeps same-instant
    # records in their per-file order.
    records.sort(key=lambda record: float(record.get("unix", 0.0) or 0.0))
    return records
