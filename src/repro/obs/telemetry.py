"""Request-scoped telemetry: trace IDs, stage timing, reconstruction.

The span tracer in :mod:`repro.obs.trace` answers "where did this
*batch run* spend its time?" — one tree per process.  Serving needs
the per-*request* version of the same question: an HTTP request enters
:mod:`repro.serve.api`, is coalesced with strangers inside the
batching engine, and is answered milliseconds later having crossed
three threads.  This module gives each request an identity and a
reconstructable timeline:

* **Trace IDs** — every request gets one, either supplied by the
  client in the ``X-Repro-Trace`` header (validated, echoed back) or
  generated server-side.  Error envelopes carry it too, so a failing
  request is as traceable as a succeeding one.
* **Stage timing** — a :class:`RequestTrace` records named stages
  (``decode``, ``validate``, ``queue_wait``, ``batch_assembly``,
  ``kernel``, ``respond``, ``drift_observe``) as offsets against one
  ``perf_counter`` origin, so stages measured on the handler thread
  and on the batching worker line up on a single timeline.
* **Emission** — the handler thread emits one ``kind="http"`` record
  carrying the full request timeline: the batching worker only stamps
  raw perf_counter marks on each request (it is the serial throughput
  bottleneck, so it must not build records or touch the log), and the
  handler converts them to spans after waking.  Only ``drift_observe``
  — which runs after the response is on the wire — arrives as a
  supplementary ``kind="engine"`` record from the worker, and only
  when a drift hub is attached.
* **Reconstruction** — :func:`reconstruct_traces` folds those records
  back into one :class:`TraceView` per trace ID, from which the span
  tree, per-stage durations and latency coverage fall out.

Telemetry is strictly opt-in: when the server has no event log the
handler never constructs a :class:`RequestTrace` and the engine's only
cost is a ``None`` check per request, mirroring the zero-overhead
discipline of the span tracer.
"""

from __future__ import annotations

import os
import random
import re
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

from repro.obs.events import EventLog, read_events

__all__ = [
    "TRACE_HEADER",
    "TELEMETRY_SCHEMA_VERSION",
    "new_trace_id",
    "normalize_trace_id",
    "RequestTrace",
    "TraceView",
    "reconstruct_traces",
    "load_trace",
]

#: The HTTP header carrying the request trace ID, both directions.
TRACE_HEADER = "X-Repro-Trace"

TELEMETRY_SCHEMA_VERSION = "repro-telemetry-v1"

#: Client-supplied trace IDs are accepted only in this shape — anything
#: else is replaced with a fresh server-side ID rather than rejected,
#: so a malformed header degrades to "untraced by your name" instead of
#: a 400.
_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


#: Trace IDs need uniqueness, not unpredictability: a Mersenne Twister
#: seeded once from the OS beats ``uuid.uuid4()`` by ~2.5 us per call,
#: which matters on a path budgeted in tens of microseconds.  CPython's
#: C-level ``getrandbits`` is atomic under the GIL, so handler threads
#: can share the generator.
_ID_RNG = random.Random(os.urandom(16))


def new_trace_id() -> str:
    """A fresh 32-hex-char trace ID."""
    return f"{_ID_RNG.getrandbits(128):032x}"


def normalize_trace_id(header_value: Optional[str]) -> str:
    """The trace ID a request should run under.

    A well-formed client-supplied ID is kept verbatim (that is the
    propagation contract); a missing or malformed one yields a fresh
    server-generated ID.
    """
    if header_value is not None:
        candidate = header_value.strip()
        if _TRACE_ID_RE.match(candidate):
            return candidate
    return new_trace_id()


class RequestTrace:
    """One thread's view of one request's timeline.

    All traces for a request share the ``trace_id``, the
    ``perf_counter`` origin ``t0`` and the event sink; each thread
    appends stages to its *own* trace and emits its own record, so no
    cross-thread synchronization guards the stage list.
    """

    __slots__ = ("trace_id", "sink", "t0", "start_unix", "stages")

    def __init__(
        self,
        trace_id: str,
        sink: Optional[EventLog] = None,
        t0: Optional[float] = None,
        start_unix: Optional[float] = None,
    ) -> None:
        self.trace_id = trace_id
        self.sink = sink
        self.t0 = time.perf_counter() if t0 is None else t0
        self.start_unix = time.time() if start_unix is None else start_unix
        self.stages: List[Dict[str, Any]] = []

    def child(self) -> "RequestTrace":
        """A trace for another thread, on the same timeline and sink."""
        return RequestTrace(
            self.trace_id, self.sink, t0=self.t0, start_unix=self.start_unix
        )

    # -- recording -------------------------------------------------------

    def elapsed(self) -> float:
        return time.perf_counter() - self.t0

    def add_stage(
        self, name: str, start_pc: float, end_pc: float, **payload: Any
    ) -> None:
        """Record a stage from raw ``perf_counter`` readings."""
        # Offsets round to 100 ns: far below timer noise, and short
        # decimals serialize measurably faster than full-width floats
        # on a path budgeted in tens of microseconds.
        stage: Dict[str, Any] = {
            "stage": name,
            "start_s": round(start_pc - self.t0, 7),
            "duration_s": round(max(0.0, end_pc - start_pc), 7),
        }
        if payload:
            stage.update(payload)
        self.stages.append(stage)

    @contextmanager
    def stage(self, name: str, **payload: Any) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_stage(name, start, time.perf_counter(), **payload)

    # -- emission --------------------------------------------------------

    def emit(self, kind: str, **fields: Any) -> None:
        """Append this thread's record to the event log (if any)."""
        if self.sink is None:
            return
        self.sink.append(
            {
                "type": "telemetry",
                "schema": TELEMETRY_SCHEMA_VERSION,
                "kind": kind,
                "trace": self.trace_id,
                "start_unix": self.start_unix,
                "stages": self.stages,
                **fields,
            }
        )


class TraceView:
    """All telemetry records for one trace ID, merged back together."""

    def __init__(self, trace_id: str, records: List[Dict[str, Any]]) -> None:
        self.trace_id = trace_id
        self.records = records

    def _record_of_kind(self, kind: str) -> Optional[Dict[str, Any]]:
        for record in self.records:
            if record.get("kind") == kind:
                return record
        return None

    @property
    def http(self) -> Optional[Dict[str, Any]]:
        return self._record_of_kind("http")

    @property
    def engine(self) -> Optional[Dict[str, Any]]:
        return self._record_of_kind("engine")

    def all_stages(self) -> List[Dict[str, Any]]:
        """Every stage from every record, ordered by start offset."""
        stages: List[Dict[str, Any]] = []
        for record in self.records:
            stages.extend(record.get("stages", ()))
        return sorted(stages, key=lambda s: s.get("start_s", 0.0))

    def stage_seconds(self) -> Dict[str, float]:
        """Total duration per stage name (a stage may repeat)."""
        totals: Dict[str, float] = {}
        for stage in self.all_stages():
            name = str(stage.get("stage"))
            totals[name] = totals.get(name, 0.0) + float(
                stage.get("duration_s", 0.0)
            )
        return totals

    @property
    def duration_s(self) -> Optional[float]:
        """The request's server-observed wall time (from the http record)."""
        record = self.http
        if record is None:
            return None
        value = record.get("duration_s")
        return None if value is None else float(value)

    def coverage(self) -> Optional[float]:
        """Fraction of the request wall time explained by stages.

        Stages overlapping the request window (``drift_observe`` runs
        after the response is sent) can push this slightly above 1.
        """
        duration = self.duration_s
        if not duration:
            return None
        return sum(self.stage_seconds().values()) / duration

    def tree_lines(self) -> List[str]:
        """The request as an indented span tree (for humans/tests)."""
        http = self.http or {}
        duration = self.duration_s or 0.0
        header = (
            f"trace {self.trace_id}  "
            f"{http.get('method', '?')} {http.get('path', '?')} "
            f"-> {http.get('status', '?')}  {duration * 1e3:.2f} ms"
        )
        lines = [header]
        for stage in self.all_stages():
            lines.append(
                f"  {stage.get('stage', '?'):16s} "
                f"+{float(stage.get('start_s', 0.0)) * 1e3:8.2f} ms  "
                f"{float(stage.get('duration_s', 0.0)) * 1e3:8.3f} ms"
            )
        return lines


def reconstruct_traces(
    records: Iterable[Dict[str, Any]]
) -> Dict[str, TraceView]:
    """Group telemetry records by trace ID into :class:`TraceView`\\ s."""
    grouped: Dict[str, List[Dict[str, Any]]] = {}
    for record in records:
        if record.get("type") != "telemetry":
            continue
        trace_id = record.get("trace")
        if not isinstance(trace_id, str):
            continue
        grouped.setdefault(trace_id, []).append(record)
    return {
        trace_id: TraceView(trace_id, group)
        for trace_id, group in grouped.items()
    }


def load_trace(
    path: Union[str, Path], trace_id: Optional[str] = None
) -> Union[Dict[str, TraceView], Optional[TraceView]]:
    """Read an event log and reconstruct its traces.

    With ``trace_id`` the matching :class:`TraceView` (or None) is
    returned; without it, the full id -> view mapping.
    """
    views = reconstruct_traces(read_events(path))
    if trace_id is not None:
        return views.get(trace_id)
    return views
