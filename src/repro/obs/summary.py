"""Terminal rendering of exported traces: ``repro trace-summary``.

Reads a trace JSONL file (manifest line, span lines, metric lines —
the format :meth:`repro.obs.trace.Tracer.write_jsonl` writes), rebuilds
the span tree and prints it time-sorted with per-span wall/CPU/RSS
figures, followed by the run's top metrics.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = [
    "read_trace",
    "render_trace_summary",
    "format_metrics_table",
    "render_prometheus",
]


def read_trace(
    path: Union[str, Path]
) -> Tuple[Optional[Dict[str, Any]], List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Parse a trace file into (manifest, span records, metric records)."""
    manifest: Optional[Dict[str, Any]] = None
    spans: List[Dict[str, Any]] = []
    metrics: List[Dict[str, Any]] = []
    for line_number, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{path}:{line_number}: not valid JSON ({error})"
            ) from None
        kind = record.get("type")
        if kind == "manifest":
            manifest = record
        elif kind == "span":
            spans.append(record)
        elif kind == "metric":
            metrics.append(record)
        else:
            raise ValueError(
                f"{path}:{line_number}: unknown record type {kind!r}"
            )
    return manifest, spans, metrics


def _payload_brief(payload: Dict[str, Any], limit: int = 4) -> str:
    if not payload:
        return ""
    parts = []
    for key, value in list(payload.items())[:limit]:
        if isinstance(value, float):
            value = f"{value:.4g}"
        parts.append(f"{key}={value}")
    if len(payload) > limit:
        parts.append("...")
    return "  [" + " ".join(parts) + "]"


def _render_span_tree(spans: List[Dict[str, Any]]) -> List[str]:
    children: Dict[Optional[int], List[Dict[str, Any]]] = {}
    ids = {record["id"] for record in spans}
    for record in spans:
        parent = record.get("parent")
        if parent not in ids:
            parent = None
        children.setdefault(parent, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: r.get("start_wall", 0.0))

    lines: List[str] = []

    def visit(record: Dict[str, Any], depth: int) -> None:
        indent = "  " * depth
        wall_ms = record.get("wall_s", 0.0) * 1e3
        cpu_ms = record.get("cpu_s", 0.0) * 1e3
        rss_kb = record.get("rss_delta_kb", 0)
        line = (
            f"{indent}{record['name']:{max(1, 34 - 2 * depth)}s} "
            f"{wall_ms:9.2f} ms  cpu {cpu_ms:9.2f} ms"
        )
        if rss_kb:
            line += f"  +rss {rss_kb / 1024:6.1f} MB"
        line += _payload_brief(record.get("payload", {}))
        lines.append(line)
        for child in children.get(record["id"], []):
            visit(child, depth + 1)

    for root in children.get(None, []):
        visit(root, 0)
    return lines


def format_metrics_table(
    metrics: List[Dict[str, Any]], top: int = 20
) -> str:
    """The run's metrics, counters first (largest values lead)."""
    if not metrics:
        return "(no metrics recorded)"
    counters = sorted(
        (m for m in metrics if m.get("kind") == "counter"),
        key=lambda m: -m.get("value", 0),
    )
    gauges = sorted(
        (m for m in metrics if m.get("kind") == "gauge"),
        key=lambda m: m["name"],
    )
    histograms = sorted(
        (m for m in metrics if m.get("kind") == "histogram"),
        key=lambda m: m["name"],
    )
    lines: List[str] = []
    for metric in counters[:top]:
        lines.append(f"  {metric['name']:40s} {metric['value']:>14,}")
    for metric in gauges[:top]:
        lines.append(f"  {metric['name']:40s} {metric['value']:>14.6g}")
    for metric in histograms[:top]:
        mean = metric.get("mean", 0.0)
        lines.append(
            f"  {metric['name']:40s} n={metric['count']:<8d}"
            f" mean={mean:.6g} min={metric.get('min')} max={metric.get('max')}"
        )
    return "\n".join(lines)


def _prometheus_name(name: str) -> str:
    """Map a dotted registry name to a Prometheus metric name."""
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"repro_{cleaned}"


def render_prometheus(metrics: List[Dict[str, Any]]) -> str:
    """Text exposition of registry records (the serving ``/metrics``).

    Counters and gauges render one sample each; histograms render
    ``_count``/``_sum`` plus cumulative ``_bucket`` samples whose ``le``
    labels are the upper edges of the registry's log2 buckets.  The
    output follows the Prometheus text format closely enough for
    standard scrapers while staying dependency-free.
    """
    lines: List[str] = []
    for record in sorted(metrics, key=lambda m: m.get("name", "")):
        name = _prometheus_name(record["name"])
        kind = record.get("kind")
        if kind == "counter":
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {record['value']}")
        elif kind == "gauge":
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {record['value']}")
        elif kind == "histogram":
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            buckets = record.get("buckets", {})
            for index in sorted(buckets, key=int):
                cumulative += buckets[index]
                lines.append(
                    f'{name}_bucket{{le="{2.0 ** int(index):g}"}} '
                    f"{cumulative}"
                )
            lines.append(f'{name}_bucket{{le="+Inf"}} {record["count"]}')
            lines.append(f"{name}_sum {record['sum']}")
            lines.append(f"{name}_count {record['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_trace_summary(path: Union[str, Path]) -> str:
    """Full terminal report for one trace file."""
    manifest, spans, metrics = read_trace(path)
    lines: List[str] = []
    if manifest is not None:
        config = manifest.get("config", {})
        lines.append(
            f"trace of {' '.join(manifest.get('argv', []))!s}".rstrip()
        )
        lines.append(
            f"  created {manifest.get('created_iso', '?')}"
            f"  seed {config.get('seed', '?')}"
            f"  python {manifest.get('platform', {}).get('python', '?')}"
            f"  machine {manifest.get('platform', {}).get('machine', '?')}"
        )
        if manifest.get("experiments"):
            lines.append(
                "  experiments " + " ".join(manifest["experiments"])
            )
        lines.append("")
    if spans:
        total = sum(
            record.get("wall_s", 0.0)
            for record in spans
            if record.get("parent") is None
        )
        lines.append(f"spans ({len(spans)}, root wall {total:.3f}s):")
        lines.extend(_render_span_tree(spans))
    else:
        lines.append("(no spans recorded)")
    lines.append("")
    lines.append(f"metrics ({len(metrics)}):")
    lines.append(format_metrics_table(metrics))
    return "\n".join(lines)
