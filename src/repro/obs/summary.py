"""Terminal rendering of exported traces: ``repro trace-summary``.

Reads a trace JSONL file (manifest line, span lines, metric lines —
the format :meth:`repro.obs.trace.Tracer.write_jsonl` writes), rebuilds
the span tree and prints it time-sorted with per-span wall/CPU/RSS
figures, followed by the run's top metrics.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = [
    "read_trace",
    "render_trace_summary",
    "format_metrics_table",
    "render_prometheus",
    "escape_label_value",
]


def read_trace(
    path: Union[str, Path],
    warnings: Optional[List[str]] = None,
) -> Tuple[Optional[Dict[str, Any]], List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Parse a trace file into (manifest, span records, metric records).

    A malformed *final* line is tolerated when at least one record
    parsed before it — that is what a process killed mid-write leaves
    behind — and noted in ``warnings`` (when the caller passes a list)
    instead of raised.  Malformed content anywhere else is still a
    ``ValueError``: it means the file is not a trace at all.
    """
    manifest: Optional[Dict[str, Any]] = None
    spans: List[Dict[str, Any]] = []
    metrics: List[Dict[str, Any]] = []
    lines = Path(path).read_text().splitlines()
    last_content = max(
        (i for i, line in enumerate(lines, start=1) if line.strip()),
        default=0,
    )
    parsed = 0
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            if line_number == last_content and parsed > 0:
                if warnings is not None:
                    warnings.append(
                        f"ignored truncated final line {line_number}"
                    )
                break
            raise ValueError(
                f"{path}:{line_number}: not valid JSON ({error})"
            ) from None
        parsed += 1
        kind = record.get("type")
        if kind == "manifest":
            manifest = record
        elif kind == "span":
            spans.append(record)
        elif kind == "metric":
            metrics.append(record)
        else:
            raise ValueError(
                f"{path}:{line_number}: unknown record type {kind!r}"
            )
    return manifest, spans, metrics


def _payload_brief(payload: Dict[str, Any], limit: int = 4) -> str:
    if not payload:
        return ""
    parts = []
    for key, value in list(payload.items())[:limit]:
        if isinstance(value, float):
            value = f"{value:.4g}"
        parts.append(f"{key}={value}")
    if len(payload) > limit:
        parts.append("...")
    return "  [" + " ".join(parts) + "]"


def _render_span_tree(spans: List[Dict[str, Any]]) -> List[str]:
    children: Dict[Optional[int], List[Dict[str, Any]]] = {}
    ids = {record["id"] for record in spans}
    for record in spans:
        parent = record.get("parent")
        if parent not in ids:
            parent = None
        children.setdefault(parent, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: r.get("start_wall", 0.0))

    lines: List[str] = []

    def visit(record: Dict[str, Any], depth: int) -> None:
        indent = "  " * depth
        wall_ms = record.get("wall_s", 0.0) * 1e3
        cpu_ms = record.get("cpu_s", 0.0) * 1e3
        rss_kb = record.get("rss_delta_kb", 0)
        line = (
            f"{indent}{record['name']:{max(1, 34 - 2 * depth)}s} "
            f"{wall_ms:9.2f} ms  cpu {cpu_ms:9.2f} ms"
        )
        if rss_kb:
            line += f"  +rss {rss_kb / 1024:6.1f} MB"
        line += _payload_brief(record.get("payload", {}))
        lines.append(line)
        for child in children.get(record["id"], []):
            visit(child, depth + 1)

    for root in children.get(None, []):
        visit(root, 0)
    return lines


def format_metrics_table(
    metrics: List[Dict[str, Any]], top: int = 20
) -> str:
    """The run's metrics, counters first (largest values lead)."""
    if not metrics:
        return "(no metrics recorded)"
    counters = sorted(
        (m for m in metrics if m.get("kind") == "counter"),
        key=lambda m: -m.get("value", 0),
    )
    gauges = sorted(
        (m for m in metrics if m.get("kind") == "gauge"),
        key=lambda m: m["name"],
    )
    histograms = sorted(
        (m for m in metrics if m.get("kind") == "histogram"),
        key=lambda m: m["name"],
    )
    summaries = sorted(
        (m for m in metrics if m.get("kind") == "summary"),
        key=lambda m: (m["name"], sorted((m.get("labels") or {}).items())),
    )
    lines: List[str] = []
    for metric in counters[:top]:
        lines.append(f"  {metric['name']:40s} {metric['value']:>14,}")
    for metric in gauges[:top]:
        lines.append(f"  {metric['name']:40s} {metric['value']:>14.6g}")
    for metric in histograms[:top]:
        mean = metric.get("mean", 0.0)
        lines.append(
            f"  {metric['name']:40s} n={metric['count']:<8d}"
            f" mean={mean:.6g} min={metric.get('min')} max={metric.get('max')}"
        )
    for metric in summaries[:top]:
        labels = metric.get("labels") or {}
        label_text = (
            "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
            if labels
            else ""
        )
        quantiles = metric.get("quantiles", {})
        quantile_text = " ".join(
            f"p{float(q) * 100:g}={value:.6g}"
            for q, value in sorted(quantiles.items(), key=lambda kv: float(kv[0]))
        )
        lines.append(
            f"  {metric['name'] + label_text:40s} n={metric['count']:<8d}"
            f" {quantile_text}"
        )
    return "\n".join(lines)


def _prometheus_name(name: str) -> str:
    """Map a dotted registry name to a Prometheus metric name."""
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"repro_{cleaned}"


def escape_label_value(value: Any) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double-quote and newline are the three characters the
    format requires escaping inside ``label="..."``.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(labels: Dict[str, Any]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def render_prometheus(metrics: List[Dict[str, Any]]) -> str:
    """Text exposition of registry records (the serving ``/metrics``).

    Counters and gauges render one sample each; histograms render
    ``_count``/``_sum`` plus cumulative ``_bucket`` samples whose ``le``
    labels are the upper edges of the registry's log2 buckets;
    summaries render one ``quantile``-labelled sample per tracked
    quantile (plus ``_count``/``_sum``), carrying any instrument labels
    such as ``endpoint`` or ``model``.  Records sharing a name form one
    metric family: a single ``# TYPE`` line followed by every sample,
    with label values escaped per the exposition format.
    """
    by_family: Dict[str, List[Dict[str, Any]]] = {}
    for record in metrics:
        by_family.setdefault(record["name"], []).append(record)
    lines: List[str] = []
    for family_name in sorted(by_family):
        records = sorted(
            by_family[family_name],
            key=lambda m: sorted((m.get("labels") or {}).items()),
        )
        name = _prometheus_name(family_name)
        lines.append(f"# TYPE {name} {records[0].get('kind')}")
        for record in records:
            kind = record.get("kind")
            labels = dict(record.get("labels") or {})
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{name}{_render_labels(labels)} {record['value']}"
                )
            elif kind == "histogram":
                cumulative = 0
                buckets = record.get("buckets", {})
                for index in sorted(buckets, key=int):
                    cumulative += buckets[index]
                    lines.append(
                        f"{name}_bucket"
                        f"{_render_labels({**labels, 'le': f'{2.0 ** int(index):g}'})}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{name}_bucket{_render_labels({**labels, 'le': '+Inf'})}"
                    f" {record['count']}"
                )
                lines.append(
                    f"{name}_sum{_render_labels(labels)} {record['sum']}"
                )
                lines.append(
                    f"{name}_count{_render_labels(labels)} {record['count']}"
                )
            elif kind == "summary":
                for q, value in record.get("quantiles", {}).items():
                    lines.append(
                        f"{name}{_render_labels({**labels, 'quantile': q})}"
                        f" {value}"
                    )
                lines.append(
                    f"{name}_sum{_render_labels(labels)} {record['sum']}"
                )
                lines.append(
                    f"{name}_count{_render_labels(labels)} {record['count']}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def render_trace_summary(path: Union[str, Path]) -> str:
    """Full terminal report for one trace file.

    Degenerate files render a message instead of raising: an empty
    file says so, a manifest-only file renders the manifest, and a
    file whose final line was cut mid-write notes the dropped line.
    """
    warnings: List[str] = []
    manifest, spans, metrics = read_trace(path, warnings=warnings)
    if manifest is None and not spans and not metrics:
        return f"{path}: empty trace (no records)"
    lines: List[str] = []
    for warning in warnings:
        lines.append(f"warning: {warning}")
    if manifest is not None:
        config = manifest.get("config", {})
        lines.append(
            f"trace of {' '.join(manifest.get('argv', []))!s}".rstrip()
        )
        lines.append(
            f"  created {manifest.get('created_iso', '?')}"
            f"  seed {config.get('seed', '?')}"
            f"  python {manifest.get('platform', {}).get('python', '?')}"
            f"  machine {manifest.get('platform', {}).get('machine', '?')}"
        )
        if manifest.get("experiments"):
            lines.append(
                "  experiments " + " ".join(manifest["experiments"])
            )
        lines.append("")
    if spans:
        total = sum(
            record.get("wall_s", 0.0)
            for record in spans
            if record.get("parent") is None
        )
        lines.append(f"spans ({len(spans)}, root wall {total:.3f}s):")
        lines.extend(_render_span_tree(spans))
    else:
        lines.append("(no spans recorded)")
    lines.append("")
    lines.append(f"metrics ({len(metrics)}):")
    lines.append(format_metrics_table(metrics))
    return "\n".join(lines)
