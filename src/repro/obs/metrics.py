"""Process-wide metrics registry: counters, gauges, histograms.

Instrumented code holds onto metric objects (one dict lookup at import
or first use, then plain attribute arithmetic per event), so counting
something in a hot loop costs an integer add.  The registry is always
on — unlike tracing there is no disabled mode to branch on — because
its per-event cost is negligible and the counts (SDR evaluations,
cache hits, worker timings) are exactly what the run summary and the
trace exporter report.

Naming convention (see ``docs/OBSERVABILITY.md``): dotted lowercase
``<subsystem>.<object>.<event>``, e.g. ``cache.memory.hits``,
``mtree.sdr_evaluations``, ``runner.experiments_completed``.

``reset()`` zeroes values but keeps the metric *objects*, so cached
references in instrumented modules stay valid across tests.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Summary",
    "MetricsRegistry",
    "get_registry",
    "counter",
    "counter_delta",
    "gauge",
    "histogram",
    "summary",
]


class Counter:
    """A monotonically increasing integer (or float) count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def as_record(self) -> Dict[str, Any]:
        return {"name": self.name, "kind": "counter", "value": self.value}


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0.0

    def as_record(self) -> Dict[str, Any]:
        return {"name": self.name, "kind": "gauge", "value": self.value}


class Histogram:
    """Streaming distribution summary with log2 buckets.

    Tracks count/sum/min/max exactly plus a coarse shape: bucket ``i``
    counts observations in ``[2**(i-1), 2**i)`` relative to ``scale``
    (default 1.0, so observations in seconds land in readable buckets).
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets", "scale")

    # log2 bucket indices are clamped to this symmetric range.
    _BUCKET_RANGE = 64

    def __init__(self, name: str, scale: float = 1.0) -> None:
        self.name = name
        self.scale = scale
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        scaled = value / self.scale
        if scaled > 0:
            index = min(
                self._BUCKET_RANGE,
                max(-self._BUCKET_RANGE, int(math.ceil(math.log2(scaled)))),
            )
        else:
            index = -self._BUCKET_RANGE
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets = {}

    def as_record(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class Summary:
    """Streaming latency-quantile estimator with exact small-sample answers.

    The log2 :class:`Histogram` answers "what order of magnitude?" —
    this answers "what is p99?".  Observations land in a bounded
    reservoir: *exact* until ``capacity`` values have been seen, then a
    uniform random sample of everything seen so far (Vitter's
    Algorithm R), so quantiles stay unbiased with fixed memory.  The
    RNG is seeded from the instrument name, making a replayed stream
    reproduce the same quantiles bit-for-bit.

    ``labels`` distinguish instruments sharing one metric family —
    per-endpoint or per-model latency series that Prometheus renders
    as ``repro_serve_http_latency{endpoint="predict",quantile="0.99"}``.
    """

    __slots__ = (
        "name",
        "labels",
        "capacity",
        "count",
        "total",
        "_values",
        "_rng",
        "_sorted",
    )

    DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)

    def __init__(
        self,
        name: str,
        capacity: int = 4096,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.labels: Dict[str, str] = dict(labels or {})
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self._values: List[float] = []
        seed = zlib.crc32(
            (name + "|" + ",".join(sorted(self.labels.values()))).encode()
        )
        self._rng = random.Random(seed)
        self._sorted: Optional[List[float]] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if len(self._values) < self.capacity:
            self._values.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self._values[slot] = value
            else:
                return  # reservoir unchanged; sorted cache stays valid
        self._sorted = None

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _ordered(self) -> List[float]:
        if self._sorted is None:
            self._sorted = sorted(self._values)
        return self._sorted

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile of the reservoir (NaN if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        ordered = self._ordered()
        if not ordered:
            return math.nan
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def quantiles(
        self, qs: Sequence[float] = DEFAULT_QUANTILES
    ) -> Dict[str, float]:
        return {f"{q:g}": self.quantile(q) for q in qs}

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self._values = []
        self._sorted = None

    def as_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "name": self.name,
            "kind": "summary",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "quantiles": self.quantiles(),
        }
        if self.labels:
            record["labels"] = dict(self.labels)
        return record


def _summary_key(name: str, labels: Optional[Mapping[str, str]]) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}|{rendered}"


class MetricsRegistry:
    """Named metric instruments, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._summaries: Dict[str, Summary] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, scale: float = 1.0) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, scale)
        return instrument

    def summary(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        capacity: int = 4096,
    ) -> Summary:
        key = _summary_key(name, labels)
        instrument = self._summaries.get(key)
        if instrument is None:
            instrument = self._summaries[key] = Summary(
                name, capacity=capacity, labels=labels
            )
        return instrument

    # -- reporting -------------------------------------------------------

    def as_records(self) -> List[Dict[str, Any]]:
        """Every non-trivial metric as a JSON-ready record, sorted by name."""
        records = [
            c.as_record() for c in self._counters.values() if c.value != 0
        ]
        records += [
            g.as_record() for g in self._gauges.values() if g.value != 0.0
        ]
        records += [
            h.as_record() for h in self._histograms.values() if h.count > 0
        ]
        records += [
            s.as_record() for s in self._summaries.values() if s.count > 0
        ]
        return sorted(
            records,
            key=lambda r: (r["name"], sorted((r.get("labels") or {}).items())),
        )

    def counter_values(self) -> Dict[str, int]:
        """Snapshot of all counter values (including zeros)."""
        return {name: c.value for name, c in self._counters.items()}

    def merge_counter_delta(self, delta: Dict[str, int]) -> None:
        """Fold counter increments measured elsewhere (a worker) in."""
        for name, amount in delta.items():
            if amount:
                self.counter(name).inc(amount)

    def reset(self) -> None:
        """Zero every instrument, keeping cached references valid."""
        for group in (
            self._counters,
            self._gauges,
            self._histograms,
            self._summaries,
        ):
            for instrument in group.values():
                instrument.reset()


def counter_delta(
    after: Dict[str, int], before: Dict[str, int]
) -> Dict[str, int]:
    """Per-counter increments between two :meth:`counter_values` snapshots."""
    return {
        name: value - before.get(name, 0)
        for name, value in after.items()
        if value != before.get(name, 0)
    }


_REGISTRY: Optional[MetricsRegistry] = None


def get_registry() -> MetricsRegistry:
    """The process-wide registry (created on first use)."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = MetricsRegistry()
    return _REGISTRY


def counter(name: str) -> Counter:
    return get_registry().counter(name)


def gauge(name: str) -> Gauge:
    return get_registry().gauge(name)


def histogram(name: str, scale: float = 1.0) -> Histogram:
    return get_registry().histogram(name, scale)


def summary(
    name: str,
    labels: Optional[Mapping[str, str]] = None,
    capacity: int = 4096,
) -> Summary:
    return get_registry().summary(name, labels=labels, capacity=capacity)
