"""The retrain → shadow → promote → rollback state machine.

:class:`PipelineOrchestrator` closes the loop the drift subsystem
opened: where :class:`~repro.drift.monitor.RetrainTrigger` previously
just fired a callback, the orchestrator *is* that callback, and it
carries the remediation through end to end:

1. **idle** — armed; a traffic tap keeps a bounded
   :class:`~repro.pipeline.buffer.TrafficBuffer` of labelled rows.
2. **retraining** — the champion's verdict entered
   ``transfer_failed``: fit a fresh M5′ tree on the buffered traffic
   window and publish it to the registry under the ``candidate``
   alias.
3. **shadowing** — the candidate runs as challenger in the hub's
   :class:`~repro.drift.shadow.ShadowEvaluator` against live traffic.
4. **promoting → promoted** — on ``promote_challenger``, atomically
   flip the serving alias (:meth:`ModelRegistry.move_alias`) and
   append a hash-chained :class:`~repro.pipeline.promotions
   .PromotionLog` entry.  In-flight requests finish against the old
   model (the engine resolves aliases at submit time); the next batch
   serves the new one.
5. **rejected** — the shadow never qualified (sustained
   ``keep_champion`` or traffic budget exhausted): drop the candidate
   alias and re-arm.
6. **rolled_back** — ``repro rollback`` restored a prior model.

The orchestrator is *event-driven*, not a thread: it advances inside
the monitor's action callbacks, which the hub invokes from whatever
thread feeds :meth:`DriftHub.observe` (the serving engine's batch
worker, or an offline replay loop).  That makes the same code path
exact under replay and live serving, and leaves nothing to join on
shutdown.  A retrain is a synchronous tree fit on the feeding thread —
hundreds of milliseconds at the default buffer size, paid off the
client latency path because the engine observes drift after answering
callers.

Every state change is journalled atomically
(:class:`~repro.pipeline.journal.PipelineJournal`), so a killed
process resumes cleanly: a death mid-``shadowing`` re-registers the
challenger and keeps the retrain latch held; mid-``retraining``
aborts to idle (the fit never published); mid-``promoting``
reconciles against the registry — if the alias already points at the
candidate the promotion landed and is recorded, otherwise the cycle
aborts.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional

from repro.drift.monitor import DriftEvent, DriftVerdict, RetrainTrigger
from repro.mtree.tree import ModelTree, ModelTreeConfig
from repro.obs.metrics import counter, gauge
from repro.obs.trace import span as obs_span
from repro.pipeline.buffer import TrafficBuffer
from repro.pipeline.journal import PipelineJournal
from repro.pipeline.promotions import PromotionLog, perform_rollback
from repro.serve.registry import ModelNotFound

__all__ = ["PipelineState", "PipelineConfig", "PipelineOrchestrator"]


class PipelineState(enum.Enum):
    IDLE = "idle"
    RETRAINING = "retraining"
    SHADOWING = "shadowing"
    PROMOTING = "promoting"
    PROMOTED = "promoted"
    REJECTED = "rejected"
    ROLLED_BACK = "rolled_back"


#: Gauge encoding (mid-cycle states are 1-3, terminal outcomes 4-6).
_STATE_CODES = {
    PipelineState.IDLE: 0.0,
    PipelineState.RETRAINING: 1.0,
    PipelineState.SHADOWING: 2.0,
    PipelineState.PROMOTING: 3.0,
    PipelineState.PROMOTED: 4.0,
    PipelineState.REJECTED: 5.0,
    PipelineState.ROLLED_BACK: 6.0,
}

#: States from which a new cycle may start.
_RESTARTABLE = frozenset(
    {
        PipelineState.IDLE,
        PipelineState.PROMOTED,
        PipelineState.REJECTED,
        PipelineState.ROLLED_BACK,
    }
)

#: Process-wide pipeline traffic (summed over every orchestrator).
_CYCLES = counter("pipeline.cycles")
_RETRAINS = counter("pipeline.retrains")
_PROMOTIONS = counter("pipeline.promotions")
_REJECTIONS = counter("pipeline.rejections")
_ROLLBACKS = counter("pipeline.rollbacks")
_G_STATE = gauge("pipeline.state_code")


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of the retrain/shadow/promote loop."""

    #: The serving alias the pipeline defends (and flips on promote).
    alias: str = "latest"
    #: Where a freshly retrained model is published while shadowing.
    candidate_alias: str = "candidate"
    #: Labelled rows required before a retrain may run; with fewer,
    #: the cycle aborts and re-fires once enough traffic accumulated.
    #: The default is 1.5x the default monitor window: the hysteresis
    #: trigger fires after ~0.75 windows of failing traffic, and a
    #: candidate fitted on that little data rarely clears the paper's
    #: acceptance thresholds — waiting for half a window more trades a
    #: few batches of latency for a model that can actually promote.
    min_retrain_rows: int = 384
    #: Ring capacity of the traffic buffer (labelled rows kept).
    buffer_capacity: int = 4096
    #: Champion records observed while shadowing before the candidate
    #: is rejected as "never qualified".
    shadow_budget_records: int = 8192
    #: Consecutive keep_champion recommendations that reject the
    #: candidate early.
    reject_after_keeps: int = 3
    #: Hyperparameters of the retrained tree.
    tree: ModelTreeConfig = field(default_factory=ModelTreeConfig)

    def __post_init__(self) -> None:
        if self.min_retrain_rows < 2:
            raise ValueError(
                f"min_retrain_rows must be >= 2, got {self.min_retrain_rows}"
            )
        if self.buffer_capacity < self.min_retrain_rows:
            raise ValueError(
                f"buffer_capacity ({self.buffer_capacity}) must hold at "
                f"least min_retrain_rows ({self.min_retrain_rows})"
            )
        if self.shadow_budget_records < 1:
            raise ValueError(
                f"shadow_budget_records must be >= 1, "
                f"got {self.shadow_budget_records}"
            )
        if self.reject_after_keeps < 1:
            raise ValueError(
                f"reject_after_keeps must be >= 1, "
                f"got {self.reject_after_keeps}"
            )
        if self.alias == self.candidate_alias:
            raise ValueError(
                f"alias and candidate_alias must differ, got {self.alias!r}"
            )


class PipelineOrchestrator:
    """Drives the MLOps loop off drift verdicts; see module docstring."""

    def __init__(
        self,
        registry,
        hub,
        config: Optional[PipelineConfig] = None,
        promotions: Optional[PromotionLog] = None,
        journal: Optional[PipelineJournal] = None,
        events=None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.registry = registry
        self.hub = hub
        self.config = config or PipelineConfig()
        root = getattr(registry, "root", None)
        if promotions is None:
            if root is None:
                raise ValueError(
                    "promotions log required for a registry without a root"
                )
            promotions = PromotionLog(root / "promotions.jsonl")
        if journal is None:
            if root is None:
                raise ValueError(
                    "journal required for a registry without a root"
                )
            journal = PipelineJournal(root / "pipeline_state.json")
        self.promotions = promotions
        self.journal = journal
        self._events = events
        self._clock = clock
        # Reentrant: the trigger callback runs inside _on_event, which
        # already holds the lock.
        self._lock = threading.RLock()
        self._state = PipelineState.IDLE
        self._cycle: Optional[Dict[str, Any]] = None
        self._cycles: Deque[Dict[str, Any]] = deque(maxlen=16)
        self._cycle_count = 0
        self._pending_retry = False
        self._keep_streak = 0
        self._shadow_records = 0
        self.buffer = TrafficBuffer(self.config.buffer_capacity)
        self.trigger = RetrainTrigger(self._start_cycle, debounce=True)
        self._resume()
        hub.add_tap(self._tap)
        hub.add_action(self._on_event)
        _G_STATE.set(_STATE_CODES[self._state])

    # -- hub hooks -------------------------------------------------------

    def _champion_id(self) -> Optional[str]:
        try:
            return self.registry.resolve(self.config.alias)
        except ModelNotFound:
            return None

    def _tap(self, model_id, X, predictions, actuals) -> None:
        """Hub tap: buffer the champion's labelled traffic."""
        if model_id != self._champion_id():
            return
        self.buffer.extend(X, actuals)
        with self._lock:
            if self._state is PipelineState.SHADOWING:
                self._shadow_records += int(len(predictions))

    def _on_event(self, event: DriftEvent) -> None:
        """Monitor action: advance the state machine for one verdict."""
        with self._lock:
            if event.model_id != self._champion_id():
                return
            if self._state is PipelineState.SHADOWING:
                self._poll_shadow()
                return
            self.trigger(event)
            if (
                self._pending_retry
                and self._state in _RESTARTABLE
                and event.verdict is DriftVerdict.TRANSFER_FAILED
                and self.buffer.n >= self.config.min_retrain_rows
            ):
                # An earlier cycle aborted for lack of data and the
                # verdict never left TRANSFER_FAILED, so no fresh
                # transition will fire the trigger — re-kick manually
                # now that enough labelled traffic accumulated.
                self._pending_retry = False
                self.trigger.fire(event)

    # -- the cycle -------------------------------------------------------

    def _start_cycle(self, event: DriftEvent) -> None:
        """RetrainTrigger callback: begin a retrain/shadow cycle."""
        with self._lock:
            if self._state not in _RESTARTABLE:
                # A concurrent cycle slipped past the latch (e.g. a
                # resume held it); never interleave two cycles.
                return
            _CYCLES.inc()
            self._cycle_count += 1
            self._cycle = {
                "id": self._cycle_count,
                "champion": event.model_id,
                "trigger_seq": event.seq,
                "trigger_records_seen": event.records_seen,
                "started_unix": self._clock(),
                "candidate": None,
            }
            self._keep_streak = 0
            self._shadow_records = 0
            self._set_state(
                PipelineState.RETRAINING,
                note=f"transfer_failed after {event.records_seen} records",
            )
            self._retrain(event)

    def _retrain(self, event: DriftEvent) -> None:
        # Caller holds the lock and has journalled RETRAINING.
        X, y = self.buffer.labelled()
        if len(y) < self.config.min_retrain_rows:
            self._pending_retry = True
            self._finish(
                PipelineState.IDLE,
                note=(
                    f"retrain aborted: {len(y)} labelled rows buffered, "
                    f"need {self.config.min_retrain_rows}; will re-fire"
                ),
            )
            return
        champion_record = self.registry.record(event.model_id)
        with obs_span("pipeline.retrain", rows=len(y)):
            tree = ModelTree(self.config.tree).fit(
                X, y, champion_record.feature_names
            )
        _RETRAINS.inc()
        candidate = self.registry.publish(
            tree,
            metadata={
                "origin": "pipeline",
                "retrained_from": event.model_id,
                "trigger": {
                    "verdict": event.verdict.value,
                    "seq": event.seq,
                    "records_seen": event.records_seen,
                },
                "n_train": int(len(y)),
                "train_y": {
                    "n": int(len(y)),
                    "mean": float(y.mean()),
                    "var": float(y.var(ddof=1)),
                },
            },
            aliases=(self.config.candidate_alias,),
        )
        assert self._cycle is not None
        self._cycle["candidate"] = candidate.model_id
        self._cycle["retrain_rows"] = int(len(y))
        if candidate.model_id == event.model_id:
            # Retraining reproduced the failing model bit-identically —
            # the traffic window carries no new signal; shadowing it
            # against itself could never promote.
            self.registry.drop_alias(
                self.config.candidate_alias,
                reason="candidate identical to champion",
                actor="pipeline",
            )
            self._finish(
                PipelineState.REJECTED,
                note="candidate identical to champion",
            )
            return
        self.hub.set_shadow(event.model_id, candidate.model_id)
        self._set_state(
            PipelineState.SHADOWING,
            note=(
                f"candidate {candidate.model_id} retrained on {len(y)} "
                f"rows, shadowing against {event.model_id}"
            ),
        )

    def _poll_shadow(self) -> None:
        # Caller holds the lock; state is SHADOWING.
        shadow = self.hub.shadow
        if shadow is None:
            # The pair vanished under us (external clear): abort.
            self._abort_candidate("shadow evaluator disappeared")
            return
        rec = shadow.recommendation()
        recommendation = rec.get("recommendation")
        if recommendation == "promote_challenger":
            self._promote(rec)
            return
        if recommendation == "keep_champion":
            self._keep_streak += 1
            if self._keep_streak >= self.config.reject_after_keeps:
                self._abort_candidate(
                    f"shadow kept champion {self._keep_streak} "
                    f"evaluations in a row"
                )
                return
        if self._shadow_records > self.config.shadow_budget_records:
            self._abort_candidate(
                f"shadow budget exhausted "
                f"({self._shadow_records} records observed)"
            )

    def _shadow_metrics(self, rec: Dict[str, Any]) -> Dict[str, Any]:
        metrics: Dict[str, Any] = {}
        for side in ("champion", "challenger"):
            payload = rec.get(side)
            if isinstance(payload, dict):
                metrics[side] = {
                    "rolling_c": payload.get("rolling_c"),
                    "rolling_mae": payload.get("rolling_mae"),
                    "n_labelled": payload.get("n_labelled"),
                    "meets_thresholds": payload.get("meets_thresholds"),
                }
        return metrics

    def _promote(self, rec: Dict[str, Any]) -> None:
        # Caller holds the lock.
        assert self._cycle is not None
        candidate = self._cycle["candidate"]
        self._set_state(
            PipelineState.PROMOTING,
            note=f"flipping {self.config.alias!r} to {candidate}",
        )
        with obs_span("pipeline.promote", candidate=candidate):
            move = self.registry.move_alias(
                self.config.alias,
                candidate,
                reason=rec.get("reason"),
                actor="pipeline",
            )
            entry = self.promotions.append(
                action="promote",
                alias=self.config.alias,
                from_id=move.get("from"),
                to_id=candidate,
                why=str(rec.get("reason")),
                verdict=str(rec.get("recommendation")),
                metrics=self._shadow_metrics(rec),
                actor="pipeline",
            )
        self._cycle["promotion_seq"] = entry["seq"]
        self.hub.clear_shadow()
        self.registry.drop_alias(
            self.config.candidate_alias,
            reason="promoted",
            actor="pipeline",
        )
        # The displaced champion's traffic no longer reflects the new
        # model; the next cycle retrains on traffic it actually served.
        self.buffer.clear()
        _PROMOTIONS.inc()
        self._finish(
            PipelineState.PROMOTED,
            note=f"{self.config.alias!r} -> {candidate}",
        )

    def _abort_candidate(self, why: str) -> None:
        # Caller holds the lock; reject the in-flight candidate.
        self.hub.clear_shadow()
        self.registry.drop_alias(
            self.config.candidate_alias, reason=why, actor="pipeline"
        )
        _REJECTIONS.inc()
        self._finish(PipelineState.REJECTED, note=why)

    def _finish(self, state: PipelineState, note: str) -> None:
        # Caller holds the lock.
        if self._cycle is not None:
            self._cycle["finished_unix"] = self._clock()
            self._cycle["outcome"] = state.value
            self._cycle["note"] = note
            self._cycles.append(self._cycle)
            self._cycle = None
        self.trigger.release()
        self._set_state(state, note=note)

    def _set_state(self, state: PipelineState, note: Optional[str] = None):
        # Caller holds the lock.
        self._state = state
        _G_STATE.set(_STATE_CODES[state])
        self.journal.write(state.value, cycle=self._cycle, note=note)
        if self._events is not None:
            self._events.append(
                {
                    "kind": "pipeline",
                    "stage": state.value,
                    "cycle": (
                        self._cycle["id"] if self._cycle is not None else None
                    ),
                    "note": note,
                }
            )

    # -- rollback --------------------------------------------------------

    def rollback(
        self, to: Optional[str] = None, why: Optional[str] = None
    ) -> Dict[str, Any]:
        """Restore the serving alias to a prior model; re-arm the loop.

        Aborts any in-flight cycle first (its candidate is dropped),
        then delegates the verified alias flip to
        :func:`~repro.pipeline.promotions.perform_rollback`.
        """
        with self._lock:
            if self._state in (
                PipelineState.RETRAINING,
                PipelineState.SHADOWING,
                PipelineState.PROMOTING,
            ):
                self._abort_candidate("rollback requested mid-cycle")
            entry = perform_rollback(
                self.registry,
                self.promotions,
                alias=self.config.alias,
                to=to,
                why=why,
                actor="pipeline",
            )
            _ROLLBACKS.inc()
            self._pending_retry = False
            self.trigger.release()
            self._set_state(
                PipelineState.ROLLED_BACK,
                note=f"{self.config.alias!r} -> {entry['to']}",
            )
            return entry

    # -- crash-safe resume ----------------------------------------------

    def _resume(self) -> None:
        journalled = self.journal.read()
        if journalled is None:
            return
        state = journalled.get("state")
        cycle = journalled.get("cycle")
        candidate = cycle.get("candidate") if isinstance(cycle, dict) else None
        champion = cycle.get("champion") if isinstance(cycle, dict) else None
        if state == PipelineState.SHADOWING.value and candidate:
            try:
                self.hub.set_shadow(self.config.alias, candidate)
            except ModelNotFound:
                self._set_state(
                    PipelineState.IDLE,
                    note=f"resume: candidate {candidate} gone, cycle aborted",
                )
                return
            self._cycle = dict(cycle)
            self._state = PipelineState.SHADOWING
            self.trigger.hold()  # the interrupted cycle is still in flight
            self._set_state(
                PipelineState.SHADOWING,
                note=f"resume: shadowing candidate {candidate}",
            )
        elif state == PipelineState.RETRAINING.value:
            # The fit never published (publish precedes the SHADOWING
            # journal write), so there is nothing to salvage.
            self._set_state(
                PipelineState.IDLE,
                note="resume: retrain interrupted, cycle aborted",
            )
        elif state == PipelineState.PROMOTING.value and candidate:
            # The flip may or may not have landed; the registry knows.
            current = self._champion_id()
            if current == candidate:
                last = self.promotions.last_entry(alias=self.config.alias)
                if not (last and last.get("to") == candidate):
                    # Alias flipped but the trail write was lost:
                    # record a recovery entry so the trail stays the
                    # system of record.
                    self.promotions.append(
                        action="promote",
                        alias=self.config.alias,
                        from_id=champion,
                        to_id=candidate,
                        why="recovered from interrupted promotion",
                        verdict="promote_challenger",
                        actor="pipeline-resume",
                    )
                self.registry.drop_alias(
                    self.config.candidate_alias,
                    reason="promoted (recovered)",
                    actor="pipeline-resume",
                )
                self._set_state(
                    PipelineState.PROMOTED,
                    note=f"resume: promotion of {candidate} had landed",
                )
            else:
                self.registry.drop_alias(
                    self.config.candidate_alias,
                    reason="promotion interrupted",
                    actor="pipeline-resume",
                )
                self._set_state(
                    PipelineState.IDLE,
                    note=(
                        f"resume: promotion of {candidate} never landed, "
                        f"cycle aborted"
                    ),
                )
        else:
            # Terminal or idle states carry nothing to resume; start
            # armed from where the journal left off.
            try:
                self._state = PipelineState(state)
            except ValueError:
                self._state = PipelineState.IDLE

    # -- reading ---------------------------------------------------------

    @property
    def state(self) -> PipelineState:
        with self._lock:
            return self._state

    def report(self) -> Dict[str, Any]:
        """JSON-ready rollup for ``/v1/pipeline`` and the status doc."""
        with self._lock:
            state = self._state
            cycle = dict(self._cycle) if self._cycle is not None else None
            recent = [dict(c) for c in self._cycles]
            pending_retry = self._pending_retry
            keep_streak = self._keep_streak
            shadow_records = self._shadow_records
        try:
            chain_length = self.promotions.verify()
            chain_valid = True
        except Exception:
            chain_length = len(self.promotions.entries())
            chain_valid = False
        tail = self.promotions.entries()[-5:]
        return {
            "armed": True,
            "state": state.value,
            "alias": self.config.alias,
            "candidate_alias": self.config.candidate_alias,
            "champion": self._champion_id(),
            "cycle": cycle,
            "recent_cycles": recent,
            "pending_retry": pending_retry,
            "shadow": {
                "keep_streak": keep_streak,
                "records_observed": shadow_records,
                "budget_records": self.config.shadow_budget_records,
            },
            "buffer": {
                "capacity": self.buffer.capacity,
                "n": self.buffer.n,
                "total_seen": self.buffer.total_seen,
                "min_retrain_rows": self.config.min_retrain_rows,
            },
            "trigger": {
                "fired": self.trigger.fired,
                "suppressed": self.trigger.suppressed,
                "in_flight": self.trigger.in_flight,
            },
            "promotions": {
                "path": str(self.promotions.path),
                "entries": chain_length,
                "chain_valid": chain_valid,
                "tail": tail,
            },
            "journal": str(self.journal.path),
        }
