"""Hash-chained, append-only promotion audit trail.

Every alias flip the pipeline performs — promotion or rollback — is
recorded as one JSON line in ``promotions.jsonl``.  Entries form a
hash chain: each embeds the SHA-256 of its predecessor
(``prev_hash``, genesis ``"0" * 64``) and its own hash over the
canonical JSON of everything *except* the ``hash`` field, so any
edit, deletion, or reordering anywhere in the file breaks
verification from that point on.  :meth:`PromotionLog.verify` walks
the chain and raises :class:`PromotionChainError` with the offending
sequence number.

The trail is the system of record for "what served as ``latest`` and
why": ``repro promotions`` prints it, ``repro rollback`` derives its
default target from it, and ``repro registry gc`` treats every model
id it mentions as reachable (so a rollback target can never be
collected).
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

__all__ = [
    "PROMOTIONS_SCHEMA",
    "GENESIS_HASH",
    "PromotionChainError",
    "PromotionLog",
    "perform_rollback",
]

PROMOTIONS_SCHEMA = "repro-promotion-v1"

#: The prev_hash of the first entry in a chain.
GENESIS_HASH = "0" * 64


class PromotionChainError(Exception):
    """The promotion trail failed hash-chain verification."""


def _entry_hash(entry: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical JSON of the entry minus its hash."""
    body = {k: v for k, v in entry.items() if k != "hash"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class PromotionLog:
    """Append-only JSONL log whose entries form a hash chain."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()

    # -- writing ---------------------------------------------------------

    def append(
        self,
        action: str,
        alias: str,
        from_id: Optional[str],
        to_id: str,
        why: str,
        verdict: Optional[str] = None,
        metrics: Optional[Mapping[str, Any]] = None,
        actor: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Record one alias flip; returns the appended entry."""
        with self._lock:
            tail = self._entries_unlocked()
            prev_hash = tail[-1]["hash"] if tail else GENESIS_HASH
            entry: Dict[str, Any] = {
                "schema": PROMOTIONS_SCHEMA,
                "seq": len(tail),
                "action": action,
                "alias": alias,
                "from": from_id,
                "to": to_id,
                "why": why,
                "verdict": verdict,
                "metrics": dict(metrics) if metrics is not None else None,
                "actor": actor,
                "unix_time": time.time(),
                "prev_hash": prev_hash,
            }
            entry["hash"] = _entry_hash(entry)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
                handle.flush()
        return entry

    # -- reading ---------------------------------------------------------

    def _entries_unlocked(self) -> List[Dict[str, Any]]:
        if not self.path.is_file():
            return []
        entries: List[Dict[str, Any]] = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise PromotionChainError(
                    f"unparseable promotion entry after seq "
                    f"{len(entries) - 1}: {error}"
                ) from None
            if isinstance(payload, dict):
                entries.append(payload)
        return entries

    def entries(self) -> List[Dict[str, Any]]:
        """Every recorded entry, oldest first."""
        with self._lock:
            return self._entries_unlocked()

    def verify(self) -> int:
        """Walk the hash chain; returns the entry count or raises."""
        entries = self.entries()
        prev_hash = GENESIS_HASH
        for i, entry in enumerate(entries):
            if entry.get("seq") != i:
                raise PromotionChainError(
                    f"entry {i}: sequence number is {entry.get('seq')!r}, "
                    f"expected {i} (entry removed or reordered)"
                )
            if entry.get("prev_hash") != prev_hash:
                raise PromotionChainError(
                    f"entry {i}: prev_hash does not match the hash of "
                    f"entry {i - 1} (chain broken)"
                )
            expected = _entry_hash(entry)
            if entry.get("hash") != expected:
                raise PromotionChainError(
                    f"entry {i}: recorded hash does not match its "
                    f"content (entry tampered)"
                )
            prev_hash = entry["hash"]
        return len(entries)

    def last_entry(
        self, alias: Optional[str] = None
    ) -> Optional[Dict[str, Any]]:
        """The newest entry (optionally restricted to one alias)."""
        for entry in reversed(self.entries()):
            if alias is None or entry.get("alias") == alias:
                return entry
        return None

    def rollback_target(self, alias: str = "latest") -> Optional[str]:
        """The model id a default rollback of ``alias`` would restore."""
        last = self.last_entry(alias=alias)
        if last is None:
            return None
        target = last.get("from")
        return str(target) if target else None

    def model_ids(self) -> List[str]:
        """Every model id the trail mentions (gc reachability set)."""
        ids = []
        for entry in self.entries():
            for key in ("from", "to"):
                value = entry.get(key)
                if value and value not in ids:
                    ids.append(value)
        return ids


def perform_rollback(
    registry,
    log: PromotionLog,
    alias: str = "latest",
    to: Optional[str] = None,
    why: Optional[str] = None,
    actor: Optional[str] = None,
) -> Dict[str, Any]:
    """Restore ``alias`` to a prior model and record it on the trail.

    Without ``to``, the target is the ``from`` side of the trail's
    newest entry for the alias — i.e. undo the most recent flip.  The
    chain is verified first: a tampered trail must not silently steer
    a rollback.  Returns the appended trail entry.
    """
    log.verify()
    target = to
    if target is None:
        target = log.rollback_target(alias)
        if target is None:
            raise PromotionChainError(
                f"no promotion entry for alias {alias!r} records a prior "
                f"model to roll back to; use an explicit --to <model_id>"
            )
    target = registry.resolve(target)  # raises ModelNotFound if gone
    move = registry.move_alias(
        alias,
        target,
        reason=why or "rollback",
        actor=actor,
    )
    return log.append(
        action="rollback",
        alias=alias,
        from_id=move.get("from"),
        to_id=target,
        why=why or "operator rollback",
        actor=actor,
    )
