"""Crash-safe journal of the orchestrator's current state.

One small JSON document, rewritten atomically (tempfile +
``os.replace``) on every state change.  A restarted orchestrator reads
it to decide whether the previous process died mid-cycle and what to
do about it — resume shadowing, abort a half-done retrain, or
reconcile a promotion that may or may not have landed (see
``PipelineOrchestrator._resume``).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = ["JOURNAL_SCHEMA", "PipelineJournal"]

JOURNAL_SCHEMA = "repro-pipeline-journal-v1"


class PipelineJournal:
    """Atomic single-document journal for one orchestrator."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def write(
        self,
        state: str,
        cycle: Optional[Dict[str, Any]] = None,
        note: Optional[str] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "schema": JOURNAL_SCHEMA,
            "state": state,
            "cycle": dict(cycle) if cycle is not None else None,
            "note": note,
            "unix_time": time.time(),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(payload, sort_keys=True, indent=2))
            os.replace(tmp, self.path)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise
        return payload

    def read(self) -> Optional[Dict[str, Any]]:
        """The journalled document, or None if absent/unparseable.

        An unparseable journal (torn write from a crash before the
        atomic-replace discipline existed, disk corruption) is treated
        as no journal: the orchestrator starts idle rather than
        refusing to start.
        """
        if not self.path.is_file():
            return None
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema") != JOURNAL_SCHEMA:
            return None
        return payload
