"""Offline end-to-end replay of the full MLOps loop.

``repro pipeline run <train_suite> <traffic_suite>`` is this module:
it publishes a model trained on one suite, then replays another
suite's data as its live traffic — the PR-4 drift scenario where the
cross-suite battery trips ``transfer_failed`` around record 192 — and
lets the armed :class:`~repro.pipeline.orchestrator
.PipelineOrchestrator` carry the remediation with zero manual steps:
retrain on the buffered traffic, shadow the candidate, promote it,
and watch the new champion's verdict recover.

The traffic array is *cycled*: real traffic does not run out, and at
small ``--scale`` the suite split alone is shorter than one
detect→promote cycle.  Every batch re-resolves the serving alias
before predicting, exactly as the serving engine does per request —
so the replay exercises the same hot-swap semantics: the batch in
flight when the alias flips still ran against the old champion, the
next batch serves the new one.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Optional, TextIO

from repro.drift.hub import DriftHub
from repro.drift.monitor import DriftMonitorConfig, DriftVerdict, LogSink
from repro.experiments.config import ExperimentConfig
from repro.experiments.context import ExperimentContext
from repro.pipeline.orchestrator import (
    PipelineConfig,
    PipelineOrchestrator,
    PipelineState,
)

__all__ = ["run_pipeline_replay"]


def run_pipeline_replay(
    registry,
    train_suite: str,
    traffic_suite: str,
    config: Optional[ExperimentConfig] = None,
    cache_dir: Optional[str] = None,
    window: int = 256,
    stream_batch: int = 64,
    max_records: int = 8192,
    out: Optional[TextIO] = None,
) -> Dict[str, Any]:
    """Drive detect → retrain → shadow → promote on replayed traffic.

    Returns a JSON-ready summary; ``summary["promoted"]`` is the
    success criterion the CLI maps to its exit code.
    """
    out = out if out is not None else sys.stdout
    config = config or ExperimentConfig()
    ctx = ExperimentContext(config, cache_dir=cache_dir)

    tree = ctx.tree(train_suite)
    train = ctx.train_set(train_suite)
    champion = registry.publish(
        tree,
        metadata={
            "suite": train_suite,
            "origin": "pipeline-replay",
            "n_train": len(train),
            "train_y": {
                "n": len(train),
                "mean": float(train.y.mean()),
                "var": float(train.y.var(ddof=1)),
            },
        },
        aliases=("latest",),
    )
    hub = DriftHub(
        registry,
        DriftMonitorConfig(window=window),
        actions=(LogSink(stream=out),),
    )
    orchestrator = PipelineOrchestrator(
        registry,
        hub,
        # Scale the retrain gate with the replay's window the same way
        # the default (384 = 1.5 x 256) scales with the default window.
        config=PipelineConfig(
            tree=config.tree,
            min_retrain_rows=max(128, (3 * window) // 2),
        ),
    )
    # Cross-suite traffic uses the other suite's training-sized pool,
    # same split discipline as E7/E8 and 'repro monitor'.
    traffic = (
        ctx.test_set(traffic_suite)
        if traffic_suite == train_suite
        else ctx.train_set(traffic_suite)
    )
    print(
        f"champion {champion.model_id} ({ctx.suite_label(train_suite)}); "
        f"cycling {len(traffic)} {ctx.suite_label(traffic_suite)} intervals "
        f"as traffic (window={window}, batch={stream_batch}, "
        f"budget={max_records} records)",
        file=out,
    )

    last_state = orchestrator.state
    records = 0
    n = len(traffic)
    pos = 0
    while records < max_records:
        end = min(pos + stream_batch, n)
        Xb, yb = traffic.X[pos:end], traffic.y[pos:end]
        pos = end % n
        # Resolve-then-predict per batch, the engine's own discipline:
        # this is where a promotion becomes visible to traffic.
        model_id = registry.resolve("latest")
        _, serving_tree = registry.load(model_id)
        hub.observe(model_id, Xb, serving_tree.predict(Xb), yb)
        records += len(yb)
        state = orchestrator.state
        if state is not last_state:
            print(
                f"  record {records:>7d}: pipeline "
                f"{last_state.value} -> {state.value}",
                file=out,
            )
            last_state = state
        if state is PipelineState.PROMOTED:
            # Keep streaming until the promoted champion's own monitor
            # confirms recovery (or the budget runs out).
            new_id = registry.resolve("latest")
            if hub.monitor_for(new_id).verdict is DriftVerdict.OK:
                break

    final_id = registry.resolve("latest")
    chain = orchestrator.promotions.entries()
    orchestrator.promotions.verify()
    promoted = (
        orchestrator.state is PipelineState.PROMOTED
        and final_id != champion.model_id
    )
    print(
        f"replayed {records} records; pipeline state "
        f"{orchestrator.state.value}; 'latest' -> {final_id} "
        f"(champion was {champion.model_id})",
        file=out,
    )
    print(
        f"promotion trail: {len(chain)} entr"
        f"{'y' if len(chain) == 1 else 'ies'}, hash chain verified",
        file=out,
    )
    for entry in chain:
        print(
            f"  #{entry['seq']} {entry['action']}: {entry['from']} -> "
            f"{entry['to']} ({entry['why']})",
            file=out,
        )
    if promoted:
        print(
            f"final verdict on promoted model: "
            f"{hub.monitor_for(final_id).verdict.value}",
            file=out,
        )
    return {
        "promoted": promoted,
        "state": orchestrator.state.value,
        "records": records,
        "initial_champion": champion.model_id,
        "final_champion": final_id,
        "promotions": chain,
        "report": orchestrator.report(),
    }
