"""Bounded ring buffer of labelled traffic rows for retraining.

The drift monitor's :class:`~repro.drift.window.StreamWindow` keeps
only sufficient statistics — deliberately, for fixed memory — but a
retrain needs the raw ``(X, y)`` rows.  :class:`TrafficBuffer` hangs
off the :class:`~repro.drift.hub.DriftHub` as a tap, so it sees every
observed batch *before* the monitor evaluates it: the batch that trips
``transfer_failed`` is part of the retrain data, not lost to ordering.

Only labelled rows (finite actual CPI) are kept: a model can only be
refitted against traffic whose ground truth arrived.  Capacity bounds
memory the same way the monitor window does — oldest rows are
overwritten first.
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple

import numpy as np

__all__ = ["TrafficBuffer"]


class TrafficBuffer:
    """Fixed-capacity ring of labelled ``(features, actual)`` rows."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._X: Optional[np.ndarray] = None  # (capacity, n_features)
        self._y: Optional[np.ndarray] = None  # (capacity,)
        self._head = 0  # next slot to write
        self._n = 0  # rows currently held
        self._total_seen = 0  # labelled rows ever offered

    def extend(self, X, actuals=None) -> int:
        """Append the labelled rows of one batch; returns rows kept."""
        if actuals is None:
            return 0
        X = np.asarray(X, dtype=float)
        y = np.asarray(actuals, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] != y.size:
            raise ValueError(
                f"X must be 2-D with one row per actual, got X {X.shape} "
                f"vs {y.size} actuals"
            )
        keep = np.isfinite(y)
        if not keep.all():
            X, y = X[keep], y[keep]
        if y.size == 0:
            return 0
        with self._lock:
            if self._X is None:
                self._X = np.empty((self.capacity, X.shape[1]), dtype=float)
                self._y = np.empty(self.capacity, dtype=float)
            elif X.shape[1] != self._X.shape[1]:
                raise ValueError(
                    f"row width changed: buffer holds "
                    f"{self._X.shape[1]}-feature rows, got {X.shape[1]}"
                )
            rows_x, rows_y = X, y
            if rows_y.size > self.capacity:
                # Only the newest `capacity` rows can survive anyway.
                rows_x = rows_x[-self.capacity:]
                rows_y = rows_y[-self.capacity:]
            first = min(rows_y.size, self.capacity - self._head)
            self._X[self._head:self._head + first] = rows_x[:first]
            self._y[self._head:self._head + first] = rows_y[:first]
            rest = rows_y.size - first
            if rest:
                self._X[:rest] = rows_x[first:]
                self._y[:rest] = rows_y[first:]
            self._head = (self._head + rows_y.size) % self.capacity
            self._n = min(self._n + rows_y.size, self.capacity)
            self._total_seen += int(y.size)
        return int(y.size)

    def labelled(self) -> Tuple[np.ndarray, np.ndarray]:
        """Copies of the held rows, oldest first."""
        with self._lock:
            if self._X is None or self._n == 0:
                return np.empty((0, 0)), np.empty(0)
            if self._n < self.capacity:
                # Buffer not yet wrapped: rows 0..n are already ordered.
                return self._X[: self._n].copy(), self._y[: self._n].copy()
            order = np.r_[self._head:self.capacity, 0:self._head]
            return self._X[order].copy(), self._y[order].copy()

    def clear(self) -> None:
        """Drop every held row (a promoted model starts fresh)."""
        with self._lock:
            self._head = 0
            self._n = 0

    @property
    def n(self) -> int:
        with self._lock:
            return self._n

    @property
    def total_seen(self) -> int:
        with self._lock:
            return self._total_seen

    def __repr__(self) -> str:
        return (
            f"TrafficBuffer(capacity={self.capacity}, n={self.n}, "
            f"total_seen={self.total_seen})"
        )
