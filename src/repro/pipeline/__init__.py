"""The MLOps loop: retrain → shadow → promote → rollback.

:mod:`repro.drift` *detects* that a served model stopped transferring
(the paper's Section VI result, live); this package *remediates* it:

* :mod:`~repro.pipeline.buffer` — bounded raw-traffic ring the
  retrain fits against.
* :mod:`~repro.pipeline.orchestrator` — the event-driven state
  machine (idle → retraining → shadowing → promoting →
  promoted | rejected | rolled_back) wired into the drift hub.
* :mod:`~repro.pipeline.promotions` — hash-chained, append-only
  promotion audit trail plus one-command rollback.
* :mod:`~repro.pipeline.journal` — crash-safe orchestrator state.
* :mod:`~repro.pipeline.gc` — registry garbage collection that never
  collects anything the trail (hence a rollback) can still reach.
* :mod:`~repro.pipeline.replay` — offline end-to-end replay
  (``repro pipeline run``).
"""

from repro.pipeline.buffer import TrafficBuffer
from repro.pipeline.gc import collect_garbage
from repro.pipeline.journal import JOURNAL_SCHEMA, PipelineJournal
from repro.pipeline.orchestrator import (
    PipelineConfig,
    PipelineOrchestrator,
    PipelineState,
)
from repro.pipeline.promotions import (
    GENESIS_HASH,
    PROMOTIONS_SCHEMA,
    PromotionChainError,
    PromotionLog,
    perform_rollback,
)
from repro.pipeline.replay import run_pipeline_replay

__all__ = [
    "TrafficBuffer",
    "collect_garbage",
    "JOURNAL_SCHEMA",
    "PipelineJournal",
    "PipelineConfig",
    "PipelineOrchestrator",
    "PipelineState",
    "GENESIS_HASH",
    "PROMOTIONS_SCHEMA",
    "PromotionChainError",
    "PromotionLog",
    "perform_rollback",
    "run_pipeline_replay",
]
