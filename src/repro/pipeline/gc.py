"""Registry garbage collection over the promotion trail.

A long-running pipeline accumulates candidates: every retrain
publishes a model, and rejected candidates lose their alias but keep
their artifacts.  ``repro registry gc`` removes artifacts that are
unreachable from

* any current alias, or
* any model id the promotion trail mentions (either side of any
  promote/rollback entry) — which makes the default rollback target
  structurally uncollectable, since it is by definition the ``from``
  side of the trail's newest entry.

A ``--dry-run`` reports the plan without deleting anything.
"""

from __future__ import annotations

import shutil
from typing import Any, Dict, List, Optional, Set

from repro.pipeline.promotions import PromotionLog

__all__ = ["collect_garbage"]


def _tree_bytes(path) -> int:
    return sum(f.stat().st_size for f in path.rglob("*") if f.is_file())


def collect_garbage(
    registry,
    promotions: Optional[PromotionLog] = None,
    dry_run: bool = False,
) -> Dict[str, Any]:
    """Remove (or plan removal of) unreachable model artifacts.

    Returns a JSON-ready report: reachable/unreachable ids, bytes
    freed (or freeable), and whether anything was actually deleted.
    """
    if promotions is None:
        promotions = PromotionLog(registry.root / "promotions.jsonl")
    reachable: Set[str] = set(registry.aliases().values())
    trail_ids = promotions.model_ids()
    reachable.update(trail_ids)
    # Belt and braces: even if the trail is rewritten, the *current*
    # rollback target must survive a gc run.
    rollback_target = promotions.rollback_target()
    if rollback_target is not None:
        reachable.add(rollback_target)
    all_ids = [record.model_id for record in registry.list_records()]
    unreachable = [mid for mid in all_ids if mid not in reachable]
    removed: List[Dict[str, Any]] = []
    bytes_total = 0
    for model_id in unreachable:
        model_dir = registry.root / "models" / model_id
        size = _tree_bytes(model_dir)
        bytes_total += size
        removed.append({"model_id": model_id, "bytes": size})
        if not dry_run:
            shutil.rmtree(model_dir)
            registry.evict(model_id)
    return {
        "dry_run": dry_run,
        "models_total": len(all_ids),
        "reachable": sorted(mid for mid in all_ids if mid in reachable),
        "rollback_target": rollback_target,
        "collected": removed,
        "bytes_freed": bytes_total,
    }
