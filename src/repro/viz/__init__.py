"""Dependency-free ASCII visualization.

The experiment reports are plain text; these helpers render the
figure-like views (CPI distributions, predicted-vs-actual scatter,
share bars) directly into them without any plotting dependency.
"""

from repro.viz.ascii_plots import bar_chart, histogram, scatter, sparkline

__all__ = ["bar_chart", "histogram", "scatter", "sparkline"]
