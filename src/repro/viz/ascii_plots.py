"""ASCII histograms, scatter plots, bar charts and sparklines."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["histogram", "scatter", "bar_chart", "sparkline"]

#: Density ramp for sparklines, lowest to highest.  Pure ASCII so the
#: same string renders in a terminal, a log file and a ``<pre>`` block.
SPARK_LEVELS = " .:-=+*#%@"


def _check_values(values: Sequence[float], label: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"{label} must be a non-empty 1-D sequence")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{label} contains NaN or infinite values")
    return arr


def histogram(
    values: Sequence[float],
    bins: int = 20,
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal ASCII histogram.

    Each row is one bin: ``[lo, hi) count |#####``.
    """
    arr = _check_values(values, "values")
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    counts, edges = np.histogram(arr, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = [title] if title else []
    label_width = max(
        len(f"{edges[i]:.3g}") + len(f"{edges[i + 1]:.3g}") + 4
        for i in range(bins)
    )
    for i in range(bins):
        label = f"[{edges[i]:.3g}, {edges[i + 1]:.3g})".ljust(label_width)
        bar = "#" * int(round(width * counts[i] / peak))
        lines.append(f"{label} {counts[i]:>7d} |{bar}")
    return "\n".join(lines)


def scatter(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 60,
    height: int = 20,
    title: str = "",
    diagonal: bool = False,
) -> str:
    """Character-grid scatter plot.

    Density is rendered with ``. : * #`` (1, 2-3, 4-7, 8+ points per
    cell).  With ``diagonal`` the y = x line is drawn (for
    predicted-vs-actual plots, the perfect-prediction locus).
    """
    ax = _check_values(x, "x")
    ay = _check_values(y, "y")
    if ax.size != ay.size:
        raise ValueError(f"length mismatch: {ax.size} vs {ay.size}")
    if width < 2 or height < 2:
        raise ValueError("width and height must be >= 2")
    lo_x, hi_x = float(ax.min()), float(ax.max())
    lo_y, hi_y = float(ay.min()), float(ay.max())
    if diagonal:
        lo = min(lo_x, lo_y)
        hi = max(hi_x, hi_y)
        lo_x = lo_y = lo
        hi_x = hi_y = hi
    span_x = (hi_x - lo_x) or 1.0
    span_y = (hi_y - lo_y) or 1.0
    grid = np.zeros((height, width), dtype=int)
    cols = np.minimum(((ax - lo_x) / span_x * (width - 1)).astype(int), width - 1)
    rows = np.minimum(((ay - lo_y) / span_y * (height - 1)).astype(int), height - 1)
    for r, c in zip(rows, cols):
        grid[height - 1 - r, c] += 1
    glyphs = np.full(grid.shape, " ", dtype="<U1")
    glyphs[grid >= 1] = "."
    glyphs[grid >= 2] = ":"
    glyphs[grid >= 4] = "*"
    glyphs[grid >= 8] = "#"
    if diagonal:
        for c in range(width):
            r = int(round(c / (width - 1) * (height - 1)))
            row_index = height - 1 - r
            if glyphs[row_index, c] == " ":
                glyphs[row_index, c] = "/"
    lines = [title] if title else []
    lines.append(f"{hi_y:.3g}".rjust(9) + " +" + "-" * width + "+")
    for row in glyphs:
        lines.append(" " * 9 + " |" + "".join(row) + "|")
    lines.append(f"{lo_y:.3g}".rjust(9) + " +" + "-" * width + "+")
    lines.append(
        " " * 11 + f"{lo_x:.3g}".ljust(width // 2) + f"{hi_x:.3g}".rjust(width // 2)
    )
    return "\n".join(lines)


def sparkline(
    values: Sequence[float],
    width: int = 60,
    levels: str = SPARK_LEVELS,
) -> str:
    """One-line trend glyph string: min maps to the first level glyph,
    max to the last.

    Non-finite values render as spaces.  Series longer than ``width``
    keep the most recent ``width`` points (a sparkline is a recency
    display); shorter series render at their natural length.  An empty
    series renders as an empty string, a constant one as mid-level
    glyphs — both useful for dashboards that start cold.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if len(levels) < 2:
        raise ValueError("levels must provide at least 2 glyphs")
    arr = np.asarray(list(values), dtype=float)
    if arr.ndim != 1:
        raise ValueError("values must be a 1-D sequence")
    if arr.size == 0:
        return ""
    arr = arr[-width:]
    finite = np.isfinite(arr)
    if not finite.any():
        return " " * arr.size
    lo = float(arr[finite].min())
    hi = float(arr[finite].max())
    span = hi - lo
    glyphs = []
    for value, ok in zip(arr, finite):
        if not ok:
            glyphs.append(" ")
        elif span == 0.0:
            glyphs.append(levels[len(levels) // 2])
        else:
            index = int((value - lo) / span * (len(levels) - 1))
            glyphs.append(levels[index])
    return "".join(glyphs)


def bar_chart(
    shares: Mapping[str, float],
    width: int = 50,
    title: str = "",
    fmt: str = "{:.1f}",
) -> str:
    """Horizontal labeled bar chart (e.g. LM shares, importances)."""
    if not shares:
        raise ValueError("shares must be non-empty")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    values = {k: float(v) for k, v in shares.items()}
    peak = max(abs(v) for v in values.values()) or 1.0
    label_width = max(len(str(k)) for k in values)
    value_width = max(len(fmt.format(v)) for v in values.values())
    lines = [title] if title else []
    for key, value in values.items():
        bar = "#" * int(round(width * abs(value) / peak))
        lines.append(
            f"{str(key).ljust(label_width)} "
            f"{fmt.format(value).rjust(value_width)} |{bar}"
        )
    return "\n".join(lines)
