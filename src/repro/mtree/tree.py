"""The M5' model tree.

:class:`ModelTree` ties the pieces together: SDR growth
(:mod:`repro.mtree.splitting`), leaf models with attribute elimination
(:mod:`repro.mtree.linear`), bottom-up pruning
(:mod:`repro.mtree.pruning`) and prediction smoothing
(:mod:`repro.mtree.smoothing`).  After fitting, leaves are named LM1,
LM2, ... left-to-right exactly as in the paper's Figures 1 and 2, and
:meth:`ModelTree.assign_leaves` classifies arbitrary samples into
those models — the operation behind Tables II and IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.datasets.dataset import SampleSet
from repro.mtree.linear import LinearModel, fit_linear_model
from repro.mtree.pruning import (
    combine_subtree_errors,
    node_model_error,
    should_prune,
)
from repro.mtree.smoothing import SMOOTHING_K, smoothed_combine
from repro.mtree.splitting import find_best_split

__all__ = ["ModelTreeConfig", "LeafNode", "SplitNode", "ModelTree"]


@dataclass(frozen=True)
class ModelTreeConfig:
    """M5' hyperparameters.

    ``min_leaf`` is WEKA's -M (minimum instances per leaf);
    ``sd_threshold`` stops splitting once a node's target deviation
    falls below that fraction of the root's (M5's 5% rule);
    ``smooth`` enables Quinlan's prediction smoothing;
    ``penalty`` scales the parameter-count term of the adjusted error.
    The paper "varied M5' parameters to achieve a balance between
    tractable model size and good prediction accuracy" — these are the
    parameters it varied.
    """

    min_leaf: int = 25
    sd_threshold: float = 0.05
    max_depth: int = 12
    prune: bool = True
    smooth: bool = True
    smoothing_k: float = SMOOTHING_K
    eliminate: bool = True
    penalty: float = 4.0

    def __post_init__(self) -> None:
        if self.min_leaf < 1:
            raise ValueError(f"min_leaf must be >= 1, got {self.min_leaf}")
        if not 0.0 <= self.sd_threshold < 1.0:
            raise ValueError(
                f"sd_threshold must be in [0, 1), got {self.sd_threshold}"
            )
        if self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.smoothing_k < 0:
            raise ValueError(
                f"smoothing_k must be non-negative, got {self.smoothing_k}"
            )


@dataclass
class LeafNode:
    """A leaf: one linear model plus its training statistics."""

    model: LinearModel
    n_samples: int
    mean_y: float
    name: str = ""
    share: float = 0.0  # fraction of training samples, filled after fit


@dataclass
class SplitNode:
    """An interior node: a threshold test plus a model for smoothing."""

    feature_index: int
    feature_name: str
    threshold: float
    left: "TreeNode"
    right: "TreeNode"
    model: LinearModel
    n_samples: int
    mean_y: float
    share: float = 0.0


TreeNode = Union[LeafNode, SplitNode]


class ModelTree:
    """An M5' regression model tree.

    Typical use::

        tree = ModelTree(ModelTreeConfig(min_leaf=40))
        tree.fit_sample_set(train)
        predictions = tree.predict(test.X)
        leaf_names = tree.assign_leaves(test.X)
    """

    def __init__(self, config: Optional[ModelTreeConfig] = None) -> None:
        self.config = config or ModelTreeConfig()
        self.feature_names: Tuple[str, ...] = ()
        self.root: Optional[TreeNode] = None
        self.n_train: int = 0
        self._leaves: List[LeafNode] = []

    # -- fitting ---------------------------------------------------------

    def fit(
        self, X: np.ndarray, y: np.ndarray, feature_names: Sequence[str]
    ) -> "ModelTree":
        """Fit the tree to samples ``(X, y)``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        feature_names = tuple(feature_names)
        if X.ndim != 2 or X.shape[1] != len(feature_names):
            raise ValueError(
                f"X shape {X.shape} does not match {len(feature_names)} features"
            )
        if y.shape != (X.shape[0],):
            raise ValueError(f"y shape {y.shape} != ({X.shape[0]},)")
        if X.shape[0] < 2:
            raise ValueError("need at least 2 samples to fit a model tree")
        self.feature_names = feature_names
        self.n_train = X.shape[0]
        root_sd = float(np.std(y))
        self.root, _ = self._build(X, y, depth=0, root_sd=root_sd)
        self._finalize()
        return self

    def fit_sample_set(self, data: SampleSet) -> "ModelTree":
        """Fit from a :class:`SampleSet` (CPI as the target)."""
        return self.fit(data.X, data.y, data.feature_names)

    def _constant_leaf(self, y: np.ndarray) -> LeafNode:
        model = LinearModel(
            feature_names=self.feature_names,
            intercept=float(np.mean(y)),
            coef=np.zeros(len(self.feature_names)),
            n_samples=y.size,
            train_mae=float(np.mean(np.abs(y - np.mean(y)))),
        )
        return LeafNode(model=model, n_samples=y.size, mean_y=float(np.mean(y)))

    def _build(
        self, X: np.ndarray, y: np.ndarray, depth: int, root_sd: float
    ) -> Tuple[TreeNode, float]:
        """Grow and (optionally) prune; returns (node, adjusted error)."""
        cfg = self.config
        n = y.size
        stop = (
            n < 2 * cfg.min_leaf
            or depth >= cfg.max_depth
            or float(np.std(y)) < cfg.sd_threshold * root_sd
        )
        split = None if stop else find_best_split(X, y, cfg.min_leaf)
        if split is None:
            leaf = self._constant_leaf(y)
            return leaf, node_model_error(leaf.model, cfg.penalty)

        mask = X[:, split.feature_index] <= split.threshold
        left, left_error = self._build(X[mask], y[mask], depth + 1, root_sd)
        right, right_error = self._build(X[~mask], y[~mask], depth + 1, root_sd)

        candidates = sorted(
            self._subtree_features(left)
            | self._subtree_features(right)
            | {self.feature_names[split.feature_index]}
        )
        model = fit_linear_model(
            X,
            y,
            self.feature_names,
            candidate_features=candidates,
            eliminate=cfg.eliminate,
            penalty=cfg.penalty,
        )
        model_error = node_model_error(model, cfg.penalty)
        subtree_error = combine_subtree_errors(
            left_error, self._node_n(left), right_error, self._node_n(right)
        )
        if cfg.prune and should_prune(model_error, subtree_error):
            leaf = LeafNode(model=model, n_samples=n, mean_y=float(np.mean(y)))
            return leaf, model_error
        node = SplitNode(
            feature_index=split.feature_index,
            feature_name=self.feature_names[split.feature_index],
            threshold=split.threshold,
            left=left,
            right=right,
            model=model,
            n_samples=n,
            mean_y=float(np.mean(y)),
        )
        return node, subtree_error

    @staticmethod
    def _node_n(node: TreeNode) -> int:
        return node.n_samples

    def _subtree_features(self, node: TreeNode) -> set:
        """Features used by splits or models anywhere in the subtree."""
        if isinstance(node, LeafNode):
            return set(node.model.active_features())
        return (
            {node.feature_name}
            | set(node.model.active_features())
            | self._subtree_features(node.left)
            | self._subtree_features(node.right)
        )

    def _finalize(self) -> None:
        """Name leaves LM1..LMk left-to-right and fill share fields."""
        self._leaves = []

        def visit(node: TreeNode) -> None:
            node.share = node.n_samples / self.n_train
            if isinstance(node, LeafNode):
                node.name = f"LM{len(self._leaves) + 1}"
                self._leaves.append(node)
            else:
                visit(node.left)
                visit(node.right)

        assert self.root is not None
        visit(self.root)

    def _finalize_from_loaded(self) -> None:
        """Rebuild the leaf list of a deserialized tree (names kept)."""
        self._leaves = []

        def visit(node: TreeNode) -> None:
            if isinstance(node, LeafNode):
                self._leaves.append(node)
            else:
                visit(node.left)
                visit(node.right)

        visit(self._require_fitted())

    # -- introspection ---------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self.root is not None

    def _require_fitted(self) -> TreeNode:
        if self.root is None:
            raise RuntimeError("model tree is not fitted yet")
        return self.root

    def leaves(self) -> List[LeafNode]:
        """All leaves, left-to-right (LM1 first)."""
        self._require_fitted()
        return list(self._leaves)

    def leaf_names(self) -> List[str]:
        return [leaf.name for leaf in self.leaves()]

    @property
    def n_leaves(self) -> int:
        return len(self.leaves())

    def leaf(self, name: str) -> LeafNode:
        """Look up a leaf by its LM name."""
        for candidate in self.leaves():
            if candidate.name == name:
                return candidate
        raise KeyError(f"no leaf named {name!r}; have {self.leaf_names()}")

    def depth(self) -> int:
        """Maximum depth (a lone leaf has depth 0)."""

        def measure(node: TreeNode) -> int:
            if isinstance(node, LeafNode):
                return 0
            return 1 + max(measure(node.left), measure(node.right))

        return measure(self._require_fitted())

    def split_features(self) -> Dict[str, int]:
        """How many split nodes test each feature."""
        counts: Dict[str, int] = {}

        def visit(node: TreeNode) -> None:
            if isinstance(node, SplitNode):
                counts[node.feature_name] = counts.get(node.feature_name, 0) + 1
                visit(node.left)
                visit(node.right)

        visit(self._require_fitted())
        return counts

    def root_split_feature(self) -> Optional[str]:
        """The most discriminating performance factor (root test)."""
        root = self._require_fitted()
        return root.feature_name if isinstance(root, SplitNode) else None

    # -- prediction --------------------------------------------------------

    def _check_X(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != len(self.feature_names):
            raise ValueError(
                f"expected (n, {len(self.feature_names)}) inputs, got {X.shape}"
            )
        return X

    def predict(self, X: np.ndarray, smooth: Optional[bool] = None) -> np.ndarray:
        """Predicted CPI per row; smoothing per config unless overridden."""
        root = self._require_fitted()
        X = self._check_X(X)
        use_smoothing = self.config.smooth if smooth is None else smooth
        out = np.empty(X.shape[0], dtype=float)

        def visit(node: TreeNode, rows: np.ndarray) -> None:
            if rows.size == 0:
                return
            if isinstance(node, LeafNode):
                out[rows] = node.model.predict(X[rows])
                return
            go_left = X[rows, node.feature_index] <= node.threshold
            left_rows = rows[go_left]
            right_rows = rows[~go_left]
            visit(node.left, left_rows)
            visit(node.right, right_rows)
            if use_smoothing and self.config.smoothing_k > 0:
                for child, child_rows in (
                    (node.left, left_rows),
                    (node.right, right_rows),
                ):
                    if child_rows.size:
                        out[child_rows] = smoothed_combine(
                            out[child_rows],
                            child.n_samples,
                            node.model.predict(X[child_rows]),
                            self.config.smoothing_k,
                        )

        visit(root, np.arange(X.shape[0]))
        return out

    def assign_leaves(self, X: np.ndarray) -> np.ndarray:
        """Leaf (LM) name each row is classified into."""
        root = self._require_fitted()
        X = self._check_X(X)
        out = np.empty(X.shape[0], dtype=object)

        def visit(node: TreeNode, rows: np.ndarray) -> None:
            if rows.size == 0:
                return
            if isinstance(node, LeafNode):
                out[rows] = node.name
                return
            go_left = X[rows, node.feature_index] <= node.threshold
            visit(node.left, rows[go_left])
            visit(node.right, rows[~go_left])

        visit(root, np.arange(X.shape[0]))
        return out

    def __repr__(self) -> str:
        if not self.is_fitted:
            return "ModelTree(unfitted)"
        return (
            f"ModelTree(n_leaves={self.n_leaves}, depth={self.depth()}, "
            f"n_train={self.n_train})"
        )
