"""The M5' model tree.

:class:`ModelTree` ties the pieces together: SDR growth
(:mod:`repro.mtree.splitting`), leaf models with attribute elimination
(:mod:`repro.mtree.linear`), bottom-up pruning
(:mod:`repro.mtree.pruning`) and prediction smoothing
(:mod:`repro.mtree.smoothing`).  After fitting, leaves are named LM1,
LM2, ... left-to-right exactly as in the paper's Figures 1 and 2, and
:meth:`ModelTree.assign_leaves` classifies arbitrary samples into
those models — the operation behind Tables II and IV.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.datasets.dataset import SampleSet
from repro.mtree.linear import LinearModel, fit_linear_model
from repro.mtree.pruning import (
    combine_subtree_errors,
    node_model_error,
    should_prune,
)
from repro.mtree.smoothing import SMOOTHING_K, compose_smoothed
from repro.mtree.splitting import best_split_presorted
from repro.obs.metrics import counter
from repro.obs.trace import span as obs_span

__all__ = ["ModelTreeConfig", "LeafNode", "SplitNode", "ModelTree"]


@dataclass(frozen=True)
class ModelTreeConfig:
    """M5' hyperparameters.

    ``min_leaf`` is WEKA's -M (minimum instances per leaf);
    ``sd_threshold`` stops splitting once a node's target deviation
    falls below that fraction of the root's (M5's 5% rule);
    ``smooth`` enables Quinlan's prediction smoothing;
    ``penalty`` scales the parameter-count term of the adjusted error.
    The paper "varied M5' parameters to achieve a balance between
    tractable model size and good prediction accuracy" — these are the
    parameters it varied.
    """

    min_leaf: int = 25
    sd_threshold: float = 0.05
    max_depth: int = 12
    prune: bool = True
    smooth: bool = True
    smoothing_k: float = SMOOTHING_K
    eliminate: bool = True
    penalty: float = 4.0

    def __post_init__(self) -> None:
        if self.min_leaf < 1:
            raise ValueError(f"min_leaf must be >= 1, got {self.min_leaf}")
        if not 0.0 <= self.sd_threshold < 1.0:
            raise ValueError(
                f"sd_threshold must be in [0, 1), got {self.sd_threshold}"
            )
        if self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.smoothing_k < 0:
            raise ValueError(
                f"smoothing_k must be non-negative, got {self.smoothing_k}"
            )


@dataclass
class LeafNode:
    """A leaf: one linear model plus its training statistics."""

    model: LinearModel
    n_samples: int
    mean_y: float
    name: str = ""
    share: float = 0.0  # fraction of training samples, filled after fit


@dataclass
class SplitNode:
    """An interior node: a threshold test plus a model for smoothing."""

    feature_index: int
    feature_name: str
    threshold: float
    left: "TreeNode"
    right: "TreeNode"
    model: LinearModel
    n_samples: int
    mean_y: float
    share: float = 0.0


TreeNode = Union[LeafNode, SplitNode]

#: Trees fitted process-wide; cached instruments keep the per-fit
#: bookkeeping to two integer adds.
_TREES_FITTED = counter("mtree.fits")
_NODES_BUILT = counter("mtree.nodes_built")


class ModelTree:
    """An M5' regression model tree.

    Typical use::

        tree = ModelTree(ModelTreeConfig(min_leaf=40))
        tree.fit_sample_set(train)
        predictions = tree.predict(test.X)
        leaf_names = tree.assign_leaves(test.X)
    """

    def __init__(self, config: Optional[ModelTreeConfig] = None) -> None:
        self.config = config or ModelTreeConfig()
        self.feature_names: Tuple[str, ...] = ()
        self.root: Optional[TreeNode] = None
        self.n_train: int = 0
        self._leaves: List[LeafNode] = []
        self._leaf_by_name: Dict[str, LeafNode] = {}
        # Lazily-built compiled evaluators, keyed by dtype and pinned
        # to the root they were compiled from (refitting replaces the
        # root object, which invalidates the cache by identity).
        self._compiled_root: Optional[TreeNode] = None
        self._compiled_cache: Dict = {}
        # The smoothing-composed twin (see ``_composed``), cached and
        # invalidated the same way.
        self._composed_root: Optional[TreeNode] = None
        self._composed_tree: Optional["ModelTree"] = None
        # Fit-time working state (populated only inside ``fit``).
        self._fit_y: Optional[np.ndarray] = None
        self._fit_XT: Optional[np.ndarray] = None
        self._left_mask: Optional[np.ndarray] = None

    # -- fitting ---------------------------------------------------------

    def fit(
        self, X: np.ndarray, y: np.ndarray, feature_names: Sequence[str]
    ) -> "ModelTree":
        """Fit the tree to samples ``(X, y)``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        feature_names = tuple(feature_names)
        if X.ndim != 2 or X.shape[1] != len(feature_names):
            raise ValueError(
                f"X shape {X.shape} does not match {len(feature_names)} features"
            )
        if y.shape != (X.shape[0],):
            raise ValueError(f"y shape {y.shape} != ({X.shape[0]},)")
        if X.shape[0] < 2:
            raise ValueError("need at least 2 samples to fit a model tree")
        self.feature_names = feature_names
        self.n_train = X.shape[0]
        _TREES_FITTED.inc()
        with obs_span(
            "mtree.fit",
            n_samples=X.shape[0],
            n_features=len(feature_names),
        ) as fit_span:
            root_sd = float(np.std(y))

            # Fit-wide working state for the presorted split search:
            # each feature is stable-sorted ONCE here; `_build`
            # partitions the sorted index arrays at every split instead
            # of re-sorting.
            self._fit_y = y
            self._fit_XT = np.ascontiguousarray(X.T)
            self._left_mask = np.zeros(X.shape[0], dtype=bool)
            # int32 indices halve the bandwidth of every per-node
            # gather; the gathered float64 values are unaffected.
            # Sorting the transposed copy row-wise yields the identical
            # stable permutation as column-sorting X (same sequences,
            # same tie order) but runs on contiguous memory and needs
            # no transpose copy afterwards.
            presorted = np.argsort(
                self._fit_XT, axis=-1, kind="stable"
            ).astype(np.int32)
            # The sorted value/target stacks are gathered once here;
            # every split below partitions them with a boolean take
            # (which keeps both order and bits), so no node re-gathers
            # from X or y.
            values_sorted = self._fit_XT[
                np.arange(X.shape[1])[:, None], presorted
            ]
            try:
                self.root, _ = self._build(
                    np.arange(X.shape[0], dtype=np.int32),
                    presorted,
                    values_sorted,
                    y[presorted],
                    depth=0,
                    root_sd=root_sd,
                )
            finally:
                self._fit_y = self._fit_XT = None
                self._left_mask = None
            self._finalize()
            fit_span.note(n_leaves=len(self._leaves))
        return self

    def fit_sample_set(self, data: SampleSet) -> "ModelTree":
        """Fit from a :class:`SampleSet` (CPI as the target)."""
        return self.fit(data.X, data.y, data.feature_names)

    def _constant_leaf(self, y: np.ndarray) -> LeafNode:
        # Inlined np.mean/np.std arithmetic (bit-identical: np.mean of a
        # 1-D float64 array is np.add.reduce(a) / n).
        mean_y = float(np.add.reduce(y) / y.size)
        deviations = np.abs(y - mean_y)
        model = LinearModel(
            feature_names=self.feature_names,
            intercept=mean_y,
            coef=np.zeros(len(self.feature_names)),
            n_samples=y.size,
            train_mae=float(np.add.reduce(deviations) / y.size),
        )
        return LeafNode(model=model, n_samples=y.size, mean_y=mean_y)

    def _build(
        self,
        rows: np.ndarray,
        presorted: np.ndarray,
        values_sorted: np.ndarray,
        y_sorted: np.ndarray,
        depth: int,
        root_sd: float,
    ) -> Tuple[TreeNode, float]:
        """Grow and (optionally) prune; returns (node, adjusted error).

        ``rows`` are the node's sample indices in original order;
        ``presorted`` is (n_features, len(rows)) with row ``j`` holding
        the same indices sorted by feature ``j``; ``values_sorted`` and
        ``y_sorted`` carry the matching attribute values and targets.
        Children inherit order-preserving partitions of all three, so
        no recursive call ever re-sorts, re-gathers or re-validates
        anything.
        """
        cfg = self.config
        n = rows.size
        y = self._fit_y[rows]
        _NODES_BUILT.inc()
        split = None
        if n >= 2 * cfg.min_leaf and depth < cfg.max_depth:
            # The node's deviation only feeds the stopping rule, so it
            # is skipped entirely when size or depth already stops the
            # node.  Inlined np.std(y): identical float64 arithmetic
            # without the per-call dispatch overhead.
            centered = y - np.add.reduce(y) / n
            np.multiply(centered, centered, out=centered)
            sd = math.sqrt(np.add.reduce(centered) / n)
            if sd >= cfg.sd_threshold * root_sd:
                with obs_span(
                    "mtree.split_search", depth=depth, n=n
                ) as search_span:
                    split = best_split_presorted(
                        values_sorted, y_sorted, cfg.min_leaf
                    )
                    if split is not None:
                        search_span.note(
                            feature=self.feature_names[split.feature_index],
                            threshold=split.threshold,
                            sdr=split.sdr,
                        )
        if split is None:
            leaf = self._constant_leaf(y)
            return leaf, node_model_error(leaf.model, cfg.penalty)

        mask = self._fit_XT[split.feature_index, rows] <= split.threshold
        left_rows = rows[mask]
        right_rows = rows[np.logical_not(mask, out=mask)]

        # Partition each feature's sorted row in place-order: selecting
        # the surviving positions keeps the sorted order (and the exact
        # values), so children never pay the O(n log n) sorts or the
        # gathers again.  The flat position lists are computed once and
        # reused across all three stacks — a 2-D boolean take visits
        # elements in the same C order, just slower.
        self._left_mask[left_rows] = True
        goes_left = self._left_mask[presorted]
        self._left_mask[left_rows] = False
        flat_left = np.flatnonzero(goes_left)
        flat_right = np.flatnonzero(np.logical_not(goes_left, out=goes_left))
        n_l, n_r = left_rows.size, right_rows.size

        left, left_error = self._build(
            left_rows,
            presorted.take(flat_left).reshape(-1, n_l),
            values_sorted.take(flat_left).reshape(-1, n_l),
            y_sorted.take(flat_left).reshape(-1, n_l),
            depth + 1,
            root_sd,
        )
        right, right_error = self._build(
            right_rows,
            presorted.take(flat_right).reshape(-1, n_r),
            values_sorted.take(flat_right).reshape(-1, n_r),
            y_sorted.take(flat_right).reshape(-1, n_r),
            depth + 1,
            root_sd,
        )

        candidates = sorted(
            self._subtree_feature_indices(left)
            | self._subtree_feature_indices(right)
            | {split.feature_index}
        )
        # Gather only the candidate columns (rows of the transposed
        # matrix) instead of all schema columns for these rows — the
        # interior-node fit never looks at the rest.
        candidate_cols = np.array(candidates, dtype=int)
        model = fit_linear_model(
            self._fit_XT[candidate_cols[:, None], rows].T,
            y,
            self.feature_names,
            candidate_columns=candidate_cols,
            pregathered=True,
            eliminate=cfg.eliminate,
            penalty=cfg.penalty,
        )
        model_error = node_model_error(model, cfg.penalty)
        subtree_error = combine_subtree_errors(
            left_error, self._node_n(left), right_error, self._node_n(right)
        )
        mean_y = float(np.add.reduce(y) / n)
        if cfg.prune and should_prune(model_error, subtree_error):
            leaf = LeafNode(model=model, n_samples=n, mean_y=mean_y)
            return leaf, model_error
        node = SplitNode(
            feature_index=split.feature_index,
            feature_name=self.feature_names[split.feature_index],
            threshold=split.threshold,
            left=left,
            right=right,
            model=model,
            n_samples=n,
            mean_y=mean_y,
        )
        return node, subtree_error

    @staticmethod
    def _node_n(node: TreeNode) -> int:
        return node.n_samples

    def _subtree_feature_indices(self, node: TreeNode) -> set:
        """Feature columns used by splits or models in the subtree.

        Index-space twin of "which features appear anywhere below":
        a model's active features are exactly the non-zero coefficient
        positions, so no name round-trips are needed while fitting.
        """
        used = set(np.flatnonzero(node.model.coef).tolist())
        if isinstance(node, SplitNode):
            used.add(node.feature_index)
            used |= self._subtree_feature_indices(node.left)
            used |= self._subtree_feature_indices(node.right)
        return used

    def _finalize(self) -> None:
        """Name leaves LM1..LMk left-to-right and fill share fields."""
        self._leaves = []

        def visit(node: TreeNode) -> None:
            node.share = node.n_samples / self.n_train
            if isinstance(node, LeafNode):
                node.name = f"LM{len(self._leaves) + 1}"
                self._leaves.append(node)
            else:
                visit(node.left)
                visit(node.right)

        assert self.root is not None
        visit(self.root)
        self._leaf_by_name = {leaf.name: leaf for leaf in self._leaves}

    def _finalize_from_loaded(self) -> None:
        """Rebuild the leaf list of a deserialized tree (names kept)."""
        self._leaves = []

        def visit(node: TreeNode) -> None:
            if isinstance(node, LeafNode):
                self._leaves.append(node)
            else:
                visit(node.left)
                visit(node.right)

        visit(self._require_fitted())
        self._leaf_by_name = {leaf.name: leaf for leaf in self._leaves}

    # -- introspection ---------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self.root is not None

    def _require_fitted(self) -> TreeNode:
        if self.root is None:
            raise RuntimeError("model tree is not fitted yet")
        return self.root

    def leaves(self) -> List[LeafNode]:
        """All leaves, left-to-right (LM1 first)."""
        self._require_fitted()
        return list(self._leaves)

    def leaf_names(self) -> List[str]:
        return [leaf.name for leaf in self.leaves()]

    @property
    def n_leaves(self) -> int:
        return len(self.leaves())

    def leaf(self, name: str) -> LeafNode:
        """Look up a leaf by its LM name (O(1) dict lookup)."""
        self._require_fitted()
        try:
            return self._leaf_by_name[name]
        except KeyError:
            raise KeyError(
                f"no leaf named {name!r}; have {self.leaf_names()}"
            ) from None

    def depth(self) -> int:
        """Maximum depth (a lone leaf has depth 0)."""

        def measure(node: TreeNode) -> int:
            if isinstance(node, LeafNode):
                return 0
            return 1 + max(measure(node.left), measure(node.right))

        return measure(self._require_fitted())

    def split_features(self) -> Dict[str, int]:
        """How many split nodes test each feature."""
        counts: Dict[str, int] = {}

        def visit(node: TreeNode) -> None:
            if isinstance(node, SplitNode):
                counts[node.feature_name] = counts.get(node.feature_name, 0) + 1
                visit(node.left)
                visit(node.right)

        visit(self._require_fitted())
        return counts

    def root_split_feature(self) -> Optional[str]:
        """The most discriminating performance factor (root test)."""
        root = self._require_fitted()
        return root.feature_name if isinstance(root, SplitNode) else None

    # -- prediction --------------------------------------------------------

    def _check_X(self, X: np.ndarray) -> np.ndarray:
        """Validate prediction inputs at the serving boundary.

        A tree that silently mispredicts on malformed input (a 1-D
        vector, a transposed matrix, NaN densities from a broken
        collector) is worse than one that refuses: every caller —
        including the HTTP serving path — relies on these checks.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(
                f"X must be 2-D (n_samples, {len(self.feature_names)}); "
                f"got ndim={X.ndim} with shape {X.shape}"
            )
        if X.shape[1] != len(self.feature_names):
            raise ValueError(
                f"X has {X.shape[1]} feature column(s); this tree was "
                f"fitted on {len(self.feature_names)}"
            )
        finite = np.isfinite(X)
        if not finite.all():
            bad_rows = np.flatnonzero(~finite.all(axis=1))
            raise ValueError(
                f"X contains NaN/Inf in {bad_rows.size} row(s) "
                f"(first bad row: {int(bad_rows[0])})"
            )
        return X

    def compiled(self, dtype=np.float64) -> "CompiledTree":
        """The tree's compiled evaluator (built lazily, cached).

        The cache is keyed by dtype and invalidated when the tree is
        refitted (the root object changes identity).  Serving paths
        that hold a tree — the registry LRU, the prediction engine, the
        drift hub — therefore compile each model exactly once.
        """
        from repro.mtree.compiled import CompiledTree

        root = self._require_fitted()
        if self._compiled_root is not root:
            self._compiled_cache = {}
            self._compiled_root = root
        key = np.dtype(dtype)
        evaluator = self._compiled_cache.get(key)
        if evaluator is None:
            evaluator = CompiledTree(self, dtype=key)
            self._compiled_cache[key] = evaluator
        return evaluator

    def _composed(self) -> "ModelTree":
        """The smoothing-composed twin (cached; ``self`` when k == 0).

        Quinlan smoothing of linear models is itself linear, so it
        folds into the leaf equations exactly once per fitted tree
        (:func:`repro.mtree.smoothing.compose_smoothed`).  Both predict
        backends evaluate these composed leaf models — smoothed
        prediction costs one dot per row, and the two backends agree
        bit for bit because they share the arithmetic.
        """
        root = self._require_fitted()
        if self._composed_root is not root:
            self._composed_root = root
            self._composed_tree = (
                compose_smoothed(self) if self.config.smoothing_k > 0 else self
            )
        assert self._composed_tree is not None
        return self._composed_tree

    def predict(
        self,
        X: np.ndarray,
        smooth: Optional[bool] = None,
        compiled: Optional[bool] = None,
    ) -> np.ndarray:
        """Predicted CPI per row; smoothing per config unless overridden.

        Batches evaluate through the compiled kernel
        (:mod:`repro.mtree.compiled`) by default; pass
        ``compiled=False`` to force the recursive reference walk.  The
        two backends are bit-identical in float64 (property-tested), so
        the flag is a debugging escape hatch, not a semantic choice.
        """
        root = self._require_fitted()
        X = self._check_X(X)
        use_smoothing = self.config.smooth if smooth is None else smooth
        if compiled is None or compiled:
            return self.compiled().predict(
                X, smooth=use_smoothing, checked=True
            )
        if use_smoothing and self.config.smoothing_k > 0:
            # Smoothing composes into the leaf equations (see
            # ``_composed``); the reference walk routes the composed
            # twin and predicts with its raw leaf models.
            return self._composed().predict(X, smooth=False, compiled=False)
        out = np.empty(X.shape[0], dtype=float)

        def visit(node: TreeNode, rows: np.ndarray) -> None:
            if rows.size == 0:
                return
            if isinstance(node, LeafNode):
                out[rows] = node.model.predict(X[rows])
                return
            go_left = X[rows, node.feature_index] <= node.threshold
            visit(node.left, rows[go_left])
            visit(node.right, rows[~go_left])

        visit(root, np.arange(X.shape[0]))
        return out

    def assign_leaves(
        self, X: np.ndarray, compiled: Optional[bool] = None
    ) -> np.ndarray:
        """Leaf (LM) name each row is classified into.

        Routed through the compiled signed-path-matrix classifier by
        default (comparisons are exact, so both backends agree on
        every row); ``compiled=False`` forces the recursive walk.
        """
        root = self._require_fitted()
        X = self._check_X(X)
        if compiled is None or compiled:
            return self.compiled().assign_names(X)
        out = np.empty(X.shape[0], dtype=object)

        def visit(node: TreeNode, rows: np.ndarray) -> None:
            if rows.size == 0:
                return
            if isinstance(node, LeafNode):
                out[rows] = node.name
                return
            go_left = X[rows, node.feature_index] <= node.threshold
            visit(node.left, rows[go_left])
            visit(node.right, rows[~go_left])

        visit(root, np.arange(X.shape[0]))
        return out

    def __repr__(self) -> str:
        if not self.is_fitted:
            return "ModelTree(unfitted)"
        return (
            f"ModelTree(n_leaves={self.n_leaves}, depth={self.depth()}, "
            f"n_train={self.n_train})"
        )
