"""Rendering model trees the way the paper presents them.

``render_ascii`` produces the Figure 1/2 information as text: every
split node shows its variable, the share of samples in its subtree and
the average CPI; every leaf shows its LM name, share and average CPI.
``render_equations`` lists the leaf equations the way Section IV.A
prints LM1/LM7/LM8.  ``render_dot`` emits Graphviz for a faithful
visual reproduction of the figures.
"""

from __future__ import annotations

from typing import List

from repro.mtree.tree import LeafNode, ModelTree, SplitNode, TreeNode

__all__ = ["render_ascii", "render_equations", "render_dot"]


def render_ascii(tree: ModelTree) -> str:
    """Indented text rendering of the tree."""
    lines: List[str] = []

    def visit(node: TreeNode, depth: int, prefix: str) -> None:
        pad = "  " * depth
        if isinstance(node, LeafNode):
            lines.append(
                f"{pad}{prefix}{node.name} [{node.share * 100:.2f}% of samples, "
                f"avg CPI {node.mean_y:.2f}]"
            )
            return
        lines.append(
            f"{pad}{prefix}({node.feature_name}) [{node.share * 100:.2f}%, "
            f"avg CPI {node.mean_y:.2f}]"
        )
        visit(node.left, depth + 1, f"{node.feature_name} <= {node.threshold:.6g}: ")
        visit(node.right, depth + 1, f"{node.feature_name} > {node.threshold:.6g}: ")

    root = tree.root
    if root is None:
        raise RuntimeError("cannot render an unfitted tree")
    visit(root, 0, "")
    return "\n".join(lines)


def render_equations(tree: ModelTree, min_share: float = 0.0) -> str:
    """The leaf equations, largest share first (paper Section IV.A)."""
    leaves = sorted(tree.leaves(), key=lambda leaf: -leaf.share)
    lines = []
    for leaf in leaves:
        if leaf.share < min_share:
            continue
        lines.append(
            f"{leaf.name} ({leaf.share * 100:.2f}% of samples, "
            f"avg CPI {leaf.mean_y:.2f}):"
        )
        lines.append(f"    {leaf.model.equation()}")
    return "\n".join(lines)


def _dot_escape(text: str) -> str:
    return text.replace('"', '\\"')


def render_dot(tree: ModelTree, title: str = "model tree") -> str:
    """Graphviz DOT output mirroring the paper's figures.

    Split nodes are ovals labeled with the split variable, subtree
    sample share and average CPI; leaves are boxes labeled with the LM
    name, share and average CPI; arcs carry the split criteria.
    """
    root = tree.root
    if root is None:
        raise RuntimeError("cannot render an unfitted tree")
    lines = [
        "digraph model_tree {",
        f'  label="{_dot_escape(title)}";',
        "  node [fontname=Helvetica];",
    ]
    counter = [0]

    def visit(node: TreeNode) -> str:
        counter[0] += 1
        node_id = f"n{counter[0]}"
        if isinstance(node, LeafNode):
            label = (
                f"{node.name}\\n{node.share * 100:.1f}%\\nCPI {node.mean_y:.2f}"
            )
            lines.append(f'  {node_id} [shape=box, label="{label}"];')
            return node_id
        label = (
            f"{node.feature_name}\\n{node.share * 100:.1f}%\\n"
            f"CPI {node.mean_y:.2f}"
        )
        lines.append(f'  {node_id} [shape=oval, label="{label}"];')
        left_id = visit(node.left)
        right_id = visit(node.right)
        lines.append(
            f'  {node_id} -> {left_id} [label="<= {node.threshold:.6g}"];'
        )
        lines.append(
            f'  {node_id} -> {right_id} [label="> {node.threshold:.6g}"];'
        )
        return node_id

    visit(root)
    lines.append("}")
    return "\n".join(lines)
