"""Leaf linear models with M5-style greedy attribute elimination.

Each leaf of a model tree holds ``CPI = intercept + sum(coef_i * x_i)``
fitted by least squares over the leaf's training samples.  Following
M5, the initial fit uses only the *candidate* attributes (those tested
in the subtree or used by child models), and attributes are then
greedily dropped while doing so reduces the adjusted error

    adjusted(e) = e * (n + penalty * v) / (n - v)

where ``e`` is the training mean absolute error, ``n`` the sample count
and ``v`` the number of fitted parameters — the mechanism that leaves
many of the paper's models with one to three variables or a bare
constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["LinearModel", "fit_linear_model", "adjusted_error"]

#: Ridge term stabilizing nearly collinear leaf fits (WEKA does the same).
_RIDGE = 1e-8


def adjusted_error(error: float, n: int, v: int, penalty: float = 2.0) -> float:
    """Quinlan's pessimistic adjustment of a training error.

    Inflates the observed error of a model with ``v`` parameters fitted
    on ``n`` samples; returns infinity when the model has as many
    parameters as samples (no generalization credit at all).
    """
    if n <= v:
        return float("inf")
    return error * (n + penalty * v) / (n - v)


@dataclass(frozen=True)
class LinearModel:
    """A fitted sparse linear model over a fixed feature schema.

    ``coef`` has one entry per schema feature; eliminated features have
    coefficient 0 and are listed in neither :meth:`active_features` nor
    the rendered equation.
    """

    feature_names: Tuple[str, ...]
    intercept: float
    coef: np.ndarray
    n_samples: int
    train_mae: float

    def __post_init__(self) -> None:
        coef = np.asarray(self.coef, dtype=float)
        if coef.shape != (len(self.feature_names),):
            raise ValueError(
                f"coef shape {coef.shape} != ({len(self.feature_names)},)"
            )
        object.__setattr__(self, "coef", coef)

    @property
    def n_params(self) -> int:
        """Fitted parameters: active coefficients plus the intercept."""
        return int(np.count_nonzero(self.coef)) + 1

    def active_features(self) -> Tuple[str, ...]:
        """Names of features with non-zero coefficients."""
        return tuple(
            name for name, c in zip(self.feature_names, self.coef) if c != 0.0
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predictions for rows of ``X`` (full schema width)."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != len(self.feature_names):
            raise ValueError(
                f"expected (n, {len(self.feature_names)}) inputs, got {X.shape}"
            )
        return X @ self.coef + self.intercept

    def equation(self, target: str = "CPI", precision: int = 4) -> str:
        """Human-readable equation, paper style."""
        parts = [f"{self.intercept:.{precision}g}"]
        for name, c in zip(self.feature_names, self.coef):
            if c == 0.0:
                continue
            sign = "-" if c < 0 else "+"
            parts.append(f"{sign} {abs(c):.{precision}g}*{name}")
        return f"{target} = " + " ".join(parts)


class _NodeFitter:
    """Caches the node's Gram matrix so elimination trials are O(d^3).

    The design matrix is ``[1 | X]``; ``gram = D^T D`` and ``moment =
    D^T y`` are computed once, and every candidate subset solves a
    small sliced system instead of touching the n-row data again
    (except for the O(n*d) residual pass that scores MAE).
    """

    def __init__(self, X: np.ndarray, y: np.ndarray) -> None:
        self.X = X
        self.y = y
        design = np.column_stack([np.ones(X.shape[0]), X])
        self.gram = design.T @ design
        self.moment = design.T @ y

    def solve(self, columns: np.ndarray) -> Tuple[float, np.ndarray]:
        """Ridge-stabilized least squares on the selected columns."""
        take = np.concatenate([[0], columns + 1])
        gram = self.gram[np.ix_(take, take)].copy()
        gram[np.arange(1, take.size), np.arange(1, take.size)] += _RIDGE
        try:
            beta = np.linalg.solve(gram, self.moment[take])
        except np.linalg.LinAlgError:
            beta, *_ = np.linalg.lstsq(gram, self.moment[take], rcond=None)
        return float(beta[0]), beta[1:]

    def mae(self, columns: np.ndarray, intercept: float, coefs: np.ndarray) -> float:
        if columns.size:
            pred = self.X[:, columns] @ coefs + intercept
        else:
            pred = np.full(len(self.y), intercept)
        return float(np.mean(np.abs(self.y - pred)))


def fit_linear_model(
    X: np.ndarray,
    y: np.ndarray,
    feature_names: Sequence[str],
    candidate_features: Optional[Sequence[str]] = None,
    eliminate: bool = True,
    penalty: float = 2.0,
) -> LinearModel:
    """Fit a leaf model, optionally with greedy backward elimination.

    Parameters
    ----------
    X, y:
        Training samples (full schema width) and targets.
    feature_names:
        The full feature schema, defining coefficient positions.
    candidate_features:
        The M5 candidate set; ``None`` means all features.
    eliminate:
        Greedily drop attributes while the adjusted error improves.
    penalty:
        Multiplier on the parameter count in the adjusted error.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    feature_names = tuple(feature_names)
    if X.ndim != 2 or X.shape[1] != len(feature_names):
        raise ValueError(
            f"X shape {X.shape} does not match {len(feature_names)} features"
        )
    if y.shape != (X.shape[0],):
        raise ValueError(f"y shape {y.shape} != ({X.shape[0]},)")
    if X.shape[0] == 0:
        raise ValueError("cannot fit a model on zero samples")
    n = X.shape[0]

    # A constant target needs no regression (and near-zero numerical
    # residues would otherwise confuse the elimination comparisons).
    if float(y.max()) == float(y.min()):
        return LinearModel(
            feature_names=feature_names,
            intercept=float(y[0]),
            coef=np.zeros(len(feature_names)),
            n_samples=n,
            train_mae=0.0,
        )

    if candidate_features is None:
        columns = np.arange(len(feature_names))
    else:
        unknown = set(candidate_features) - set(feature_names)
        if unknown:
            raise ValueError(f"unknown candidate features {sorted(unknown)}")
        columns = np.array(
            sorted(feature_names.index(f) for f in set(candidate_features)),
            dtype=int,
        )
    # Drop constant columns outright: they carry no signal and destabilize
    # the fit (their effect belongs in the intercept, as the paper notes).
    if columns.size:
        spans = X[:, columns].max(axis=0) - X[:, columns].min(axis=0)
        columns = columns[spans > 0.0]
    # Never start with more parameters than samples allow.
    if columns.size >= n:
        columns = columns[: max(n - 2, 0)]

    fitter = _NodeFitter(X, y)
    intercept, coefs = fitter.solve(columns)
    error = fitter.mae(columns, intercept, coefs)
    best = adjusted_error(error, n, columns.size + 1, penalty)

    if eliminate:
        improved = True
        while improved and columns.size > 0:
            improved = False
            drop_choice = None
            for position in range(columns.size):
                trial = np.delete(columns, position)
                t_intercept, t_coefs = fitter.solve(trial)
                t_err = adjusted_error(
                    fitter.mae(trial, t_intercept, t_coefs),
                    n,
                    trial.size + 1,
                    penalty,
                )
                if t_err <= best:
                    best = t_err
                    drop_choice = (trial, t_intercept, t_coefs)
            if drop_choice is not None:
                columns, intercept, coefs = drop_choice
                improved = True

    full = np.zeros(len(feature_names))
    full[columns] = coefs
    return LinearModel(
        feature_names=feature_names,
        intercept=intercept,
        coef=full,
        n_samples=n,
        train_mae=fitter.mae(columns, intercept, coefs),
    )
