"""Leaf linear models with M5-style greedy attribute elimination.

Each leaf of a model tree holds ``CPI = intercept + sum(coef_i * x_i)``
fitted by least squares over the leaf's training samples.  Following
M5, the initial fit uses only the *candidate* attributes (those tested
in the subtree or used by child models), and attributes are then
greedily dropped while doing so reduces the adjusted error

    adjusted(e) = e * (n + penalty * v) / (n - v)

where ``e`` is the training mean absolute error, ``n`` the sample count
and ``v`` the number of fitted parameters — the mechanism that leaves
many of the paper's models with one to three variables or a bare
constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["LinearModel", "fit_linear_model", "adjusted_error", "row_dot"]

#: Ridge term stabilizing nearly collinear leaf fits (WEKA does the same).
_RIDGE = 1e-8


def row_dot(X: np.ndarray, coef: np.ndarray) -> np.ndarray:
    """Per-row dot product with batch-invariant rounding.

    ``coef`` is either one coefficient vector shared by every row or a
    ``(n, n_features)`` matrix holding one vector per row.  The result
    row ``i`` depends only on ``X[i]`` and its coefficients — never on
    the batch size, the row's position, or the memory layout.  BLAS
    ``X @ coef`` does not give that guarantee (its kernels round the
    remainder rows of a block differently, so ``(X @ c)[rows]`` and
    ``X[rows] @ c`` can disagree by 1 ulp), which is why every
    prediction path — the recursive tree walk, the compiled evaluator,
    the micro-batching engine — funnels through this one primitive:
    any regrouping of rows is then bit-identical by construction.
    """
    return np.einsum("ij,ij->i", X, np.broadcast_to(coef, X.shape))


def adjusted_error(error: float, n: int, v: int, penalty: float = 2.0) -> float:
    """Quinlan's pessimistic adjustment of a training error.

    Inflates the observed error of a model with ``v`` parameters fitted
    on ``n`` samples; returns infinity when the model has as many
    parameters as samples (no generalization credit at all).
    """
    if n <= v:
        return float("inf")
    return error * (n + penalty * v) / (n - v)


@dataclass(frozen=True)
class LinearModel:
    """A fitted sparse linear model over a fixed feature schema.

    ``coef`` has one entry per schema feature; eliminated features have
    coefficient 0 and are listed in neither :meth:`active_features` nor
    the rendered equation.
    """

    feature_names: Tuple[str, ...]
    intercept: float
    coef: np.ndarray
    n_samples: int
    train_mae: float

    def __post_init__(self) -> None:
        coef = np.asarray(self.coef, dtype=float)
        if coef.shape != (len(self.feature_names),):
            raise ValueError(
                f"coef shape {coef.shape} != ({len(self.feature_names)},)"
            )
        object.__setattr__(self, "coef", coef)

    @property
    def n_params(self) -> int:
        """Fitted parameters: active coefficients plus the intercept."""
        return int(np.count_nonzero(self.coef)) + 1

    def active_features(self) -> Tuple[str, ...]:
        """Names of features with non-zero coefficients."""
        return tuple(
            name for name, c in zip(self.feature_names, self.coef) if c != 0.0
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predictions for rows of ``X`` (full schema width).

        Uses :func:`row_dot`, so a row's prediction is bit-identical no
        matter which batch (or sub-batch) it arrives in.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != len(self.feature_names):
            raise ValueError(
                f"expected (n, {len(self.feature_names)}) inputs, got {X.shape}"
            )
        return row_dot(X, self.coef) + self.intercept

    def equation(self, target: str = "CPI", precision: int = 4) -> str:
        """Human-readable equation, paper style."""
        parts = [f"{self.intercept:.{precision}g}"]
        for name, c in zip(self.feature_names, self.coef):
            if c == 0.0:
                continue
            sign = "-" if c < 0 else "+"
            parts.append(f"{sign} {abs(c):.{precision}g}*{name}")
        return f"{target} = " + " ".join(parts)


class _NodeFitter:
    """Caches the node's Gram matrix so elimination trials are cheap.

    ``X`` holds only the columns under consideration (the M5 candidate
    set), indexed 0..k-1; the caller owns the mapping back to the full
    schema.  The design matrix is ``D = [1 | X]``; ``gram = D^T D``
    and ``moment = D^T y`` are computed once.  :meth:`solve` handles
    one-off subset fits; the greedy elimination loop instead runs on
    the cached *inverse* Gram, removing one column at a time by a
    rank-one (Schur-complement) downdate so no trial ever re-solves a
    system or re-touches the n-row data (see
    :func:`_eliminate_with_downdates`).
    """

    def __init__(self, X: np.ndarray, y: np.ndarray) -> None:
        self.X = X
        self.y = y
        design = np.empty((X.shape[0], X.shape[1] + 1))
        design[:, 0] = 1.0
        design[:, 1:] = X
        self.design = design
        self.gram = design.T @ design
        self.moment = design.T @ y

    def ridged_gram(self, columns: np.ndarray) -> np.ndarray:
        """The Gram submatrix for ``[1 | X[:, columns]]``, ridged."""
        if columns.size + 1 == self.gram.shape[0]:
            gram = self.gram.copy()  # full set: plain copy, no gather
        else:
            take = np.concatenate([[0], columns + 1])
            gram = self.gram[take[:, None], take]
        diagonal = np.arange(1, gram.shape[0])
        gram[diagonal, diagonal] += _RIDGE
        return gram

    def solve(
        self, columns: np.ndarray, gram: Optional[np.ndarray] = None
    ) -> Tuple[float, np.ndarray]:
        """Ridge-stabilized least squares on the selected columns.

        ``gram`` lets a caller that already materialized the ridged
        Gram submatrix (see :meth:`ridged_gram`) skip rebuilding it.
        """
        if columns.size + 1 == self.moment.size:
            moment = self.moment  # full set: solve never mutates it
        else:
            take = np.concatenate([[0], columns + 1])
            moment = self.moment[take]
        if gram is None:
            gram = self.ridged_gram(columns)
        try:
            beta = np.linalg.solve(gram, moment)
        except np.linalg.LinAlgError:
            beta, *_ = np.linalg.lstsq(gram, moment, rcond=None)
        return float(beta[0]), beta[1:]

    def mae(self, columns: np.ndarray, intercept: float, coefs: np.ndarray) -> float:
        # Same arithmetic as mean(|y - (X @ coefs + intercept)|) with
        # the temporaries folded in place (np.mean of a 1-D float64
        # array is np.add.reduce(a) / n, bit for bit).
        if columns.size == self.X.shape[1]:
            deviations = self.X @ coefs  # full set: skip the gather
        elif columns.size:
            deviations = self.X[:, columns] @ coefs
        else:
            deviations = np.abs(self.y - intercept)
            return float(np.add.reduce(deviations) / deviations.size)
        deviations += intercept
        np.subtract(self.y, deviations, out=deviations)
        np.abs(deviations, out=deviations)
        return float(np.add.reduce(deviations) / deviations.size)


def _eliminate_greedy_slow(
    fitter: _NodeFitter,
    columns: np.ndarray,
    intercept: float,
    coefs: np.ndarray,
    best: float,
    n: int,
    penalty: float,
) -> Tuple[np.ndarray, float, np.ndarray]:
    """Reference elimination: re-solve every candidate subset.

    Kept as the numerical fallback for ill-conditioned Gram matrices
    and as the readable specification of the greedy rule.
    """
    improved = True
    while improved and columns.size > 0:
        improved = False
        drop_choice = None
        for position in range(columns.size):
            trial = np.delete(columns, position)
            t_intercept, t_coefs = fitter.solve(trial)
            t_err = adjusted_error(
                fitter.mae(trial, t_intercept, t_coefs),
                n,
                trial.size + 1,
                penalty,
            )
            if t_err <= best:
                best = t_err
                drop_choice = (trial, t_intercept, t_coefs)
        if drop_choice is not None:
            columns, intercept, coefs = drop_choice
            improved = True
    return columns, intercept, coefs


def _eliminate_with_downdates(
    fitter: _NodeFitter,
    columns: np.ndarray,
    intercept: float,
    coefs: np.ndarray,
    best: float,
    n: int,
    penalty: float,
    gram: Optional[np.ndarray] = None,
) -> Optional[Tuple[np.ndarray, float, np.ndarray]]:
    """Greedy elimination on the cached inverse Gram.

    With ``H = inv(G)`` for the active set, zeroing one coefficient
    ``beta_p`` is the constrained solution ``beta - H[:, p] *
    (beta_p / H[p, p])``; its predictions follow from the cached
    ``W = D H`` by a single saxpy.  Every trial in a round is scored
    from one O(n * d) pass, removing the per-trial solves and residual
    recomputation entirely; accepting a drop downdates ``H`` and ``W``
    by rank-one updates.  Returns None when the inverse is not
    trustworthy (caller falls back to :func:`_eliminate_greedy_slow`).
    """
    if gram is None:
        gram = fitter.ridged_gram(columns)
    try:
        H = np.linalg.inv(gram)
    except np.linalg.LinAlgError:
        return None
    if not np.all(np.isfinite(H)):
        return None

    if columns.size + 1 == fitter.design.shape[1]:
        D = fitter.design  # full starting set: no column gather needed
    else:
        D = fitter.design[:, np.concatenate([[0], columns + 1])]
    beta = np.concatenate([[intercept], coefs])
    residual = fitter.y - D @ beta
    W = D @ H

    while columns.size > 0:
        diag = np.diagonal(H)[1:]
        if np.any(diag <= 0.0) or not np.all(np.isfinite(H)):
            return None
        # Trial p: beta_trial = beta - H[:, p] * shift[p], so the
        # residual gains shift[p] * W[:, p]; score all trials at once.
        # (One reused n x d temporary; arithmetic unchanged.)
        shift = beta[1:] / diag
        trials = np.multiply(W[:, 1:], shift)
        np.add(residual[:, None], trials, out=trials)
        np.abs(trials, out=trials)
        trial_maes = np.add.reduce(trials, axis=0) / n
        v = columns.size  # trial parameter count: (size-1) coefs + 1
        drop = None
        for position in range(columns.size):
            t_err = adjusted_error(float(trial_maes[position]), n, v, penalty)
            if t_err <= best:
                best = t_err
                drop = position
        if drop is None:
            break
        p = drop + 1
        scale = beta[p] / H[p, p]
        residual = residual + scale * W[:, p]
        beta = beta - scale * H[:, p]
        keep = np.arange(beta.size) != p
        row = H[p, keep] / H[p, p]
        W = W[:, keep] - np.outer(W[:, p], row)
        H = H[np.ix_(keep, keep)] - np.outer(H[keep, p], row)
        beta = beta[keep]
        columns = np.delete(columns, drop)
    return columns, float(beta[0]), beta[1:]


def fit_linear_model(
    X: np.ndarray,
    y: np.ndarray,
    feature_names: Sequence[str],
    candidate_features: Optional[Sequence[str]] = None,
    eliminate: bool = True,
    penalty: float = 2.0,
    candidate_columns: Optional[np.ndarray] = None,
    pregathered: bool = False,
) -> LinearModel:
    """Fit a leaf model, optionally with greedy backward elimination.

    Parameters
    ----------
    X, y:
        Training samples (full schema width) and targets.
    feature_names:
        The full feature schema, defining coefficient positions.
    candidate_features:
        The M5 candidate set; ``None`` means all features.
    eliminate:
        Greedily drop attributes while the adjusted error improves.
    penalty:
        Multiplier on the parameter count in the adjusted error.
    candidate_columns:
        The candidate set as sorted, unique column indices — the
        pre-resolved form of ``candidate_features`` used by the tree's
        hot path to skip the name-to-index round trip.  Mutually
        exclusive with ``candidate_features``.
    pregathered:
        When true, ``X`` holds *only* the candidate columns (one per
        entry of ``candidate_columns``, which is then required) instead
        of the full schema.  The tree's hot path gathers exactly those
        columns from its transposed training matrix, skipping the
        full-width row gather a schema-shaped ``X`` would force.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    feature_names = tuple(feature_names)
    if pregathered:
        if candidate_columns is None:
            raise ValueError("pregathered=True requires candidate_columns")
        if X.ndim != 2 or X.shape[1] != len(candidate_columns):
            raise ValueError(
                f"pregathered X shape {X.shape} does not match "
                f"{len(candidate_columns)} candidate columns"
            )
    elif X.ndim != 2 or X.shape[1] != len(feature_names):
        raise ValueError(
            f"X shape {X.shape} does not match {len(feature_names)} features"
        )
    if y.shape != (X.shape[0],):
        raise ValueError(f"y shape {y.shape} != ({X.shape[0]},)")
    if X.shape[0] == 0:
        raise ValueError("cannot fit a model on zero samples")
    n = X.shape[0]

    # A constant target needs no regression (and near-zero numerical
    # residues would otherwise confuse the elimination comparisons).
    if float(y.max()) == float(y.min()):
        return LinearModel(
            feature_names=feature_names,
            intercept=float(y[0]),
            coef=np.zeros(len(feature_names)),
            n_samples=n,
            train_mae=0.0,
        )

    if candidate_columns is not None:
        if candidate_features is not None:
            raise ValueError(
                "pass candidate_features or candidate_columns, not both"
            )
        columns = np.asarray(candidate_columns, dtype=int)
    elif candidate_features is None:
        columns = np.arange(len(feature_names))
    else:
        unknown = set(candidate_features) - set(feature_names)
        if unknown:
            raise ValueError(f"unknown candidate features {sorted(unknown)}")
        columns = np.array(
            sorted(feature_names.index(f) for f in set(candidate_features)),
            dtype=int,
        )
    # One gather of the candidate columns; the fitter (and everything
    # downstream) works on this restricted matrix with local indices
    # 0..k-1, mapped back to the full schema only at the end.
    candidates = X if pregathered else X[:, columns]
    # Drop constant columns outright: they carry no signal and destabilize
    # the fit (their effect belongs in the intercept, as the paper notes).
    if columns.size:
        spans = candidates.max(axis=0) - candidates.min(axis=0)
        varying = spans > 0.0
        if not varying.all():
            columns = columns[varying]
            candidates = candidates[:, varying]
    # Never start with more parameters than samples allow.
    if columns.size >= n:
        width = max(n - 2, 0)
        columns = columns[:width]
        candidates = candidates[:, :width]

    fitter = _NodeFitter(candidates, y)
    local = np.arange(columns.size)
    gram = fitter.ridged_gram(local)
    intercept, coefs = fitter.solve(local, gram)
    error = fitter.mae(local, intercept, coefs)
    best = adjusted_error(error, n, local.size + 1, penalty)

    train_mae = error
    if eliminate and local.size > 0:
        eliminated = _eliminate_with_downdates(
            fitter, local, intercept, coefs, best, n, penalty, gram
        )
        if eliminated is None:
            eliminated = _eliminate_greedy_slow(
                fitter, local, intercept, coefs, best, n, penalty
            )
        if eliminated[0].size != local.size:
            local, intercept, coefs = eliminated
            train_mae = fitter.mae(local, intercept, coefs)
        # else: nothing was dropped, so the initial fit (and its MAE)
        # already describes the final model.

    full = np.zeros(len(feature_names))
    full[columns[local]] = coefs
    return LinearModel(
        feature_names=feature_names,
        intercept=intercept,
        coef=full,
        n_samples=n,
        train_mae=train_mae,
    )
