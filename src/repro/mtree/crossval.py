"""k-fold cross-validation for model trees.

The paper evaluates on a single independent split; k-fold CV gives the
same information with variance estimates, which the tuning experiment
(E12) uses to distinguish real accuracy differences from split luck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.datasets.dataset import SampleSet
from repro.mtree.tree import ModelTree, ModelTreeConfig
from repro.transfer.metrics import PredictionMetrics, prediction_metrics

__all__ = ["CrossValResult", "kfold_indices", "cross_validate"]


def kfold_indices(
    n: int, k: int, rng: np.random.Generator
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Shuffled k-fold (train_idx, test_idx) pairs covering 0..n-1.

    Fold sizes differ by at most one; folds are disjoint and cover all
    samples exactly once as test data.
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if n < k:
        raise ValueError(f"need at least k={k} samples, got {n}")
    order = rng.permutation(n)
    folds = np.array_split(order, k)
    pairs = []
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        pairs.append((train, test))
    return pairs


@dataclass(frozen=True)
class CrossValResult:
    """Per-fold metrics plus aggregates."""

    fold_metrics: Tuple[PredictionMetrics, ...]
    fold_leaves: Tuple[int, ...]

    @property
    def k(self) -> int:
        return len(self.fold_metrics)

    @property
    def mean_mae(self) -> float:
        return float(np.mean([m.mae for m in self.fold_metrics]))

    @property
    def std_mae(self) -> float:
        return float(np.std([m.mae for m in self.fold_metrics]))

    @property
    def mean_correlation(self) -> float:
        return float(np.mean([m.correlation for m in self.fold_metrics]))

    @property
    def mean_leaves(self) -> float:
        return float(np.mean(self.fold_leaves))

    def __str__(self) -> str:
        return (
            f"{self.k}-fold: MAE {self.mean_mae:.4f} +/- {self.std_mae:.4f}, "
            f"C {self.mean_correlation:.4f}, "
            f"{self.mean_leaves:.1f} leaves/fold"
        )


def cross_validate(
    config: ModelTreeConfig,
    data: SampleSet,
    k: int = 5,
    seed: int = 0,
) -> CrossValResult:
    """Train/evaluate a tree configuration across k folds."""
    rng = np.random.default_rng(seed)
    metrics = []
    leaves = []
    for train_idx, test_idx in kfold_indices(len(data), k, rng):
        train = data.take(train_idx)
        test = data.take(test_idx)
        tree = ModelTree(config).fit_sample_set(train)
        metrics.append(prediction_metrics(tree.predict(test.X), test.y))
        leaves.append(tree.n_leaves)
    return CrossValResult(
        fold_metrics=tuple(metrics), fold_leaves=tuple(leaves)
    )
