"""Standard-deviation-reduction (SDR) split search.

M5 picks, at every node, the (attribute, threshold) pair that maximizes

    SDR = sd(S) - |S_L|/|S| * sd(S_L) - |S_R|/|S| * sd(S_R)

i.e. the split that minimizes the expected child standard deviation —
the criterion the paper describes as "minimize the variance on each
side of the split and maximize the variance between the two sides".

The search is exact: for every attribute the samples are sorted and
prefix sums of ``y`` and ``y^2`` give every candidate split's SDR in
O(n) after the O(n log n) sort.

Two implementations share that algorithm:

* :func:`best_split_for_feature` — the scalar reference, one attribute
  at a time.  Kept as the readable specification and as the oracle the
  equivalence tests compare against.
* :func:`find_best_split` / :func:`best_split_presorted` — the fast
  path: a single 2-D pass over all attributes at once.  The sort can be
  amortized across an entire tree fit by passing presorted column
  orders (one stable ``argsort`` per feature per *fit*, partitioned at
  each split — see :meth:`repro.mtree.tree.ModelTree._build`).

The fast path is *bit-identical* to the scalar loop, not merely close:
it performs the same floating-point operations in the same order, row
by row — per-attribute ``sd(y)`` over the attribute's sort order, the
prefix pass for the left sides, and the reversed prefix pass for the
right sides — so near-tie splits resolve the same way and fitted trees
match the scalar implementation node for node.  Tie-breaking likewise:
lowest cut index within an attribute, lowest attribute index across
attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.obs.metrics import counter

__all__ = [
    "SplitResult",
    "best_split_for_feature",
    "best_split_presorted",
    "find_best_split",
]


#: Shared ``0..d-1`` row selector for the per-attribute argmax gather;
#: sliced per call so typical feature counts never re-allocate it.
_ROW_INDEX = np.arange(64)

#: Candidate (attribute, threshold) SDR evaluations performed; each
#: exact search scores every cut point of every attribute, so one call
#: adds d * (n - 1).  The counter object is cached at import, making
#: the per-search cost a single integer add.
_SDR_EVALUATIONS = counter("mtree.sdr_evaluations")
_SPLIT_SEARCHES = counter("mtree.split_searches")


@dataclass(frozen=True)
class SplitResult:
    """The winning split of one search."""

    feature_index: int
    threshold: float
    sdr: float
    n_left: int
    n_right: int


def _prefix_sd(
    y_sorted: np.ndarray,
    y_squared: Optional[np.ndarray] = None,
    k: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Standard deviation of every prefix y[..., :k], k = 1..n (biased).

    Works on a single sorted vector or row-wise on a (d, n) stack; the
    arithmetic per row is identical either way.  ``y_squared`` lets a
    caller that runs both the forward and the reversed pass square the
    targets once (squaring commutes with reversal bit for bit), and
    ``k`` lets it share the prefix-length vector ``[1.0 .. n]``.
    """
    if y_squared is None:
        y_squared = y_sorted**2
    if k is None:
        k = np.arange(1, y_sorted.shape[-1] + 1, dtype=float)
    s = np.add.accumulate(y_sorted, axis=-1)
    s2 = np.add.accumulate(y_squared, axis=-1)
    # In-place from here on — same elementwise arithmetic as
    # sqrt(maximum(s2/k - (s/k)**2, 0)) without the temporaries.
    np.divide(s2, k, out=s2)
    np.divide(s, k, out=s)
    np.multiply(s, s, out=s)
    np.subtract(s2, s, out=s2)
    np.maximum(s2, 0.0, out=s2)
    return np.sqrt(s2, out=s2)


def best_split_for_feature(
    values: np.ndarray,
    y: np.ndarray,
    min_leaf: int,
) -> Optional[SplitResult]:
    """Best threshold on one attribute, or None if none is admissible.

    ``min_leaf`` is the minimum number of samples on each side.
    """
    n = values.size
    if n < 2 * min_leaf:
        return None
    _SPLIT_SEARCHES.inc()
    _SDR_EVALUATIONS.inc(n - 1)
    order = np.argsort(values, kind="stable")
    v = values[order]
    ys = y[order]

    sd_all = float(np.std(ys))
    if sd_all == 0.0:
        return None

    left_sd = _prefix_sd(ys)
    right_sd = _prefix_sd(ys[::-1])[::-1]

    # Split after position k (0-based): left = [0..k], right = [k+1..].
    k = np.arange(n - 1)
    n_left = k + 1.0
    n_right = n - n_left
    sdr = sd_all - (n_left / n) * left_sd[:-1] - (n_right / n) * right_sd[1:]

    # Admissible cut points: both sides big enough and the attribute
    # value actually changes across the boundary.
    admissible = (
        (n_left >= min_leaf) & (n_right >= min_leaf) & (v[:-1] < v[1:])
    )
    if not np.any(admissible):
        return None
    sdr = np.where(admissible, sdr, -np.inf)
    best = int(np.argmax(sdr))
    threshold = 0.5 * (v[best] + v[best + 1])
    return SplitResult(
        feature_index=-1,  # caller fills in
        threshold=float(threshold),
        sdr=float(sdr[best]),
        n_left=int(best + 1),
        n_right=int(n - best - 1),
    )


def best_split_presorted(
    values_sorted: np.ndarray,
    y_sorted: np.ndarray,
    min_leaf: int,
) -> Optional[SplitResult]:
    """Best split over presorted attribute columns, vectorized.

    Parameters
    ----------
    values_sorted:
        Array (n_features, n_samples); row ``j`` holds attribute ``j``'s
        values in ascending order.
    y_sorted:
        Same shape; row ``j`` holds the targets in attribute ``j``'s
        sort order.  Both stacks must be C-contiguous: the pairwise
        blocking of the row reductions (and therefore the low bits of
        the per-attribute standard deviations) depends on the row
        stride, and the bit-exactness guarantee is stated for
        contiguous rows — the layout every caller in this package
        produces.
    min_leaf:
        Minimum samples on each side of a split.

    The caller supplies the sorted views so the O(n log n) sorts can be
    hoisted out of the per-node hot path entirely.
    """
    d, n = values_sorted.shape
    if n < 2 * min_leaf:
        return None
    _SPLIT_SEARCHES.inc()
    _SDR_EVALUATIONS.inc(d * (n - 1))

    # Per-attribute sd over that attribute's sort order — the same
    # reduction the scalar loop performs row by row, so bit-equal even
    # though all rows hold the same multiset.  ``np.add.reduce`` over
    # the last axis applies the 1-D pairwise summation to each row
    # independently (unlike ``np.std(..., axis=1)``, whose blocking can
    # drift by an ulp — enough to flip near-tie splits); the remaining
    # steps are elementwise, so the whole computation is the scalar
    # loop's float64 arithmetic, batched.
    sd_all = np.add.reduce(y_sorted, axis=-1)
    np.divide(sd_all, n, out=sd_all)
    centered = y_sorted - sd_all[:, None]
    np.multiply(centered, centered, out=centered)
    np.add.reduce(centered, axis=-1, out=sd_all)
    np.divide(sd_all, n, out=sd_all)
    np.sqrt(sd_all, out=sd_all)
    if not sd_all.any():
        return None

    # ``centered`` is spent — reuse its buffer for the squares.
    y_squared = np.multiply(y_sorted, y_sorted, out=centered)
    prefix_lengths = np.arange(1, n + 1, dtype=float)
    left_sd = _prefix_sd(y_sorted, y_squared, prefix_lengths)
    right_sd = _prefix_sd(
        y_sorted[:, ::-1], y_squared[:, ::-1], prefix_lengths
    )[:, ::-1]

    n_left = prefix_lengths[: n - 1]  # 1.0 .. n-1, same bits as before
    n_right = n - n_left
    right_factor = np.divide(n_right, n, out=n_right)
    left_factor = np.divide(n_left, n, out=n_left)  # clobbers the
    # prefix-lengths vector, which has no readers left at this point.
    # sdr = sd_all - (n_left/n)*left_sd[:-1] - (n_right/n)*right_sd[1:],
    # composed left-to-right like the scalar expression, reusing the
    # prefix-sd buffers (their tails are never read again).
    sdr = np.multiply(left_sd[:, :-1], left_factor, out=left_sd[:, :-1])
    np.subtract(sd_all[:, None], sdr, out=sdr)
    right_term = np.multiply(
        right_sd[:, 1:], right_factor, out=right_sd[:, 1:]
    )
    np.subtract(sdr, right_term, out=sdr)

    admissible = values_sorted[:, :-1] < values_sorted[:, 1:]
    # The min_leaf constraint only depends on the cut position, so the
    # forbidden margins are contiguous slices (same final mask as the
    # elementwise n_left/n_right comparisons, without the full pass).
    admissible[:, : min_leaf - 1] = False
    admissible[:, n - min_leaf :] = False
    if not sd_all.all():  # rare: a zero-sd attribute must not win
        admissible &= (sd_all != 0.0)[:, None]
    np.copyto(sdr, -np.inf, where=np.logical_not(admissible, out=admissible))

    # First max per row, then first max across rows: exactly the
    # scalar loop's tie-breaking (lowest cut index, lowest attribute).
    best_pos = sdr.argmax(axis=1)
    rows = _ROW_INDEX[:d] if d <= _ROW_INDEX.size else np.arange(d)
    best_vals = sdr[rows, best_pos]
    feature = int(best_vals.argmax())
    if best_vals[feature] == -np.inf:
        return None
    pos = int(best_pos[feature])
    threshold = 0.5 * (
        values_sorted[feature, pos] + values_sorted[feature, pos + 1]
    )
    return SplitResult(
        feature_index=feature,
        threshold=float(threshold),
        sdr=float(best_vals[feature]),
        n_left=pos + 1,
        n_right=n - pos - 1,
    )


def find_best_split(
    X: np.ndarray,
    y: np.ndarray,
    min_leaf: int,
) -> Optional[SplitResult]:
    """Best (attribute, threshold) over all attributes, or None."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2 or y.shape != (X.shape[0],):
        raise ValueError(f"inconsistent shapes X={X.shape}, y={y.shape}")
    if min_leaf < 1:
        raise ValueError(f"min_leaf must be >= 1, got {min_leaf}")
    if X.shape[0] < 2 * min_leaf:
        return None
    # The transposed argsort is F-ordered; gathering through it as-is
    # would yield strided rows, and pairwise-summation blocking (hence
    # the low bits of the per-row reductions) depends on the stride.
    # A C-contiguous index keeps every gathered row contiguous, which
    # is what the bit-exactness contract of ``best_split_presorted``
    # requires.
    order = np.ascontiguousarray(np.argsort(X, axis=0, kind="stable").T)
    values_sorted = np.take_along_axis(
        np.ascontiguousarray(X.T), order, axis=1
    )
    return best_split_presorted(values_sorted, y[order], min_leaf)
