"""Standard-deviation-reduction (SDR) split search.

M5 picks, at every node, the (attribute, threshold) pair that maximizes

    SDR = sd(S) - |S_L|/|S| * sd(S_L) - |S_R|/|S| * sd(S_R)

i.e. the split that minimizes the expected child standard deviation —
the criterion the paper describes as "minimize the variance on each
side of the split and maximize the variance between the two sides".

The search is exact: for every attribute the samples are sorted and
prefix sums of ``y`` and ``y^2`` give every candidate split's SDR in
O(n) after the O(n log n) sort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["SplitResult", "best_split_for_feature", "find_best_split"]


@dataclass(frozen=True)
class SplitResult:
    """The winning split of one search."""

    feature_index: int
    threshold: float
    sdr: float
    n_left: int
    n_right: int


def _prefix_sd(y_sorted: np.ndarray) -> np.ndarray:
    """Standard deviation of every prefix y[:k], k = 1..n (biased)."""
    k = np.arange(1, y_sorted.size + 1, dtype=float)
    s = np.cumsum(y_sorted)
    s2 = np.cumsum(y_sorted**2)
    var = np.maximum(s2 / k - (s / k) ** 2, 0.0)
    return np.sqrt(var)


def best_split_for_feature(
    values: np.ndarray,
    y: np.ndarray,
    min_leaf: int,
) -> Optional[SplitResult]:
    """Best threshold on one attribute, or None if none is admissible.

    ``min_leaf`` is the minimum number of samples on each side.
    """
    n = values.size
    if n < 2 * min_leaf:
        return None
    order = np.argsort(values, kind="stable")
    v = values[order]
    ys = y[order]

    sd_all = float(np.std(ys))
    if sd_all == 0.0:
        return None

    left_sd = _prefix_sd(ys)
    right_sd = _prefix_sd(ys[::-1])[::-1]

    # Split after position k (0-based): left = [0..k], right = [k+1..].
    k = np.arange(n - 1)
    n_left = k + 1.0
    n_right = n - n_left
    sdr = sd_all - (n_left / n) * left_sd[:-1] - (n_right / n) * right_sd[1:]

    # Admissible cut points: both sides big enough and the attribute
    # value actually changes across the boundary.
    admissible = (
        (n_left >= min_leaf) & (n_right >= min_leaf) & (v[:-1] < v[1:])
    )
    if not np.any(admissible):
        return None
    sdr = np.where(admissible, sdr, -np.inf)
    best = int(np.argmax(sdr))
    threshold = 0.5 * (v[best] + v[best + 1])
    return SplitResult(
        feature_index=-1,  # caller fills in
        threshold=float(threshold),
        sdr=float(sdr[best]),
        n_left=int(best + 1),
        n_right=int(n - best - 1),
    )


def find_best_split(
    X: np.ndarray,
    y: np.ndarray,
    min_leaf: int,
) -> Optional[SplitResult]:
    """Best (attribute, threshold) over all attributes, or None."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2 or y.shape != (X.shape[0],):
        raise ValueError(f"inconsistent shapes X={X.shape}, y={y.shape}")
    if min_leaf < 1:
        raise ValueError(f"min_leaf must be >= 1, got {min_leaf}")
    best: Optional[SplitResult] = None
    for feature_index in range(X.shape[1]):
        candidate = best_split_for_feature(X[:, feature_index], y, min_leaf)
        if candidate is None:
            continue
        if best is None or candidate.sdr > best.sdr:
            best = SplitResult(
                feature_index=feature_index,
                threshold=candidate.threshold,
                sdr=candidate.sdr,
                n_left=candidate.n_left,
                n_right=candidate.n_right,
            )
    return best
