"""Decision-rule extraction: the paper's "detailed recipes".

The abstract promises "detailed recipes for identifying the key
performance factors".  A model tree *is* such a recipe: every leaf is
reachable by one conjunction of threshold tests, and inside it one
linear equation prices each event.  This module flattens a fitted tree
into those rules — ``IF DtlbMiss <= 0.00019 AND ... THEN CPI = ...`` —
for reading, for export, and for programmatic consumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.mtree.tree import LeafNode, ModelTree, SplitNode, TreeNode

__all__ = ["Condition", "Rule", "extract_rules", "render_rules"]


@dataclass(frozen=True)
class Condition:
    """One threshold test on the path to a leaf."""

    feature: str
    op: str  # '<=' or '>'
    threshold: float

    def __str__(self) -> str:
        return f"{self.feature} {self.op} {self.threshold:.6g}"

    def matches(self, X: np.ndarray, feature_index: int) -> np.ndarray:
        column = X[:, feature_index]
        if self.op == "<=":
            return column <= self.threshold
        return column > self.threshold


@dataclass(frozen=True)
class Rule:
    """One leaf as a standalone IF/THEN rule."""

    lm_name: str
    conditions: Tuple[Condition, ...]
    equation: str
    share: float
    mean_cpi: float

    def __str__(self) -> str:
        if self.conditions:
            condition_text = " AND ".join(str(c) for c in self.conditions)
        else:
            condition_text = "TRUE"
        return (
            f"IF {condition_text}\n"
            f"THEN {self.equation}"
            f"    [{self.lm_name}: {self.share * 100:.1f}% of samples, "
            f"avg CPI {self.mean_cpi:.2f}]"
        )


def extract_rules(tree: ModelTree) -> List[Rule]:
    """Flatten a fitted tree into one rule per leaf (LM1 first)."""
    if tree.root is None:
        raise RuntimeError("tree is not fitted")
    rules: List[Rule] = []

    def visit(node: TreeNode, path: Tuple[Condition, ...]) -> None:
        if isinstance(node, LeafNode):
            rules.append(
                Rule(
                    lm_name=node.name,
                    conditions=path,
                    equation=node.model.equation(),
                    share=node.share,
                    mean_cpi=node.mean_y,
                )
            )
            return
        assert isinstance(node, SplitNode)
        visit(
            node.left,
            path + (Condition(node.feature_name, "<=", node.threshold),),
        )
        visit(
            node.right,
            path + (Condition(node.feature_name, ">", node.threshold),),
        )

    visit(tree.root, ())
    return rules


def render_rules(tree: ModelTree, min_share: float = 0.0) -> str:
    """All rules as text, largest leaves first."""
    rules = sorted(extract_rules(tree), key=lambda r: -r.share)
    return "\n\n".join(str(r) for r in rules if r.share >= min_share)
