"""Structural comparison of model trees.

Section VI explains non-transferability structurally: "the
microarchitectural events that are found most significant ... are very
different for the two suites" and "many of the key events that appear
in one tree model do not appear in the other."  This module turns that
observation into numbers:

* the split-event sets of two trees and their Jaccard overlap,
* an importance-weighted overlap (events weighted by how much target
  deviation their splits control), and
* the leaf-model event usage overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.mtree.importance import split_importance
from repro.mtree.tree import ModelTree

__all__ = ["ModelComparison", "compare_trees"]


def _jaccard(a: FrozenSet[str], b: FrozenSet[str]) -> float:
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


@dataclass(frozen=True)
class ModelComparison:
    """Structural similarity of two fitted model trees."""

    name_a: str
    name_b: str
    split_events_a: FrozenSet[str]
    split_events_b: FrozenSet[str]
    leaf_events_a: FrozenSet[str]
    leaf_events_b: FrozenSet[str]
    split_jaccard: float
    leaf_jaccard: float
    weighted_overlap: float

    @property
    def shared_split_events(self) -> Tuple[str, ...]:
        return tuple(sorted(self.split_events_a & self.split_events_b))

    @property
    def only_in_a(self) -> Tuple[str, ...]:
        return tuple(sorted(self.split_events_a - self.split_events_b))

    @property
    def only_in_b(self) -> Tuple[str, ...]:
        return tuple(sorted(self.split_events_b - self.split_events_a))

    def as_dict(self) -> dict:
        """JSON-ready rendering (the serving layer's compare endpoint)."""
        return {
            "name_a": self.name_a,
            "name_b": self.name_b,
            "split_events_a": sorted(self.split_events_a),
            "split_events_b": sorted(self.split_events_b),
            "leaf_events_a": sorted(self.leaf_events_a),
            "leaf_events_b": sorted(self.leaf_events_b),
            "shared_split_events": list(self.shared_split_events),
            "only_in_a": list(self.only_in_a),
            "only_in_b": list(self.only_in_b),
            "split_jaccard": self.split_jaccard,
            "leaf_jaccard": self.leaf_jaccard,
            "weighted_overlap": self.weighted_overlap,
        }

    def summary(self) -> str:
        return "\n".join(
            [
                f"model comparison: {self.name_a} vs {self.name_b}",
                f"  split events {self.name_a}: "
                f"{sorted(self.split_events_a)}",
                f"  split events {self.name_b}: "
                f"{sorted(self.split_events_b)}",
                f"  shared: {list(self.shared_split_events)}",
                f"  only in {self.name_a}: {list(self.only_in_a)}",
                f"  only in {self.name_b}: {list(self.only_in_b)}",
                f"  split-event Jaccard:      {self.split_jaccard:.3f}",
                f"  leaf-event Jaccard:       {self.leaf_jaccard:.3f}",
                f"  importance-weighted overlap: {self.weighted_overlap:.3f}",
            ]
        )


def _leaf_events(tree: ModelTree) -> FrozenSet[str]:
    events = set()
    for leaf in tree.leaves():
        events.update(leaf.model.active_features())
    return frozenset(events)


def compare_trees(
    tree_a: ModelTree,
    tree_b: ModelTree,
    name_a: str = "A",
    name_b: str = "B",
) -> ModelComparison:
    """Compare the event structure of two fitted trees.

    ``weighted_overlap`` weights each split event by its (normalized)
    deviation-controlled importance and sums the smaller of the two
    weights over shared events — 1.0 means both trees distribute their
    discriminating power over the same events identically, 0.0 means no
    shared split event at all.
    """
    if tree_a.root is None or tree_b.root is None:
        raise RuntimeError("both trees must be fitted")
    splits_a = frozenset(tree_a.split_features())
    splits_b = frozenset(tree_b.split_features())
    importance_a = split_importance(tree_a)
    importance_b = split_importance(tree_b)
    weighted = sum(
        min(importance_a.get(event, 0.0), importance_b.get(event, 0.0))
        for event in splits_a | splits_b
    )
    return ModelComparison(
        name_a=name_a,
        name_b=name_b,
        split_events_a=splits_a,
        split_events_b=splits_b,
        leaf_events_a=_leaf_events(tree_a),
        leaf_events_b=_leaf_events(tree_b),
        split_jaccard=_jaccard(splits_a, splits_b),
        leaf_jaccard=_jaccard(_leaf_events(tree_a), _leaf_events(tree_b)),
        weighted_overlap=weighted,
    )
