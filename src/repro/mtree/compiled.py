"""Compiled batch prediction: a fitted model tree as a few vector ops.

:meth:`~repro.mtree.tree.ModelTree.predict` is a recursive walk — at
every split node it partitions its row set with a boolean mask, calls
each leaf's linear model on a gathered sub-matrix, and blends ancestor
models back in on the way up.  Correct, readable, and dominated by
per-node Python and tiny-array dispatch overhead: a 20-leaf tree costs
a few *hundred* numpy calls per batch.

This module flattens the whole evaluation into a handful of vectorized
operations, generalizing the signed path-matrix trick the drift hub
pioneered for leaf routing:

* **Routing.**  A leaf's decision path is a conjunction of split
  outcomes, so with one ``±1`` signed matrix over (splits x leaves), a
  row belongs to leaf ``l`` exactly when its comparison vector scores
  ``+1`` on every split the path takes left and ``-1`` on every split
  it takes right — i.e. when the signed score equals the number of
  left turns on ``l``'s path.  Classifying a batch is one comparison
  pass over the split predicates plus one (rows x splits) @ (splits x
  leaves) matmul, independent of depth.  The score matmul runs in
  float32: scores are small integers (bounded by the split count), all
  exactly representable, so the comparison against the left-turn count
  is exact.
* **Leaf models.**  All leaf models live in one contiguous
  ``(n_leaves, n_features + 1)`` matrix (coefficients plus intercept).
  Evaluation is a single row gather and one batched row-wise dot.
* **Smoothing.**  Quinlan's smoothing blends each leaf prediction with
  its ancestors' models, nearest first.  Because every model involved
  is linear, the blend *composes* into the leaves exactly
  (:func:`repro.mtree.smoothing.compose_smoothed` — the same
  transformation WEKA applies when it prints a smoothed tree), so the
  compiled tree simply carries a second coefficient matrix with the
  ancestor influence folded in.  Smoothed prediction costs exactly
  one gather/dot, the same as raw prediction.

Every dot product goes through :func:`repro.mtree.linear.row_dot`, the
library's batch-invariant prediction primitive, and the recursive walk
evaluates the *same* composed leaf models through the same primitive,
so in float64 the compiled evaluator is **bit-identical** to the
recursive walk by construction — ``tests/mtree/test_compiled.py``
holds both backends to ``np.array_equal`` across a randomized corpus.

An optional float32 mode (``dtype=np.float32``) halves the bandwidth
of the model arithmetic for throughput-critical callers.  Routing
always compares in float64, so *leaf assignment is identical* in both
modes; only the linear algebra is single-precision, with relative
error around 1e-5 (documented in docs/PERFORMANCE.md; composed
smoothing sums amplify rounding past the naive single-dot 1e-7).

:class:`CompiledForest` fuses several compiled trees over one request
batch — a single comparison pass feeds every member's routing, so
evaluating champion + challengers costs barely more than the champion
alone.  That is what makes serving-time shadow evaluation ~free.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mtree.linear import row_dot

__all__ = ["CompiledTree", "CompiledForest"]


class CompiledTree:
    """A fitted :class:`~repro.mtree.tree.ModelTree`, flattened.

    Construction walks the tree once (depth-first, so compiled leaf
    slots match the LM1..LMk left-to-right naming) and never touches
    the tree again — serving a registry model compiles it the first
    time it predicts and reuses the arrays for every later batch.
    """

    def __init__(self, tree, dtype=np.float64) -> None:
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(
                f"dtype must be float64 or float32, got {dtype}"
            )
        root = tree._require_fitted()
        self.feature_names: Tuple[str, ...] = tree.feature_names
        self.n_features = len(tree.feature_names)
        self.dtype = dtype
        self.smooth_default = bool(tree.config.smooth)
        self.smoothing_k = float(tree.config.smoothing_k)

        split_feature: List[int] = []
        split_threshold: List[float] = []
        leaf_names: List[str] = []
        leaf_rows: List[np.ndarray] = []
        #: Per leaf: [(split slot, went_left)] along its path.
        leaf_paths: List[List[Tuple[int, bool]]] = []

        def pack(model) -> np.ndarray:
            packed = np.empty(self.n_features + 1)
            packed[:-1] = model.coef
            packed[-1] = model.intercept
            return packed

        def walk(node, path) -> None:
            if hasattr(node, "threshold"):  # SplitNode
                slot = len(split_feature)
                split_feature.append(node.feature_index)
                split_threshold.append(node.threshold)
                walk(node.left, path + [(slot, True)])
                walk(node.right, path + [(slot, False)])
            else:
                leaf_names.append(node.name)
                leaf_rows.append(pack(node.model))
                leaf_paths.append(path)

        walk(root, [])
        n_splits, n_leaves = len(split_feature), len(leaf_names)
        self.n_leaves = n_leaves
        self.leaf_names: Tuple[str, ...] = tuple(leaf_names)
        self._leaf_name_arr = np.array(leaf_names, dtype=object)
        self._split_feature = np.asarray(split_feature, dtype=np.int64)
        self._split_threshold = np.asarray(split_threshold, dtype=float)
        signs = np.zeros((n_splits, n_leaves), dtype=np.float32)
        lefts = np.zeros(n_leaves, dtype=np.float32)
        for l, path in enumerate(leaf_paths):
            for slot, went_left in path:
                signs[slot, l] = 1.0 if went_left else -1.0
                if went_left:
                    lefts[l] += 1.0
        self._signs = signs
        self._lefts = lefts

        self._leaf_models = np.ascontiguousarray(
            np.stack(leaf_rows), dtype=dtype
        )
        # Smoothing folds into the leaves (every model on a root-leaf
        # path is linear); the composed twin's leaf models — in the
        # same left-to-right LM order — form the second matrix.  With
        # k == 0 smoothing is the identity, so both matrices coincide.
        if self.smoothing_k > 0:
            composed_leaves = tree._composed().leaves()
            assert [leaf.name for leaf in composed_leaves] == leaf_names
            self._smoothed_models = np.ascontiguousarray(
                np.stack([pack(leaf.model) for leaf in composed_leaves]),
                dtype=dtype,
            )
        else:
            self._smoothed_models = self._leaf_models

    # -- routing ---------------------------------------------------------

    def _check(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise ValueError(
                f"expected (n, {self.n_features}) inputs, got shape {X.shape}"
            )
        return X

    def route(
        self,
        X: np.ndarray,
        *,
        checked: bool = False,
        went_left: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Leaf slot (0..n_leaves-1, LM order) for every row.

        Comparisons run on the float64 inputs regardless of
        ``dtype``, so routing never depends on the precision mode.
        ``went_left`` optionally supplies a precomputed comparison
        matrix (a :class:`CompiledForest` shares one across members).
        """
        if not checked:
            X = self._check(X)
        if self._split_feature.size == 0:
            return np.zeros(X.shape[0], dtype=np.int64)
        if went_left is None:
            went_left = X[:, self._split_feature] <= self._split_threshold
        # score[r, l] counts left turns taken minus wrong-way right
        # turns; it equals lefts[l] exactly when every split on l's
        # path went the required way, and the tree partitions the
        # feature space, so exactly one leaf matches each row.
        score = went_left.astype(np.float32) @ self._signs
        return np.argmax(score == self._lefts, axis=1)

    def assign_names(self, X: np.ndarray) -> np.ndarray:
        """Leaf (LM) name per row; equals ``ModelTree.assign_leaves``."""
        return self._leaf_name_arr[self.route(X)]

    # -- prediction ------------------------------------------------------

    def predict(
        self,
        X: np.ndarray,
        smooth: Optional[bool] = None,
        *,
        checked: bool = False,
        went_left: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Predicted CPI per row; smoothing per the tree's config unless
        overridden.  Smoothed and raw prediction cost the same — one
        gather and one row-wise dot against the matching coefficient
        matrix.  In float64 mode the result is bit-identical to the
        recursive walk; in float32 mode the model arithmetic (not the
        routing) runs in single precision.
        """
        X = X if checked else self._check(X)
        use_smoothing = (
            self.smooth_default if smooth is None else bool(smooth)
        )
        slots = self.route(X, checked=True, went_left=went_left)
        Xd = X if self.dtype == np.float64 else X.astype(self.dtype)
        f = self.n_features
        models = (
            self._smoothed_models
            if use_smoothing and self.smoothing_k > 0
            else self._leaf_models
        )
        gathered = models[slots]
        return row_dot(Xd, gathered[:, :f]) + gathered[:, f]


class CompiledForest:
    """Several compiled trees evaluated against one batch in one call.

    All members must share the feature schema (they predict the same
    request rows).  The split predicates of every member are fused into
    a single comparison pass; each member then routes and evaluates
    from its slice of the shared comparison matrix.  Per-member outputs
    are bit-identical to that member's :meth:`CompiledTree.predict`.
    """

    def __init__(
        self,
        members: Sequence[Tuple[str, object]],
        dtype=np.float64,
    ) -> None:
        """``members`` is an ordered sequence of ``(name, tree)`` pairs
        where ``tree`` is a fitted :class:`~repro.mtree.tree.ModelTree`
        or an already-:class:`CompiledTree`.
        """
        if not members:
            raise ValueError("a forest needs at least one member")
        self.names: Tuple[str, ...] = tuple(name for name, _ in members)
        if len(set(self.names)) != len(self.names):
            raise ValueError(f"duplicate member names in {self.names}")
        compiled = [
            tree if isinstance(tree, CompiledTree) else CompiledTree(tree, dtype)
            for _, tree in members
        ]
        schema = compiled[0].feature_names
        for name, member in zip(self.names, compiled):
            if member.feature_names != schema:
                raise ValueError(
                    f"member {name!r} has feature schema "
                    f"{member.feature_names}, expected {schema}"
                )
        self.members: Tuple[CompiledTree, ...] = tuple(compiled)
        self.feature_names = schema
        self.n_features = len(schema)
        # Fused comparison pass: concatenated split predicates, with
        # each member owning a slice of the comparison matrix.
        self._all_features = np.concatenate(
            [m._split_feature for m in compiled]
        )
        self._all_thresholds = np.concatenate(
            [m._split_threshold for m in compiled]
        )
        bounds = np.cumsum([0] + [m._split_feature.size for m in compiled])
        #: Column range of each member in the :meth:`comparisons` matrix.
        self.slices: Tuple[slice, ...] = tuple(
            slice(int(bounds[i]), int(bounds[i + 1]))
            for i in range(len(compiled))
        )

    def __len__(self) -> int:
        return len(self.members)

    def comparisons(
        self, X: np.ndarray, *, checked: bool = False
    ) -> np.ndarray:
        """The fused ``(n, total_splits)`` comparison matrix.

        One pass evaluates every member's split predicates; member
        ``i`` routes (or predicts) from columns ``self.slices[i]`` via
        the ``went_left`` parameter of :meth:`CompiledTree.route` /
        :meth:`CompiledTree.predict`.  Callers that need different
        operations per member — e.g. the drift hub, which *routes* the
        champion but *predicts* the challenger — share the pass this
        way without paying for outputs they discard.
        """
        if not checked:
            X = self.members[0]._check(X)
        if self._all_features.size == 0:
            return np.zeros((X.shape[0], 0), dtype=bool)
        return X[:, self._all_features] <= self._all_thresholds

    def route(self, X: np.ndarray) -> np.ndarray:
        """(n_members, n) leaf slots, one shared comparison pass."""
        X = self.members[0]._check(X)
        went = self.comparisons(X, checked=True)
        slots = np.empty((len(self.members), X.shape[0]), dtype=np.int64)
        for i, (member, sl) in enumerate(zip(self.members, self.slices)):
            slots[i] = member.route(
                X, checked=True, went_left=np.ascontiguousarray(went[:, sl])
            )
        return slots

    def predict(
        self, X: np.ndarray, smooth: Optional[bool] = None
    ) -> np.ndarray:
        """(n_members, n) predictions for one request batch.

        Row ``i`` equals ``self.members[i].predict(X, smooth)`` bit for
        bit; the fused pass only shares the comparison work.
        """
        X = self.members[0]._check(X)
        went = self.comparisons(X, checked=True)
        out = np.empty(
            (len(self.members), X.shape[0]),
            dtype=np.result_type(*(m.dtype for m in self.members)),
        )
        for i, (member, sl) in enumerate(zip(self.members, self.slices)):
            out[i] = member.predict(
                X,
                smooth=smooth,
                checked=True,
                went_left=np.ascontiguousarray(went[:, sl]),
            )
        return out

    def predict_dict(
        self, X: np.ndarray, smooth: Optional[bool] = None
    ) -> Dict[str, np.ndarray]:
        """Member-name -> predictions mapping for one batch."""
        stacked = self.predict(X, smooth=smooth)
        return {name: stacked[i] for i, name in enumerate(self.names)}
