"""Event importance and per-sample CPI attribution.

The paper's introduction asks three questions; the third — "How much
performance change can be attributed to each [event]?" — is answered
here in three complementary ways:

* :func:`split_importance` — structural importance: how much target
  deviation each event's split nodes removed, weighted by the samples
  they saw ("the size of the subtree covered by a split node is a
  qualitative indicator of the importance of the split event").
* :func:`permutation_importance` — behavioural importance: how much
  held-out accuracy is lost when one event's column is shuffled.
* :func:`cpi_attribution` — per-sample decomposition of the predicted
  CPI into per-event contributions ``coef_e * density_e`` of the leaf
  model the sample lands in (plus the intercept as the base cost), the
  quantitative version of the paper's LM1 reading ("execution time
  increases by 4.73 cycles for every L1 miss event").
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.mtree.tree import LeafNode, ModelTree, SplitNode, TreeNode

__all__ = [
    "split_importance",
    "permutation_importance",
    "cpi_attribution",
    "partial_dependence",
]


def split_importance(tree: ModelTree, normalize: bool = True) -> Dict[str, float]:
    """Deviation-reduction importance of each split event.

    Each split node contributes ``n_samples * (sd(node) - weighted child
    sd)`` to its feature; with ``normalize`` the scores sum to 1.
    Features never split on are absent from the result.
    """
    if tree.root is None:
        raise RuntimeError("tree is not fitted")
    scores: Dict[str, float] = {}

    def visit(node: TreeNode) -> None:
        if isinstance(node, LeafNode):
            return
        left, right = node.left, node.right
        n = node.n_samples
        # Between-child separation in CPI, sample weighted: an exact
        # SDR needs per-node sd, which the fitted tree does not retain;
        # the between-group term is the component the split controls.
        balance = (left.n_samples / n) * (right.n_samples / n)
        separation = abs(left.mean_y - right.mean_y)
        scores[node.feature_name] = scores.get(node.feature_name, 0.0) + (
            n * balance * separation
        )
        visit(left)
        visit(right)

    visit(tree.root)
    if normalize and scores:
        total = sum(scores.values())
        if total > 0:
            scores = {k: v / total for k, v in scores.items()}
    return dict(sorted(scores.items(), key=lambda item: -item[1]))


def permutation_importance(
    tree: ModelTree,
    X: np.ndarray,
    y: np.ndarray,
    rng: Optional[np.random.Generator] = None,
    n_repeats: int = 3,
) -> Dict[str, float]:
    """Held-out MAE increase when each feature column is shuffled.

    Features the model truly relies on produce large increases; features
    absent from every split and leaf model produce ~0.
    """
    if tree.root is None:
        raise RuntimeError("tree is not fitted")
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2 or y.shape != (X.shape[0],):
        raise ValueError(f"inconsistent shapes X={X.shape}, y={y.shape}")
    if n_repeats < 1:
        raise ValueError(f"n_repeats must be >= 1, got {n_repeats}")
    rng = rng or np.random.default_rng(0)
    base_mae = float(np.mean(np.abs(tree.predict(X) - y)))
    importances: Dict[str, float] = {}
    for column, name in enumerate(tree.feature_names):
        increases = []
        for _ in range(n_repeats):
            shuffled = X.copy()
            shuffled[:, column] = rng.permutation(shuffled[:, column])
            mae = float(np.mean(np.abs(tree.predict(shuffled) - y)))
            increases.append(mae - base_mae)
        importances[name] = float(np.mean(increases))
    return dict(sorted(importances.items(), key=lambda item: -item[1]))


def partial_dependence(
    tree: ModelTree,
    X: np.ndarray,
    feature: str,
    grid: Optional[np.ndarray] = None,
    n_grid: int = 25,
) -> tuple:
    """Average-prediction response curve of CPI to one event.

    At each grid value v, every sample's ``feature`` column is set to v
    and predictions are averaged — the standard partial-dependence
    estimate of "how much performance change can be attributed to"
    moving this one event, holding the joint distribution of the others
    fixed.  Returns ``(grid, mean_predictions)``.
    """
    if tree.root is None:
        raise RuntimeError("tree is not fitted")
    X = np.asarray(X, dtype=float)
    if X.ndim != 2 or X.shape[1] != len(tree.feature_names):
        raise ValueError(
            f"expected (n, {len(tree.feature_names)}) inputs, got {X.shape}"
        )
    try:
        column = tree.feature_names.index(feature)
    except ValueError:
        raise KeyError(
            f"unknown feature {feature!r}; have {list(tree.feature_names)}"
        ) from None
    if grid is None:
        lo, hi = np.percentile(X[:, column], [2.0, 98.0])
        if lo == hi:
            hi = lo + 1.0
        grid = np.linspace(lo, hi, n_grid)
    grid = np.asarray(grid, dtype=float)
    if grid.ndim != 1 or grid.size == 0:
        raise ValueError("grid must be a non-empty 1-D array")
    means = np.empty(grid.size)
    work = X.copy()
    for i, value in enumerate(grid):
        work[:, column] = value
        means[i] = float(tree.predict(work).mean())
    return grid, means


def cpi_attribution(tree: ModelTree, X: np.ndarray) -> Dict[str, np.ndarray]:
    """Per-sample CPI contribution of every event (plus 'Base').

    For each sample, route to its (unsmoothed) leaf model and report
    ``coef_e * x_e`` per event and the intercept as 'Base'.  The
    contributions sum to the unsmoothed prediction exactly.
    """
    if tree.root is None:
        raise RuntimeError("tree is not fitted")
    X = np.asarray(X, dtype=float)
    if X.ndim != 2 or X.shape[1] != len(tree.feature_names):
        raise ValueError(
            f"expected (n, {len(tree.feature_names)}) inputs, got {X.shape}"
        )
    n = X.shape[0]
    contributions = {name: np.zeros(n) for name in tree.feature_names}
    contributions["Base"] = np.zeros(n)
    assignments = tree.assign_leaves(X)
    for leaf in tree.leaves():
        rows = np.nonzero(assignments == leaf.name)[0]
        if rows.size == 0:
            continue
        contributions["Base"][rows] = leaf.model.intercept
        for column, name in enumerate(tree.feature_names):
            coef = leaf.model.coef[column]
            if coef != 0.0:
                contributions[name][rows] = coef * X[rows, column]
    return contributions
