"""Pruning decision logic.

M5 grows a large tree, then walks it bottom-up: at every interior node
it fits a single linear model on the node's samples (using only
attributes that appear in the subtree) and compares that model's
*adjusted* error against the subtree's adjusted error.  If the single
model is estimated to do at least as well, the subtree is replaced by
a leaf — this is what turns most of the grown tree into the paper's
two-dozen interpretable linear models.
"""

from __future__ import annotations

from repro.mtree.linear import LinearModel, adjusted_error

__all__ = ["node_model_error", "combine_subtree_errors", "should_prune"]


def node_model_error(model: LinearModel, penalty: float = 2.0) -> float:
    """Adjusted error of a node's own linear model."""
    return adjusted_error(model.train_mae, model.n_samples, model.n_params, penalty)


def combine_subtree_errors(
    left_error: float, n_left: int, right_error: float, n_right: int
) -> float:
    """Sample-weighted adjusted error of a split node's two subtrees."""
    if n_left <= 0 or n_right <= 0:
        raise ValueError("both subtrees must contain samples")
    total = n_left + n_right
    return (n_left * left_error + n_right * right_error) / total


def should_prune(model_error: float, subtree_error: float) -> bool:
    """Replace the subtree when the single model is at least as good."""
    return model_error <= subtree_error
