"""M5 prediction smoothing.

When smoothing is enabled, the raw prediction of a leaf is blended with
the linear models of its ancestors on the way back to the root:

    p' = (n * p_below + k * p_node) / (n + k)

where ``n`` is the number of training samples at the node below and
``k`` a smoothing constant (Quinlan used 15).  Smoothing compensates
for sharp discontinuities between adjacent leaf models; the paper's
WEKA M5' uses it by default.

Because every model involved is linear, the blend can be *composed*
into the leaves exactly (WEKA does this when it prints a smoothed
tree): :func:`compose_smoothed` returns an equivalent tree whose leaf
equations already include the ancestor influence, so its raw
predictions equal the original tree's smoothed predictions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SMOOTHING_K", "smoothed_combine", "compose_smoothed"]

#: Quinlan's default smoothing constant.
SMOOTHING_K = 15.0


def smoothed_combine(
    below_pred: np.ndarray,
    below_n: int,
    node_pred: np.ndarray,
    k: float = SMOOTHING_K,
) -> np.ndarray:
    """Blend a subtree's prediction with its parent model's prediction."""
    if below_n <= 0:
        raise ValueError(f"below_n must be positive, got {below_n}")
    if k < 0:
        raise ValueError(f"smoothing constant must be non-negative, got {k}")
    return (below_n * below_pred + k * node_pred) / (below_n + k)


def compose_smoothed(tree: "ModelTree") -> "ModelTree":
    """An equivalent tree with smoothing compiled into the leaf models.

    For each leaf, walk its root-to-leaf path and fold every ancestor's
    model into the leaf model with the same (n, k) weights the runtime
    smoothing uses.  The returned tree has ``smooth=False`` and its raw
    predictions equal the input tree's smoothed predictions exactly
    (up to floating-point associativity).

    Reading the composed equations shows what the smoothed model
    *actually* computes — useful because smoothing quietly reintroduces
    ancestor attributes that leaf-level elimination removed.
    """
    from dataclasses import replace as dataclass_replace

    from repro.mtree.linear import LinearModel
    from repro.mtree.tree import LeafNode, ModelTree, ModelTreeConfig, SplitNode

    if tree.root is None:
        raise RuntimeError("tree is not fitted")
    k = tree.config.smoothing_k

    def blend(child: LinearModel, child_n: int, parent: LinearModel) -> LinearModel:
        weight_child = child_n / (child_n + k)
        weight_parent = k / (child_n + k)
        return LinearModel(
            feature_names=child.feature_names,
            intercept=weight_child * child.intercept
            + weight_parent * parent.intercept,
            coef=weight_child * child.coef + weight_parent * parent.coef,
            n_samples=child.n_samples,
            train_mae=child.train_mae,
        )

    def visit(node, ancestors):
        if isinstance(node, LeafNode):
            model = node.model
            n_below = node.n_samples
            # Fold ancestors nearest-first, exactly as the runtime
            # smoothing unwinds the recursion.
            for ancestor in reversed(ancestors):
                model = blend(model, n_below, ancestor.model)
                n_below = ancestor.n_samples
            return LeafNode(
                model=model,
                n_samples=node.n_samples,
                mean_y=node.mean_y,
                name=node.name,
                share=node.share,
            )
        assert isinstance(node, SplitNode)
        return SplitNode(
            feature_index=node.feature_index,
            feature_name=node.feature_name,
            threshold=node.threshold,
            left=visit(node.left, ancestors + [node]),
            right=visit(node.right, ancestors + [node]),
            model=node.model,
            n_samples=node.n_samples,
            mean_y=node.mean_y,
            share=node.share,
        )

    composed = ModelTree(dataclass_replace(tree.config, smooth=False))
    composed.feature_names = tree.feature_names
    composed.n_train = tree.n_train
    composed.root = visit(tree.root, [])
    composed._finalize_from_loaded()
    return composed
