"""M5' model trees — the paper's core analytical engine.

A from-scratch implementation of Quinlan's M5 algorithm with the M5'
refinements (Wang & Witten), as used by the paper via WEKA:

* growth by standard-deviation-reduction (SDR) split search
  (:mod:`repro.mtree.splitting`),
* multivariate linear models at the leaves with greedy attribute
  elimination driven by the adjusted error (:mod:`repro.mtree.linear`),
* pruning that replaces subtrees whose estimated error is no better
  than their leaf model's (:mod:`repro.mtree.pruning`),
* optional smoothing of leaf predictions along the path to the root
  (:mod:`repro.mtree.smoothing`),
* rendering (ASCII + Graphviz DOT) with the per-node sample shares and
  average CPI annotations of the paper's Figures 1 and 2
  (:mod:`repro.mtree.render`), and JSON serialization.
"""

from repro.mtree.compiled import CompiledForest, CompiledTree
from repro.mtree.linear import LinearModel, fit_linear_model, row_dot
from repro.mtree.tree import LeafNode, ModelTree, ModelTreeConfig, SplitNode
from repro.mtree.importance import (
    cpi_attribution,
    permutation_importance,
    split_importance,
)
from repro.mtree.render import render_ascii, render_dot, render_equations
from repro.mtree.serialize import tree_from_dict, tree_to_dict
from repro.mtree.smoothing import compose_smoothed

__all__ = [
    "CompiledForest",
    "CompiledTree",
    "LeafNode",
    "LinearModel",
    "ModelTree",
    "ModelTreeConfig",
    "SplitNode",
    "compose_smoothed",
    "cpi_attribution",
    "fit_linear_model",
    "permutation_importance",
    "render_ascii",
    "render_dot",
    "render_equations",
    "row_dot",
    "split_importance",
    "tree_from_dict",
    "tree_to_dict",
]
