"""JSON-compatible serialization of fitted model trees.

``tree_to_dict``/``tree_from_dict`` round-trip a fitted tree through
plain dicts/lists so models can be archived next to experiment outputs
(the shape of a characterization study depends on the exact tree, so
persisting it matters for reproducibility) and served long after the
training process exited (:mod:`repro.serve` stores exactly this
payload as its on-disk artifact).

Versioning: payloads carry ``schema_version`` (current: 2) and, for
readers predating it, the original ``format_version: 1`` marker.
Version-1 payloads (no ``schema_version``) load unchanged; unknown
versions are rejected rather than guessed at.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.mtree.linear import LinearModel
from repro.mtree.tree import LeafNode, ModelTree, ModelTreeConfig, SplitNode, TreeNode

__all__ = ["tree_to_dict", "tree_from_dict", "SCHEMA_VERSION"]

#: Legacy marker written by (and required of) version-1 payloads.
_FORMAT_VERSION = 1

#: Current payload schema.  Bump when the payload shape changes;
#: ``tree_from_dict`` keeps accepting every version it knows how to read.
SCHEMA_VERSION = 2


def _model_to_dict(model: LinearModel) -> Dict[str, Any]:
    return {
        "intercept": model.intercept,
        "coef": model.coef.tolist(),
        "n_samples": model.n_samples,
        "train_mae": model.train_mae,
    }


def _model_from_dict(payload: Dict[str, Any], feature_names) -> LinearModel:
    return LinearModel(
        feature_names=tuple(feature_names),
        intercept=float(payload["intercept"]),
        coef=np.asarray(payload["coef"], dtype=float),
        n_samples=int(payload["n_samples"]),
        train_mae=float(payload["train_mae"]),
    )


def _node_to_dict(node: TreeNode) -> Dict[str, Any]:
    if isinstance(node, LeafNode):
        return {
            "kind": "leaf",
            "name": node.name,
            "n_samples": node.n_samples,
            "mean_y": node.mean_y,
            "share": node.share,
            "model": _model_to_dict(node.model),
        }
    return {
        "kind": "split",
        "feature_index": node.feature_index,
        "feature_name": node.feature_name,
        "threshold": node.threshold,
        "n_samples": node.n_samples,
        "mean_y": node.mean_y,
        "share": node.share,
        "model": _model_to_dict(node.model),
        "left": _node_to_dict(node.left),
        "right": _node_to_dict(node.right),
    }


def _node_from_dict(payload: Dict[str, Any], feature_names) -> TreeNode:
    if payload["kind"] == "leaf":
        return LeafNode(
            model=_model_from_dict(payload["model"], feature_names),
            n_samples=int(payload["n_samples"]),
            mean_y=float(payload["mean_y"]),
            name=str(payload["name"]),
            share=float(payload["share"]),
        )
    if payload["kind"] != "split":
        raise ValueError(f"unknown node kind {payload.get('kind')!r}")
    return SplitNode(
        feature_index=int(payload["feature_index"]),
        feature_name=str(payload["feature_name"]),
        threshold=float(payload["threshold"]),
        left=_node_from_dict(payload["left"], feature_names),
        right=_node_from_dict(payload["right"], feature_names),
        model=_model_from_dict(payload["model"], feature_names),
        n_samples=int(payload["n_samples"]),
        mean_y=float(payload["mean_y"]),
        share=float(payload["share"]),
    )


def tree_to_dict(tree: ModelTree) -> Dict[str, Any]:
    """Serialize a fitted tree to a JSON-compatible dict."""
    if tree.root is None:
        raise RuntimeError("cannot serialize an unfitted tree")
    config = tree.config
    return {
        "schema_version": SCHEMA_VERSION,
        "format_version": _FORMAT_VERSION,
        "config": {
            "min_leaf": config.min_leaf,
            "sd_threshold": config.sd_threshold,
            "max_depth": config.max_depth,
            "prune": config.prune,
            "smooth": config.smooth,
            "smoothing_k": config.smoothing_k,
            "eliminate": config.eliminate,
            "penalty": config.penalty,
        },
        "feature_names": list(tree.feature_names),
        "n_train": tree.n_train,
        "root": _node_to_dict(tree.root),
    }


def tree_from_dict(payload: Dict[str, Any]) -> ModelTree:
    """Reconstruct a fitted tree from :func:`tree_to_dict` output."""
    schema = payload.get("schema_version")
    legacy = payload.get("format_version")
    if schema is None:
        # Version-1 payload: identified solely by the legacy marker.
        if legacy != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported model tree format version {legacy!r} "
                f"(expected {_FORMAT_VERSION})"
            )
    elif schema != SCHEMA_VERSION or (
        legacy is not None and legacy != _FORMAT_VERSION
    ):
        raise ValueError(
            f"unsupported model tree schema version {schema!r} "
            f"(format version {legacy!r}); this reader supports "
            f"schema <= {SCHEMA_VERSION}"
        )
    tree = ModelTree(ModelTreeConfig(**payload["config"]))
    tree.feature_names = tuple(payload["feature_names"])
    tree.n_train = int(payload["n_train"])
    tree.root = _node_from_dict(payload["root"], tree.feature_names)
    tree._finalize_from_loaded()
    return tree
