"""A successor machine, derived from the Core 2 ground truth.

The paper is explicit that "the results are specific to the
architecture, platform, and compiler used."  To test that caveat
(experiment E19), this module builds a Nehalem-generation-like variant
of the Core 2 cost model: same regime structure (the workloads and
their event densities are unchanged), different costs —

* slower relative memory (higher effective L2-miss cost at the higher
  clock),
* a deeper pipeline (costlier branch mispredicts),
* much better store-to-load forwarding (load-block penalties halved),
* twice the SIMD throughput,
* a larger second-level TLB (cheaper DTLB misses),
* and a lower base CPI from the wider out-of-order core.

Only per-event *costs* change; structural parameters that would alter
the measured densities themselves (cache sizes, predictor tables) are
left alone so the same workload data remains meaningful.
"""

from __future__ import annotations

from typing import Mapping

from repro.uarch.core2 import build_core2_cost_model
from repro.uarch.costmodel import CostModel, OracleLeaf, OracleNode, OracleSplit

__all__ = ["build_nextgen_cost_model", "NEXTGEN_COST_SCALING"]

#: Multipliers applied to the Core 2 leaf coefficients, per event.
NEXTGEN_COST_SCALING: Mapping[str, float] = {
    "L2Miss": 1.80,
    "L1DMiss": 1.30,
    "MisprBr": 2.00,
    "LdBlkOlp": 0.35,
    "LdBlkStA": 0.40,
    "LdBlkStD": 0.40,
    "SplitLoad": 0.5,
    "SplitStore": 0.5,
    "SIMD": 0.40,
    "DtlbMiss": 0.60,
    "PageWalk": 0.70,
}

#: Multiplier on every leaf intercept (wider issue, lower base CPI).
_INTERCEPT_SCALE = 0.72


def _transform(node: OracleNode) -> OracleNode:
    if isinstance(node, OracleLeaf):
        coefs = {
            feature: coef * NEXTGEN_COST_SCALING.get(feature, 1.0)
            for feature, coef in node.coefs.items()
        }
        return OracleLeaf(
            name=node.name,
            intercept=node.intercept * _INTERCEPT_SCALE,
            coefs=coefs,
        )
    return OracleSplit(
        feature=node.feature,
        threshold=node.threshold,
        left=_transform(node.left),
        right=_transform(node.right),
    )


def build_nextgen_cost_model() -> CostModel:
    """The successor machine's ground-truth cost model."""
    core2 = build_core2_cost_model()
    return CostModel(_transform(core2.root), core2.feature_names)
