"""Piecewise-linear ground-truth CPI cost model.

A :class:`CostModel` is a binary decision tree over event densities:
interior :class:`OracleSplit` nodes route each interval by a threshold
test and :class:`OracleLeaf` nodes hold a sparse linear equation
``CPI = intercept + sum(coef_e * density_e)``.  This is the structure
the paper attributes to the machine itself ("distinct linear behavior
models"), and it is what the M5' model tree has to rediscover from
noisy observations.

The concrete Core-2-like instance lives in :mod:`repro.uarch.core2`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple, Union

import numpy as np

__all__ = ["OracleLeaf", "OracleSplit", "CostModel"]


@dataclass(frozen=True)
class OracleLeaf:
    """A linear CPI regime: ``CPI = intercept + sum(coefs[e] * e)``."""

    name: str
    intercept: float
    coefs: Mapping[str, float] = field(default_factory=dict)

    def evaluate(self, X: np.ndarray, index: Mapping[str, int]) -> np.ndarray:
        """CPI for each row of ``X`` (columns named by ``index``)."""
        cpi = np.full(X.shape[0], self.intercept, dtype=float)
        for feature, coef in self.coefs.items():
            cpi += coef * X[:, index[feature]]
        return cpi

    def describe(self) -> str:
        terms = " + ".join(
            f"{coef:g}*{feature}" for feature, coef in self.coefs.items()
        )
        return f"{self.name}: CPI = {self.intercept:g}" + (f" + {terms}" if terms else "")


@dataclass(frozen=True)
class OracleSplit:
    """An interior node: rows with ``feature <= threshold`` go left."""

    feature: str
    threshold: float
    left: "OracleNode"
    right: "OracleNode"


OracleNode = Union[OracleLeaf, OracleSplit]


class CostModel:
    """The machine: evaluates ground-truth CPI and regime membership."""

    def __init__(self, root: OracleNode, feature_names: Sequence[str]) -> None:
        self.root = root
        self.feature_names: Tuple[str, ...] = tuple(feature_names)
        self._index: Dict[str, int] = {n: i for i, n in enumerate(self.feature_names)}
        for leaf in self.leaves():
            unknown = set(leaf.coefs) - set(self.feature_names)
            if unknown:
                raise ValueError(
                    f"leaf {leaf.name!r} references unknown features {sorted(unknown)}"
                )
        for split in self._splits(self.root):
            if split.feature not in self._index:
                raise ValueError(f"split references unknown feature {split.feature!r}")
        names = [leaf.name for leaf in self.leaves()]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate leaf names: {names}")

    # -- structure ----------------------------------------------------

    def leaves(self) -> List[OracleLeaf]:
        """All leaf regimes, left-to-right."""
        out: List[OracleLeaf] = []

        def visit(node: OracleNode) -> None:
            if isinstance(node, OracleLeaf):
                out.append(node)
            else:
                visit(node.left)
                visit(node.right)

        visit(self.root)
        return out

    @staticmethod
    def _splits(node: OracleNode) -> List[OracleSplit]:
        if isinstance(node, OracleLeaf):
            return []
        return (
            [node]
            + CostModel._splits(node.left)
            + CostModel._splits(node.right)
        )

    def split_features(self) -> List[str]:
        """Features used by interior nodes, in preorder."""
        return [s.feature for s in self._splits(self.root)]

    # -- evaluation -----------------------------------------------------

    def _check(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != len(self.feature_names):
            raise ValueError(
                f"expected (n, {len(self.feature_names)}) densities, got {X.shape}"
            )
        return X

    def regime_names(self, X: np.ndarray) -> np.ndarray:
        """Name of the regime each row falls into."""
        X = self._check(X)
        out = np.empty(X.shape[0], dtype=object)

        def route(node: OracleNode, rows: np.ndarray) -> None:
            if rows.size == 0:
                return
            if isinstance(node, OracleLeaf):
                out[rows] = node.name
                return
            values = X[rows, self._index[node.feature]]
            go_left = values <= node.threshold
            route(node.left, rows[go_left])
            route(node.right, rows[~go_left])

        route(self.root, np.arange(X.shape[0]))
        return out

    def cpi(self, X: np.ndarray) -> np.ndarray:
        """Ground-truth (noise-free) CPI for each row."""
        X = self._check(X)
        out = np.empty(X.shape[0], dtype=float)

        def route(node: OracleNode, rows: np.ndarray) -> None:
            if rows.size == 0:
                return
            if isinstance(node, OracleLeaf):
                out[rows] = node.evaluate(X[rows], self._index)
                return
            values = X[rows, self._index[node.feature]]
            go_left = values <= node.threshold
            route(node.left, rows[go_left])
            route(node.right, rows[~go_left])

        route(self.root, np.arange(X.shape[0]))
        return out

    def describe(self) -> str:
        """Multi-line rendering of the regime tree."""
        lines: List[str] = []

        def visit(node: OracleNode, depth: int) -> None:
            pad = "  " * depth
            if isinstance(node, OracleLeaf):
                lines.append(pad + node.describe())
            else:
                lines.append(f"{pad}{node.feature} <= {node.threshold:g}?")
                visit(node.left, depth + 1)
                lines.append(f"{pad}{node.feature} > {node.threshold:g}?")
                visit(node.right, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)
