"""Microarchitecture substrate.

The paper measured a real Intel Core 2 Duo; we stand in for the silicon
with a ground-truth *cost model*: a piecewise-linear mapping from the 20
per-instruction event densities of Table I to CPI, with the regime
structure the paper itself reverse-engineered (DTLB/L2-dominated CPU
regimes, store-forwarding-blocked and SIMD-bound OMP regimes).

The cost model is the "machine"; the PMU collector observes it; the M5'
model tree then has to rediscover its structure from noisy samples.
"""

from repro.uarch.machine import MachineConfig, CORE2_DUO
from repro.uarch.costmodel import CostModel, OracleLeaf, OracleSplit
from repro.uarch.core2 import build_core2_cost_model
from repro.uarch.execution import ExecutionEngine, NoiseConfig

__all__ = [
    "CORE2_DUO",
    "CostModel",
    "ExecutionEngine",
    "MachineConfig",
    "NoiseConfig",
    "OracleLeaf",
    "OracleSplit",
    "build_core2_cost_model",
]
