"""Interval execution: densities in, noisy ground-truth CPI out.

The cost model is deterministic; real machines are not.  The execution
engine adds the residual the regression can never explain: cycle-level
effects (prefetcher luck, bus contention from the second core, OS
jitter) that are uncorrelated with the 20 observed densities.  Its
magnitude sets the noise floor of every downstream accuracy number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.uarch.costmodel import CostModel

__all__ = ["NoiseConfig", "ExecutionEngine"]


@dataclass(frozen=True)
class NoiseConfig:
    """Residual-noise parameters.

    ``additive_sigma`` is in CPI units; ``relative_sigma`` scales with
    the interval's CPI (slow intervals are noisier in absolute terms).
    ``floor_cpi`` is the machine's best case (issue-width bound).
    """

    additive_sigma: float = 0.045
    relative_sigma: float = 0.035
    floor_cpi: float = 0.25

    def __post_init__(self) -> None:
        if self.additive_sigma < 0 or self.relative_sigma < 0:
            raise ValueError("noise sigmas must be non-negative")
        if self.floor_cpi <= 0:
            raise ValueError(f"floor_cpi must be positive, got {self.floor_cpi}")


class ExecutionEngine:
    """Evaluates the machine on a batch of intervals."""

    def __init__(
        self, cost_model: CostModel, noise: Optional[NoiseConfig] = None
    ) -> None:
        self.cost_model = cost_model
        self.noise = noise or NoiseConfig()

    def true_cpi(
        self, densities: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """CPI for each interval; noisy when a generator is given."""
        cpi = self.cost_model.cpi(densities)
        if rng is not None:
            sigma = np.sqrt(
                self.noise.additive_sigma**2
                + (self.noise.relative_sigma * cpi) ** 2
            )
            cpi = cpi + rng.normal(0.0, sigma)
        return np.maximum(cpi, self.noise.floor_cpi)

    def regimes(self, densities: np.ndarray) -> np.ndarray:
        """Ground-truth regime name per interval (for validation only)."""
        return self.cost_model.regime_names(densities)
