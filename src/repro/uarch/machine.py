"""Machine description matching the paper's experimental platform."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineConfig", "CORE2_DUO"]


@dataclass(frozen=True)
class MachineConfig:
    """Static description of the measured machine.

    Latencies are representative Core 2 numbers and are used to sanity
    check the cost model's coefficients (e.g. an L2 miss that goes to
    memory cannot cost less than the memory latency).
    """

    name: str
    frequency_ghz: float
    n_cores: int
    l1d_kib: int
    l1i_kib: int
    l2_kib: int
    l2_shared: bool
    memory_gib: int
    # Representative penalty cycles.
    l1_miss_cycles: float
    l2_miss_cycles: float
    branch_mispredict_cycles: float
    dtlb_miss_cycles: float
    page_walk_cycles: float
    store_forward_block_cycles: float
    split_access_cycles: float

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency_ghz}")
        if self.n_cores < 1:
            raise ValueError(f"need at least one core, got {self.n_cores}")


#: The paper's platform: Intel Core 2 Duo, 2.13 GHz, 4 MB shared L2,
#: 32 KB split L1 caches, 4 GB memory.
CORE2_DUO = MachineConfig(
    name="Intel Core 2 Duo (Merom) 2.13 GHz",
    frequency_ghz=2.13,
    n_cores=2,
    l1d_kib=32,
    l1i_kib=32,
    l2_kib=4096,
    l2_shared=True,
    memory_gib=4,
    l1_miss_cycles=14.0,
    l2_miss_cycles=165.0,
    branch_mispredict_cycles=15.0,
    dtlb_miss_cycles=10.0,
    page_walk_cycles=30.0,
    store_forward_block_cycles=12.0,
    split_access_cycles=20.0,
)
