"""The Core-2-like ground-truth cost model.

The regime tree below encodes, as machine ground truth, the performance
structure the paper reverse-engineered from its measurements:

* In the low load-block-overlap region (where SPEC CPU2006 lives) the
  dominant discriminators are DTLB misses, L2 misses, load blocks due
  to store address and branch mispredicts — the split chain of
  Figure 1 — with the published LM1/LM7/LM8 equations used verbatim as
  regime equations.
* In the high load-block-overlap region (where much of SPEC OMP2001
  lives) the discriminator is the store rate — the LM17/LM18 split at
  the top of Figure 2 — again with the published equations.
* SIMD-heavy code is split by whether the SIMD units are starved
  (high L1D miss / misaligned operands → the expensive OMP LM16-like
  regime) or well fed (the cheap 470.lbm / 436.cactusADM regimes).

Thresholds are the paper's own split points where stated (0.00019
DTLB misses/instruction, 0.00048 L2 misses, 0.00045 load-block-STA,
0.00019 branch mispredicts, 0.0074 load-block-overlap, 0.077 stores,
0.84/0.77 SIMD fractions).
"""

from __future__ import annotations

from repro.pmu.events import PREDICTOR_NAMES
from repro.uarch.costmodel import CostModel, OracleLeaf, OracleSplit

__all__ = ["build_core2_cost_model", "THRESHOLDS"]

#: The paper's split thresholds (per-instruction densities).
THRESHOLDS = {
    "DtlbMiss": 0.00019,
    "L2Miss": 0.00048,
    "LdBlkStA": 0.00045,
    "MisprBr": 0.00019,
    "LdBlkOlp": 0.0074,
    "Store": 0.077,
    "SIMD_major": 0.60,
    "SIMD_starved_l1d": 0.012,
    "SplitLoad": 0.004,
    "Br_heavy": 0.15,
    "L2_simd": 0.0003,
}


def build_core2_cost_model() -> CostModel:
    """Construct the ground-truth regime tree for the Core 2 platform."""
    # --- CPU2006-region leaves (paper Section IV equations) -----------
    lm_base = OracleLeaf(
        "BASE",  # the paper's LM1 (Eq. 1): 45% of CPU2006 samples
        0.53,
        {
            "L1DMiss": 4.73,
            "Div": 7.71,
            "L2Miss": 63.0,
            "Mul": 0.254,
            "Misalign": 7.88,
            "MisprBr": 17.5,
            "LdBlkStD": 4.37,
            "PageWalk": 15.7,
            "SIMD": 0.046,
            "DtlbMiss": 503.0,
            "L1IMiss": 6.42,
            "LdBlkStA": 3.22,
            "LdBlkOlp": 2.98,
            "Load": 0.128,
            "Store": -0.198,
            "Br": -0.251,
        },
    )
    lm_tlb_moderate = OracleLeaf(
        "TLB_MODERATE",  # DTLB pressure but no L2/store-block pathology
        1.02,
        {"DtlbMiss": 430.0, "L1DMiss": 9.0, "PageWalk": 22.0, "MisprBr": 12.0},
    )
    lm_split_load = OracleLeaf(
        "SPLIT_LOAD",  # the paper's LM18 (482.sphinx3): split loads
        0.98,
        {"L1DMiss": 16.47, "DtlbMiss": 56.15, "LdBlkStA": 6.80, "SplitLoad": 28.0},
    )
    lm_sta_serial = OracleLeaf(
        "STA_SERIALIZED",  # the paper's LM7: serialized L2 misses
        0.24,
        {
            "L2Miss": 1172.0,
            "Store": 2.72,
            "DtlbMiss": 17.82,
            "L1IMiss": 24.18,
            "LdBlkOlp": 2.37,
            "SplitStore": 101.67,
            "SIMD": 0.26,
        },
    )
    lm_sta_mispredict = OracleLeaf(
        "STA_MISPREDICT",  # the paper's LM8: adds branch mispredicts
        0.61,
        {
            "Div": -7.99,
            "Mul": -0.23,
            "MisprBr": 13.85,
            "DtlbMiss": 17.44,
            "L1IMiss": 15.20,
            "LdBlkStD": 1.44,
            "PageWalk": 11.35,
            "SIMD": 0.16,
        },
    )
    lm_stream_memory = OracleLeaf(
        "STREAM_MEMORY",  # regular high-L2 streaming (459.GemsFDTD-like)
        0.78,
        {"L2Miss": 260.0, "DtlbMiss": 350.0, "L1DMiss": 6.0},
    )
    lm_pointer_chase = OracleLeaf(
        "POINTER_CHASE",  # the paper's LM24 region (471.omnetpp, 429.mcf)
        0.88,
        {"L2Miss": 380.0, "DtlbMiss": 620.0, "LdBlkOlp": 3.0, "Br": 1.1},
    )
    # --- SIMD-heavy leaves -----------------------------------------------
    lm_simd_fed = OracleLeaf(
        "SIMD_FED",  # 436.cactusADM-like (paper LM11 region): CPI ~1.2
        1.02,
        {"SIMD": 0.15, "Misalign": 95.0, "L1DMiss": 3.0},
    )
    lm_simd_stream = OracleLeaf(
        "SIMD_STREAM",  # 470.lbm-like (paper LM5 region): CPI ~1.6
        0.82,
        {"SIMD": 0.34, "L2Miss": 230.0, "LdBlkOlp": 4.2},
    )
    lm_simd_starved = OracleLeaf(
        "SIMD_STARVED",  # the paper's OMP LM16: SIMD units data-starved
        0.65,
        {"L1DMiss": 9.51, "Br": -1.11, "SIMD": 1.98, "Misalign": 70.0},
    )
    # --- OMP-region leaves (paper Section V equations) ----------------
    lm_block_light_store = OracleLeaf(
        "BLOCK_LIGHT_STORE",  # the paper's OMP LM17
        0.80,
        {
            "L1DMiss": 39.1,
            "Mul": -0.281,
            "Br": -0.941,
            "LdBlkStA": 9.1,
            "LdBlkOlp": 5.6,
            "PageWalk": 34.6,
            "SIMD": 0.129,
        },
    )
    lm_block_heavy_store = OracleLeaf(
        "BLOCK_HEAVY_STORE",  # the paper's OMP LM18
        0.95,
        {
            "Div": -4.7,
            "Store": 2.08,
            "PageWalk": 53.0,
            "SIMD": 0.427,
            "LdBlkOlp": 6.5,
        },
    )

    t = THRESHOLDS
    cpu_low_tlb = lm_base
    cpu_high_tlb = OracleSplit(
        "L2Miss",
        t["L2Miss"],
        left=OracleSplit(
            "LdBlkStA",
            t["LdBlkStA"],
            left=OracleSplit(
                "SplitLoad",
                t["SplitLoad"],
                left=lm_tlb_moderate,
                right=lm_split_load,
            ),
            right=OracleSplit(
                "MisprBr",
                t["MisprBr"],
                left=lm_sta_serial,
                right=lm_sta_mispredict,
            ),
        ),
        right=OracleSplit(
            "Br",
            t["Br_heavy"],
            left=lm_stream_memory,
            right=lm_pointer_chase,
        ),
    )
    scalar_region = OracleSplit(
        "DtlbMiss", t["DtlbMiss"], left=cpu_low_tlb, right=cpu_high_tlb
    )
    simd_region = OracleSplit(
        "L1DMiss",
        t["SIMD_starved_l1d"],
        left=OracleSplit(
            "L2Miss", t["L2_simd"], left=lm_simd_fed, right=lm_simd_stream
        ),
        right=lm_simd_starved,
    )
    low_overlap = OracleSplit(
        "SIMD", t["SIMD_major"], left=scalar_region, right=simd_region
    )
    high_overlap = OracleSplit(
        "Store",
        t["Store"],
        left=lm_block_light_store,
        right=lm_block_heavy_store,
    )
    root = OracleSplit("LdBlkOlp", t["LdBlkOlp"], left=low_overlap, right=high_overlap)
    return CostModel(root, PREDICTOR_NAMES)
